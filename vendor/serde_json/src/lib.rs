//! Offline stand-in for the `serde_json` crate (see vendor/README.md).
//!
//! [`Value`], the [`json!`] macro, [`to_string_pretty`] / [`to_string`]
//! over anything implementing the vendored `serde::Serialize`, and
//! [`from_str`], a full JSON parser (needed by `motivo-server`'s wire
//! protocol, which speaks JSON in both directions). Output is valid JSON:
//! strings are escaped, non-finite floats render as `null` (matching
//! serde_json's lossy `Display` behaviour for the cases motivo writes).

use serde::{Content, Serialize};

/// A JSON document. Thin wrapper over the serde stand-in's [`Content`]
/// tree so `Value` and every other `Serialize` type print identically.
#[derive(Clone, Debug, PartialEq)]
pub struct Value(pub Content);

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl Value {
    /// Object member lookup; `None` for non-objects and absent keys.
    /// When a parsed document carried duplicate keys, the **last** one
    /// wins, as in serde_json — a reader that disagreed with real
    /// serde_json clients about `{"a":1,"a":2}` would be a differential
    /// parsing hazard.
    pub fn get(&self, key: &str) -> Option<Value> {
        match &self.0 {
            Content::Map(entries) => entries
                .iter()
                .rfind(|(k, _)| k == key)
                .map(|(_, v)| Value(v.clone())),
            _ => None,
        }
    }

    /// The string payload, if this is a JSON string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.0 {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match &self.0 {
            Content::Int(i) => u64::try_from(*i).ok(),
            Content::UInt(u) => u64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match &self.0 {
            Content::Int(i) => i64::try_from(*i).ok(),
            Content::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen, like serde_json's `as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match &self.0 {
            Content::Float(f) => Some(*f),
            Content::Int(i) => Some(*i as f64),
            Content::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.0 {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self.0, Content::Null)
    }

    /// The elements, if this is an array (clones each element into its own
    /// [`Value`]; the stand-in favours a simple API over zero-copy views).
    pub fn as_array(&self) -> Option<Vec<Value>> {
        match &self.0 {
            Content::Seq(items) => Some(items.iter().cloned().map(Value).collect()),
            _ => None,
        }
    }

    /// Inserts or replaces an object member, preserving insertion order
    /// for new keys; no-op on non-objects. The stand-in has no `IndexMut`,
    /// so this is the mutation path for building documents with
    /// conditional fields.
    pub fn set(&mut self, key: &str, value: Value) {
        if let Content::Map(entries) = &mut self.0 {
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value.0;
            } else {
                entries.push((key.to_string(), value.0));
            }
        }
    }
}

/// Lowers any `Serialize` value into a [`Value`] (what `json!` uses in
/// value position; a blanket `From` would collide with the reflexive
/// `From<Value> for Value`).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    Value(v.to_content())
}

/// Serialization never fails for tree values; parsing can. The message
/// carries the byte offset and what the parser expected there.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn at(pos: usize, msg: &str) -> Error {
        Error(format!("invalid JSON at byte {pos}: {msg}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            f.write_str("json serialization error")
        } else {
            f.write_str(&self.0)
        }
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> String {
    if !f.is_finite() {
        return "null".into();
    }
    // Keep integral floats distinguishable from ints, like serde_json.
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn write_content(c: &Content, out: &mut String, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Float(f) => out.push_str(&float_repr(*f)),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_content(item, out, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_content(v, out, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, 0, false);
    Ok(out)
}

/// Two-space indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, 0, true);
    Ok(out)
}

/// Parses one JSON document. Trailing non-whitespace is an error, as in
/// serde_json's `from_str`; nesting beyond [`MAX_PARSE_DEPTH`] is an
/// error too (real serde_json has the same guard — without it a small
/// hostile document of `[[[[…` overflows the parser's stack). Duplicate
/// object keys are all stored and [`Value::get`] returns the last,
/// matching serde_json. Numbers parse as integers when they carry no
/// fraction or exponent, as floats otherwise.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let content = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::at(pos, "trailing characters after document"));
    }
    Ok(Value(content))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::at(*pos, &format!("expected `{lit}`")))
    }
}

/// Nesting cap of the recursive-descent parser, as in real serde_json.
pub const MAX_PARSE_DEPTH: usize = 128;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Content, Error> {
    if depth > MAX_PARSE_DEPTH {
        return Err(Error::at(*pos, "nesting exceeds the depth limit"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|_| Content::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Content::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Content::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Content::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Content::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Content::Seq(items));
                    }
                    _ => return Err(Error::at(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Content::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos, depth + 1)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Content::Map(entries));
                    }
                    _ => return Err(Error::at(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(_) => Err(Error::at(*pos, "expected a JSON value")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::at(*pos, "expected `\"`"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if b.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err(Error::at(*pos, "lone high surrogate"));
                            }
                            let low = parse_hex4(b, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::at(*pos, "invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(Error::at(*pos, "invalid \\u escape")),
                        }
                    }
                    _ => return Err(Error::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(Error::at(*pos, "control character in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid; find the next char boundary).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("input was a str"));
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, Error> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| Error::at(at, "truncated \\u escape"))?;
    let s = std::str::from_utf8(chunk).map_err(|_| Error::at(at, "bad \\u escape"))?;
    u32::from_str_radix(s, 16).map_err(|_| Error::at(at, "bad \\u escape"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Content, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
    if is_float {
        text.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| Error::at(start, "malformed number"))
    } else {
        // Integers beyond i128 degrade to f64, like serde_json's u64→f64
        // overflow behaviour.
        match text.parse::<i128>() {
            Ok(i) => Ok(Content::Int(i)),
            Err(_) => text
                .parse::<f64>()
                .map(Content::Float)
                .map_err(|_| Error::at(start, "malformed number")),
        }
    }
}

#[doc(hidden)]
pub use serde::Content as __Content;

/// Builds a [`Value`] from JSON-looking syntax: objects with literal-string
/// keys, arrays, `null`, and arbitrary `Serialize` expressions in value
/// position (array/vec expressions serialize as JSON arrays).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value($crate::__Content::Null) };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value($crate::__Content::Seq(vec![
            $( $crate::to_value(&$elem).0 ),*
        ]))
    };
    ({ $($entries:tt)* }) => {
        $crate::__json_object!(@acc [] $($entries)*)
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Object-body muncher for [`json!`]: peels `"key": value,` pairs into an
/// accumulator so value expressions may span multiple tokens (`a.b()`,
/// `if c { x } else { y }`), then emits one `vec![…]` of entries.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    (@acc [$($done:tt)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @acc [$($done)* ($key, $crate::__Content::Null),] $($($rest)*)?
        )
    };
    (@acc [$($done:tt)*] $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @acc [$($done)* ($key, $crate::to_value(&$val).0),] $($($rest)*)?
        )
    };
    (@acc [$(($k:expr, $v:expr),)*]) => {
        $crate::Value($crate::__Content::Map(vec![$(($k.to_string(), $v)),*]))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_docs() {
        let series = vec![json!({"x": 1}), json!({"x": 2})];
        let v = json!({
            "name": "er-flat",
            "nodes": 800u32,
            "ratio": 2.5,
            "flags": [true, false],
            "series": series,
            "none": null,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"name\":\"er-flat\",\"nodes\":800,\"ratio\":2.5,\
             \"flags\":[true,false],\"series\":[{\"x\":1},{\"x\":2}],\"none\":null}"
        );
    }

    #[test]
    fn pretty_output_indents() {
        let v = json!({"a": [1, 2]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn parse_roundtrips_serialized_documents() {
        let nested = json!({"s": "a\"b\\c\nd", "empty": Vec::<u8>::new(), "none": None::<u8>});
        let flags = json!([true, false, None::<u8>]);
        let v = json!({
            "name": "er-flat",
            "nodes": 800u32,
            "ratio": -2.5,
            "big": 0.001,
            "flags": flags,
            "nested": nested,
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
        // And pretty text parses to the same tree.
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parse_accessors_read_members() {
        let v = from_str(r#"{"type":"Build","k":5,"wait":true,"x":[1,2],"f":0.5}"#).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("Build"));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("wait").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("x").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert_eq!(v.get("k").unwrap().as_f64(), Some(5.0), "ints widen");
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = from_str(r#""a\u0041\n\t\"\\ \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\"\\ é 😀"));
        // Raw UTF-8 passes through too.
        assert_eq!(from_str("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "nul",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
            "[1,]",
            "{,}",
            "--3",
            "\"\\q\"",
            "\"\\ud800x\"",
            "\u{1}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} must be rejected");
        }
        // Errors name the offset.
        let err = from_str("[1, oops]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    /// A hostile `[[[[…` document must be rejected by the depth guard,
    /// not overflow the parser's stack (a stack overflow aborts the whole
    /// process — fatal for a server parsing untrusted frames).
    #[test]
    fn parse_depth_is_bounded() {
        let deep_ok = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(from_str(&deep_ok).is_ok());
        let too_deep = "[".repeat(100_000);
        let err = from_str(&too_deep).unwrap_err();
        assert!(err.to_string().contains("depth"), "{err}");
        // Objects count against the same budget.
        let nested_obj = "{\"a\":".repeat(200) + "1" + &"}".repeat(200);
        assert!(from_str(&nested_obj).is_err());
    }

    #[test]
    fn set_inserts_replaces_and_ignores_non_objects() {
        let mut v = json!({"a": 1});
        v.set("b", json!(2));
        v.set("a", json!(3));
        assert_eq!(to_string(&v).unwrap(), "{\"a\":3,\"b\":2}");
        let mut arr = json!([1]);
        arr.set("a", json!(1));
        assert_eq!(to_string(&arr).unwrap(), "[1]");
    }

    /// Duplicate keys: the last one wins, as in real serde_json — a
    /// server must not read `{"a":1,"a":2}` differently than its clients.
    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = from_str(r#"{"a":1,"b":0,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("b").unwrap().as_u64(), Some(0));
    }
}
