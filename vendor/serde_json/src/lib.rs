//! Offline stand-in for the `serde_json` crate (see vendor/README.md).
//!
//! [`Value`], the [`json!`] macro, and [`to_string_pretty`] /
//! [`to_string`] over anything implementing the vendored
//! `serde::Serialize`. Output is valid JSON: strings are escaped,
//! non-finite floats render as `null` (matching serde_json's lossy
//! `Display` behaviour for the cases motivo writes).

use serde::{Content, Serialize};

/// A JSON document. Thin wrapper over the serde stand-in's [`Content`]
/// tree so `Value` and every other `Serialize` type print identically.
#[derive(Clone, Debug, PartialEq)]
pub struct Value(pub Content);

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

/// Lowers any `Serialize` value into a [`Value`] (what `json!` uses in
/// value position; a blanket `From` would collide with the reflexive
/// `From<Value> for Value`).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    Value(v.to_content())
}

/// Serialization never fails for tree values; the type exists so call
/// sites can keep serde_json's `Result` shape.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> String {
    if !f.is_finite() {
        return "null".into();
    }
    // Keep integral floats distinguishable from ints, like serde_json.
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn write_content(c: &Content, out: &mut String, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Float(f) => out.push_str(&float_repr(*f)),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_content(item, out, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_content(v, out, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, 0, false);
    Ok(out)
}

/// Two-space indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, 0, true);
    Ok(out)
}

#[doc(hidden)]
pub use serde::Content as __Content;

/// Builds a [`Value`] from JSON-looking syntax: objects with literal-string
/// keys, arrays, `null`, and arbitrary `Serialize` expressions in value
/// position (array/vec expressions serialize as JSON arrays).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value($crate::__Content::Null) };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value($crate::__Content::Seq(vec![
            $( $crate::to_value(&$elem).0 ),*
        ]))
    };
    ({ $($entries:tt)* }) => {
        $crate::__json_object!(@acc [] $($entries)*)
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Object-body muncher for [`json!`]: peels `"key": value,` pairs into an
/// accumulator so value expressions may span multiple tokens (`a.b()`,
/// `if c { x } else { y }`), then emits one `vec![…]` of entries.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    (@acc [$($done:tt)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @acc [$($done)* ($key, $crate::__Content::Null),] $($($rest)*)?
        )
    };
    (@acc [$($done:tt)*] $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @acc [$($done)* ($key, $crate::to_value(&$val).0),] $($($rest)*)?
        )
    };
    (@acc [$(($k:expr, $v:expr),)*]) => {
        $crate::Value($crate::__Content::Map(vec![$(($k.to_string(), $v)),*]))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_docs() {
        let series = vec![json!({"x": 1}), json!({"x": 2})];
        let v = json!({
            "name": "er-flat",
            "nodes": 800u32,
            "ratio": 2.5,
            "flags": [true, false],
            "series": series,
            "none": null,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"name\":\"er-flat\",\"nodes\":800,\"ratio\":2.5,\
             \"flags\":[true,false],\"series\":[{\"x\":1},{\"x\":2}],\"none\":null}"
        );
    }

    #[test]
    fn pretty_output_indents() {
        let v = json!({"a": [1, 2]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }
}
