//! Offline stand-in for the `proptest` crate (see vendor/README.md).
//!
//! Same surface as the subset the motivo test suites use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`/
//! `boxed`, range and tuple and `Vec` strategies, [`collection::vec`] /
//! [`collection::btree_map`], [`any`], and the `prop_assert*` macros — but
//! generate-only: every case is drawn from a seed derived deterministically
//! from the test name and case index, and failures panic without
//! shrinking. Reproducibility is therefore exact across runs and machines.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-case RNG handed to strategies by the [`proptest!`] harness.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic generator for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the fully qualified test name, mixed with the case
        // index, so every test walks an independent reproducible stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a case was rejected (mirrors the real crate's error type; the
/// stand-in's assertions panic instead of returning it, so in practice it
/// only flows through explicit `return Ok(())` early exits).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// What a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration: how many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes every drawn value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from every drawn value (dependent data).
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// One strategy per element: `Vec<S>` draws element `i` from strategy `i`.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64);

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy of a type (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Collection sizes: a fixed count or a range of counts.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// `size.pick()` independent draws of `elem`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    /// Up to `size.pick()` entries (duplicate keys collapse, as in the real
    /// crate's minimum-size-0 behaviour).
    pub fn btree_map<K, V, R>(key: K, value: V, size: R) -> BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: IntoSizeRange,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: IntoSizeRange,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Declares property tests: each `pat in strategy` argument is drawn
/// freshly per case, `cfg.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Bodies return TestCaseResult like the real crate, so
                // `return Ok(())` and prop_assume! can abandon a case.
                let __run = move || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                };
                __run().unwrap();
            }
        }
    )+};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Abandons the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u32, Vec<u8>)> {
        (1u32..=16).prop_flat_map(|n| (Just(n), collection::vec(0u8..=(n as u8), 0..8usize)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_honour_bounds(x in 3u32..=7, y in 0usize..5) {
            prop_assert!((3..=7).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn flat_map_threads_dependencies((n, v) in pair_strategy()) {
            prop_assert!(v.len() < 8);
            for &b in &v {
                prop_assert!(u32::from(b) <= n, "elem {} over bound {}", b, n);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        let s = crate::collection::vec(0u32..1000, 5usize);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
