//! Offline stand-in for the `bytes` crate (see vendor/README.md).
//!
//! Implements exactly the subset motivo uses: little-endian integer/float
//! reads and writes through [`Buf`] on `&[u8]` and [`BufMut`] on `Vec<u8>`.
//! Semantics match the real crate: getters advance the cursor and panic on
//! underflow, so callers guard with [`Buf::remaining`].

/// Read side: a cursor over immutable bytes.
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends `src` verbatim.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(0x0123_4567_89AB_CDEF);
        v.put_u128_le(u128::MAX - 3);
        v.put_f64_le(-1.5e300);
        v.put_slice(b"tail");
        let mut r = &v[..];
        assert_eq!(r.remaining(), 1 + 4 + 8 + 16 + 8 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_u128_le(), u128::MAX - 3);
        assert_eq!(r.get_f64_le(), -1.5e300);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
