//! Offline stand-in for the `crossbeam` crate (see vendor/README.md).
//!
//! Maps the two facilities motivo uses onto std: `thread::scope` /
//! `Scope::spawn(|scope| …)` onto `std::thread::scope` (child panics
//! propagate on scope exit rather than through the returned `Result`, which
//! callers `.expect()` anyway), and `channel::bounded` onto
//! `std::sync::mpsc::sync_channel` (same blocking-when-full semantics;
//! single consumer, which is how the build loop uses it).

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`, wrapping std's scope so
    /// spawned closures receive the `|scope|` argument crossbeam passes.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope handle; every spawned thread is joined before
    /// this returns. Always `Ok` — a panicking child propagates its panic
    /// out of `std::thread::scope` instead of surfacing as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, TrySendError};

    /// crossbeam's bounded sender is clonable; std's `SyncSender` is too.
    /// `try_send` returns [`TrySendError::Full`] when `cap` messages are
    /// in flight, which is what the server's backpressure path keys on.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// A channel that blocks senders while `cap` messages are in flight.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn bounded_channel_fans_in() {
        let (tx, rx) = crate::channel::bounded::<u32>(2);
        crate::thread::scope(|scope| {
            for t in 0..4u32 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(t).unwrap());
            }
            drop(tx);
            let mut got: Vec<u32> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        })
        .unwrap();
    }
}
