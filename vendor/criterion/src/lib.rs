//! Offline stand-in for the `criterion` crate (see vendor/README.md).
//!
//! A minimal wall-clock harness with criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `iter`, and the
//! `criterion_group!` / `criterion_main!` macros. No statistics — each
//! benchmark runs `sample_size` samples and reports min/mean per
//! iteration, which is enough to compare the paper's configurations
//! locally.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs the measured closure and accumulates timings.
pub struct Bencher {
    samples: usize,
    min: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` once per sample, keeping results out of the optimizer via
    /// [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration.
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.min = self.min.min(dt);
            self.total += dt;
            self.iters += 1;
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            min: Duration::MAX,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is immediate, so this is a no-op marker).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{group}/{id}: no samples");
        return;
    }
    let mean = b.total / b.iters as u32;
    println!(
        "{group}/{id}: mean {mean:?}, min {:?} ({} samples)",
        b.min, b.iters
    );
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Criterion parses CLI flags here; the stand-in accepts and ignores
    /// them so `cargo bench -- <filter>` doesn't error.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone())
            .sample_size(10)
            .bench_function("", f);
        self
    }
}

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions under one group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sums(c: &mut Criterion) {
        let mut group = c.benchmark_group("sums");
        group.sample_size(3);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, sums);

    #[test]
    fn harness_runs() {
        benches();
    }
}
