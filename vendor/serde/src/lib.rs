//! Offline stand-in for the `serde` crate (see vendor/README.md).
//!
//! Instead of serde's visitor architecture, [`Serialize`] lowers a value
//! into the self-describing [`Content`] tree, which `serde_json` then
//! renders. Covers the types motivo's experiment harness serializes:
//! numbers, strings, bools, sequences, maps, and `serde_json::Value`
//! itself.

/// A serialized value, structurally (what serde calls the data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    /// Signed integers.
    Int(i128),
    /// Unsigned integers that exceed `i128`.
    UInt(u128),
    Float(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key order is preserved (serde_json's `preserve_order` behaviour).
    Map(Vec<(String, Content)>),
}

/// Types that can lower themselves into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        if *self <= i128::MAX as u128 {
            Content::Int(*self as i128)
        } else {
            Content::UInt(*self)
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_structurally() {
        assert_eq!(3u32.to_content(), Content::Int(3));
        assert_eq!(u128::MAX.to_content(), Content::UInt(u128::MAX));
        assert_eq!((-4i64).to_content(), Content::Int(-4));
        assert_eq!(true.to_content(), Content::Bool(true));
        assert_eq!("hi".to_content(), Content::Str("hi".into()));
        assert_eq!(
            vec![1u8, 2].to_content(),
            Content::Seq(vec![Content::Int(1), Content::Int(2)])
        );
        assert_eq!(None::<u8>.to_content(), Content::Null);
    }
}
