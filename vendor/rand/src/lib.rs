//! Offline stand-in for the `rand` crate (see vendor/README.md).
//!
//! Provides the subset motivo uses — [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen_bool`], [`Rng::gen`] for `f64`, and
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`] — with the
//! same statistical contracts (unbiased range sampling, 53-bit uniform
//! floats). Streams differ from the real crate, which only matters for
//! tests pinning exact values to a seed; none do.

/// The raw generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform draw in `[0, span)` by rejection, so every value is equally
/// likely (no modulo bias). `span > 0`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Largest multiple of `span` representable in 64 bits; draws at or
        // above it are rejected and redrawn.
        let zone = (u64::MAX / span) * span;
        loop {
            let x = rng.next_u64();
            if x < zone {
                return (x % span) as u128;
            }
        }
    }
    let zone = (u128::MAX / span) * span;
    loop {
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if x < zone {
            return x % span;
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX && std::mem::size_of::<$t>() == 16 {
                    // Full u128 range: no span fits; take 128 raw bits.
                    return (((rng.next_u64() as u128) << 64)
                        | rng.next_u64() as u128) as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, u128);

/// Types [`Rng::gen`] can produce (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 significant bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// The user-facing API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    /// A value of the `Standard` distribution (`f64` in `[0,1)`, …).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ (Blackman–Vigna), seeded through
    /// SplitMix64 like the real `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v: u8 = rng.gen_range(2..=6u8);
            assert!((2..=6).contains(&v));
            seen[v as usize - 2] = true;
        }
        assert!(seen[..5].iter().all(|&s| s));
        for _ in 0..1_000 {
            let v: u128 = rng.gen_range(1..=u128::from(u64::MAX) * 7);
            assert!(v >= 1);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
