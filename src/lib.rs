//! # motivo
//!
//! A from-scratch Rust reproduction of **Motivo** (Bressan, Leucci,
//! Panconesi — *Motivo: fast motif counting via succinct color coding and
//! adaptive sampling*, VLDB 2019): approximate counting of all k-node
//! induced subgraphs ("graphlets" / "motifs") of a host graph, for
//! `k ≤ 16`, via color coding with succinct treelet data structures and
//! adaptive graphlet sampling (AGS).
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! roof and hosts the runnable examples and cross-crate integration tests.
//!
//! ## The 60-second tour
//!
//! ```
//! use motivo::prelude::*;
//!
//! // 1. A host graph (load your own with motivo::graph::io).
//! let graph = motivo::graph::generators::barabasi_albert(300, 3, 7);
//!
//! // 2. Build-up phase: color the graph, run the treelet DP, get the urn.
//! let urn = build_urn(&graph, &BuildConfig::new(4).seed(1)).unwrap();
//!
//! // 3. Sampling phase: estimate every 4-graphlet count at once, across
//! //    all cores (results are bit-identical at any thread count).
//! let mut registry = GraphletRegistry::new(4);
//! let est = naive_estimates(&urn, &mut registry, 10_000, &SampleConfig::seeded(2));
//! for e in &est.per_graphlet {
//!     println!(
//!         "{:?}: ~{:.0} copies ({:.2}% of all)",
//!         registry.info(e.index).graphlet,
//!         e.count,
//!         100.0 * e.frequency
//!     );
//! }
//!
//! // 4. Rare graphlets? Use AGS instead of naive sampling.
//! let cfg = AgsConfig { max_samples: 5_000, idle_limit: 2_000, ..AgsConfig::default() };
//! let ags_result = ags(&urn, &mut registry, &cfg);
//! assert!(ags_result.estimates.total_count() > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`graph`] | CSR host graph, loaders, synthetic generators, colorings |
//! | [`treelet`] | succinct rooted (colored) treelet codec (§3.1) |
//! | [`graphlet`] | packed graphlets, canonical forms, spanning machinery |
//! | [`table`] | the count table: records, storage backends, alias method |
//! | [`core`] | build-up engine, samplers, naive estimator, AGS |
//! | [`exact`] | exact ESU enumeration (ground truth) |
//! | [`baseline`] | the pointer-based CC port the paper compares against |
//! | [`store`] | crash-safe urn repository: journal, LRU cache, query service |
//! | [`server`] | TCP query daemon over a store: worker pool, backpressure, wire client, leader/replica replication |
//! | [`obs`] | metrics & tracing: counters, latency histograms, spans, Prometheus text |

pub use cc_baseline as baseline;
pub use motivo_core as core;
pub use motivo_exact as exact;
pub use motivo_graph as graph;
pub use motivo_graphlet as graphlet;
pub use motivo_obs as obs;
pub use motivo_server as server;
pub use motivo_store as store;
pub use motivo_table as table;
pub use motivo_treelet as treelet;

/// The names most programs need.
pub mod prelude {
    pub use crate::core::{
        ags, build_urn, ensemble, load_urn, naive_estimates, save_urn, AgsConfig, AgsResult,
        BuildConfig, BuildError, BuildStats, ClassSummary, ColoringSpec, EnsembleConfig,
        EnsembleResult, Estimates, Estimator, SampleConfig, Sampler, Urn,
    };
    pub use crate::graph::{ColorDistribution, Coloring, Graph};
    pub use crate::graphlet::{Graphlet, GraphletRegistry};
    pub use crate::obs::{Histogram, Registry};
    pub use crate::server::{
        Client, ClientError, Request, Response, ServeOptions, ServeOptionsBuilder, ServeReport,
        Server,
    };
    pub use crate::store::{StoreError, StoreQuery, UrnId, UrnStore};
    pub use crate::table::storage::StorageKind;
    pub use crate::table::RecordCodec;
    pub use crate::treelet::{ColorSet, ColoredTreelet, Treelet};
}
