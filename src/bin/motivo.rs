//! The `motivo` command-line tool — build, sample, count, and serve
//! motifs from the shell, mirroring how the paper's C++ tool is driven.
//!
//! ```sh
//! motivo generate --model ba --nodes 10000 --param 4 --out g.mtvg
//! motivo info g.mtvg
//! motivo count g.mtvg -k 5 --samples 200000 --runs 10
//! motivo count g.mtvg -k 5 --ags --runs 10
//! motivo build g.mtvg -k 5 --table urn-dir        # persist the urn
//! motivo sample g.mtvg --table urn-dir --samples 100000
//! motivo exact g.mtvg -k 4
//! motivo convert edges.txt g.mtvg
//! motivo store build g.mtvg -k 5 --store repo     # managed repository
//! motivo store query urn-0 --store repo --samples 100000
//! motivo serve --store repo --addr 127.0.0.1:7070 --workers 4 --cache-bytes 67108864
//! motivo client 127.0.0.1:7070 '{"type":"ListUrns"}'
//! echo '[{"type":"Ping"},{"type":"Sample","urn":0,"samples":1000,"seed":1}]' \
//!   | motivo client 127.0.0.1:7070 - --batch
//! ```
//!
//! Every subcommand validates its flags: an unknown flag, a flag missing
//! its value, or an unparseable value is a one-line `error:` on stderr and
//! a nonzero exit, never a panic.

use motivo::core::{
    ags, ensemble, load_urn, naive_estimates, save_urn, AgsConfig, BuildConfig, EnsembleConfig,
    Estimator, SampleConfig,
};
use motivo::graph::{generators, io, Graph};
use motivo::graphlet::{name, GraphletRegistry};
use motivo::server::{Client, ServeOptions, Server};
use motivo::store::{BuildStatus, StoreQuery, UrnId, UrnStore};
use motivo::table::{CountTable, RecordCodec};
use std::process::exit;
use std::sync::Arc;

const USAGE: &str = "usage: motivo <generate|convert|info|exact|count|build|sample|store|table|serve|client|stats|promote|repl> [args]\n\
     \n\
     generate --model ba|er|hub|yelp|lollipop --nodes N [--param P] [--seed S] --out FILE\n\
     convert  <edges.txt> <out.mtvg>\n\
     info     <graph>\n\
     exact    <graph> -k K [--top N]\n\
     count    <graph> -k K [--samples N] [--ags] [--runs R] [--biased L]\n\
              [--threads T] [--seed S] [--top N] [--disk DIR] [--codec plain|succinct]\n\
              [--build-mem-bytes N]\n\
     build    <graph> -k K --table DIR [--seed S] [--biased L] [--threads T]\n\
              [--codec plain|succinct] [--build-mem-bytes N]\n\
     sample   <graph> --table DIR [--samples N] [--ags] [--seed S] [--threads T]\n\
              [--top N]\n\
     table    stats <dir>\n\
     store    build <graph> -k K --store DIR [--seed S] [--biased L] [--threads T]\n\
              [--codec plain|succinct] [--build-mem-bytes N]\n\
     store    list --store DIR\n\
     store    query <urn-id> --store DIR [--samples N] [--ags] [--seed S]\n\
              [--threads T] [--top N]\n\
     store    gc --store DIR\n\
     serve    --store DIR [--addr HOST:PORT] [--workers N] [--queue N]\n\
              [--cache-bytes N] [--snapshot-secs N]\n\
              [--replica-of HOST:PORT] [--poll-ms N]\n\
     client   <addr> <request-json|-> [--batch]\n\
     stats    <addr> [--raw]\n\
     promote  <addr>\n\
     repl     status <addr>";

fn main() {
    // Piping into `head` closes stdout early; die quietly instead of
    // panicking (std has no SIGPIPE story without libc).
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        if msg.contains("Broken pipe") {
            exit(0);
        }
        eprintln!("{msg}");
        exit(101);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("exact") => cmd_exact(&args[1..]),
        Some("count") => cmd_count(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("table") => cmd_table(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("promote") => cmd_promote(&args[1..]),
        Some("repl") => cmd_repl(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            exit(2);
        }
    };
    match run {
        Ok(()) => exit(0),
        Err(msg) => {
            eprintln!("error: {msg}");
            exit(1);
        }
    }
}

/// Tiny strict flag parser: positional args plus `--flag value` /
/// `--flag` pairs, validated against the subcommand's declared flags so a
/// typo is an error instead of a silently ignored knob.
struct Opts {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Opts {
    fn parse(
        args: &[String],
        value_flags: &[&str],
        boolean_flags: &[&str],
    ) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let flag = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix('-').filter(|f| !f.is_empty()));
            match flag {
                Some(name) if boolean_flags.contains(&name) => {
                    flags.insert(name.to_string(), "true".into());
                }
                Some(name) if value_flags.contains(&name) => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag {a} requires a value"))?;
                    flags.insert(name.to_string(), v.clone());
                }
                Some(_) => return Err(format!("unknown flag {a}")),
                None => positional.push(a.clone()),
            }
        }
        Ok(Opts { positional, flags })
    }

    /// A typed flag value; unparseable values are a hard error, absent
    /// flags are `None`.
    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: `{v}`")),
        }
    }

    /// A typed flag value with a default.
    fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.get(name)?.unwrap_or(default))
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let loaded = if path.ends_with(".mtvg") {
        io::load_binary(path)
    } else {
        io::load_edge_list(path)
    };
    loaded.map_err(|e| format!("cannot load graph {path}: {e}"))
}

/// Reads `--codec plain|succinct` (default plain).
fn parse_codec(o: &Opts) -> Result<RecordCodec, String> {
    match o.flags.get("codec") {
        None => Ok(RecordCodec::Plain),
        Some(s) => s.parse(),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["model", "nodes", "seed", "param", "out"], &[])?;
    let model: String = o.get_or("model", "ba".into())?;
    let n: u32 = o.get_or("nodes", 10_000)?;
    let seed: u64 = o.get_or("seed", 1)?;
    let param: u32 = o.get_or("param", 3)?;
    let out: String = o.get("out")?.ok_or("--out FILE required")?;
    let g = match model.as_str() {
        "ba" => generators::barabasi_albert(n, param, seed),
        "er" => generators::erdos_renyi(n, (n as usize) * param as usize, seed),
        "hub" => generators::star_heavy(n, param, 0.5, seed),
        "yelp" => generators::yelp_like(n / 100 + 1, param.max(10), n as usize / 50, seed),
        "lollipop" => generators::lollipop(n, param),
        other => return Err(format!("unknown model {other}")),
    };
    io::save_binary(&g, &out).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[], &[])?;
    let [input, output] = &o.positional[..] else {
        return Err("usage: convert <edges.txt> <out.mtvg>".into());
    };
    let g = io::load_edge_list(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    io::save_binary(&g, output).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        output,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[], &[])?;
    let Some(path) = o.positional.first() else {
        return Err("usage: info <graph>".into());
    };
    let g = load_graph(path)?;
    if g.num_nodes() == 0 {
        return Err(format!("graph {path} has no nodes"));
    }
    let mut degs: Vec<usize> = (0..g.num_nodes()).map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    let pct = |p: f64| degs[((degs.len() - 1) as f64 * p) as usize];
    println!("nodes        {}", g.num_nodes());
    println!("edges        {}", g.num_edges());
    println!(
        "avg degree   {:.2}",
        2.0 * g.num_edges() as f64 / g.num_nodes() as f64
    );
    println!("degree p50   {}", pct(0.50));
    println!("degree p90   {}", pct(0.90));
    println!("degree p99   {}", pct(0.99));
    println!("max degree   {}", g.max_degree());
    println!("connected    {}", g.is_connected());
    println!("csr bytes    {}", g.byte_size());
    Ok(())
}

fn cmd_exact(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["k", "top"], &[])?;
    let Some(path) = o.positional.first() else {
        return Err("usage: exact <graph> -k K [--top N]".into());
    };
    let k: u8 = o.get("k")?.ok_or("-k K required")?;
    let g = load_graph(path)?;
    let top: usize = o.get_or("top", 20)?;
    let t0 = std::time::Instant::now();
    let exact = motivo::exact::count_exact(&g, k);
    println!(
        "exact ESU enumeration: {} induced {k}-graphlets, {} classes, {:?}",
        exact.total,
        exact.num_classes(),
        t0.elapsed()
    );
    let mut rows: Vec<(u128, u64)> = exact.counts.iter().map(|(&c, &n)| (c, n)).collect();
    rows.sort_unstable_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (code, count) in rows.into_iter().take(top) {
        let gl = motivo::graphlet::Graphlet::from_code(code).expect("valid code");
        println!(
            "{:>16}  {:>12}  ({:.4}%)",
            name(&gl),
            count,
            100.0 * count as f64 / exact.total as f64
        );
    }
    Ok(())
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(
        args,
        &[
            "k",
            "samples",
            "runs",
            "seed",
            "threads",
            "top",
            "biased",
            "disk",
            "codec",
            "build-mem-bytes",
        ],
        &["ags"],
    )?;
    let Some(path) = o.positional.first() else {
        return Err("usage: count <graph> -k K [--samples N] [--ags] [--runs R] ...".into());
    };
    let k: u32 = o.get("k")?.ok_or("-k K required")?;
    let g = load_graph(path)?;
    let samples: u64 = o.get_or("samples", 200_000)?;
    let runs: u64 = o.get_or("runs", 10)?;
    let seed: u64 = o.get_or("seed", 0)?;
    let threads: usize = o.get_or("threads", 0)?;
    let top: usize = o.get_or("top", 25)?;

    let mut build = BuildConfig::new(k);
    if let Some(lambda) = o.get::<f64>("biased")? {
        build = build.biased(lambda);
    }
    let mut scratch: Option<std::path::PathBuf> = None;
    match (o.get::<usize>("build-mem-bytes")?, o.flags.get("disk")) {
        (Some(bytes), disk) => {
            // Budgeted builds always go through the block backend; spill
            // runs land next to the final level files.
            let dir = match disk {
                Some(d) => std::path::PathBuf::from(d),
                None => {
                    let d =
                        std::env::temp_dir().join(format!("motivo-count-{}", std::process::id()));
                    scratch = Some(d.clone());
                    d
                }
            };
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            build = build.storage(motivo::table::storage::StorageKind::Block {
                dir,
                mem_budget: bytes,
            });
        }
        (None, Some(dir)) => {
            build = build.storage(motivo::table::storage::StorageKind::Disk { dir: dir.into() });
        }
        (None, None) => {}
    }
    build = build.codec(parse_codec(&o)?);
    let estimator = if o.has("ags") {
        Estimator::Ags(AgsConfig {
            max_samples: samples,
            ..AgsConfig::default()
        })
    } else {
        Estimator::Naive { samples }
    };
    let cfg = EnsembleConfig {
        runs,
        base_seed: seed,
        threads,
        estimator,
        build,
    };
    let mut registry = GraphletRegistry::new(k as u8);
    let res = ensemble(&g, &mut registry, &cfg).map_err(|e| e.to_string())?;
    println!(
        "{} runs ({} empty urns) · build {:.2}s · sampling {:.2}s · {} samples",
        res.effective_runs,
        res.empty_urns,
        res.build_time.as_secs_f64(),
        res.sample_time.as_secs_f64(),
        res.samples
    );
    println!(
        "estimated total {k}-graphlet copies: {:.3e}\n",
        res.total_count()
    );
    let header = format!(
        "{:>16}  {:>12}  {:>12}  {:>12}  {:>9}  runs seen",
        "graphlet", "mean", "p10", "p90", "freq"
    );
    println!("{header}");
    for c in res.classes.iter().take(top) {
        println!(
            "{:>16}  {:>12.4e}  {:>12.4e}  {:>12.4e}  {:>9.2e}  {}/{}",
            name(&registry.info(c.index).graphlet),
            c.mean,
            c.p10,
            c.p90,
            c.frequency,
            c.seen_in,
            res.effective_runs
        );
    }
    if res.classes.len() > top {
        println!("… and {} more classes", res.classes.len() - top);
    }
    if let Some(dir) = scratch {
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(
        args,
        &[
            "k",
            "table",
            "seed",
            "threads",
            "biased",
            "codec",
            "build-mem-bytes",
        ],
        &[],
    )?;
    let Some(path) = o.positional.first() else {
        return Err("usage: build <graph> -k K --table DIR [--seed S]".into());
    };
    let k: u32 = o.get("k")?.ok_or("-k K required")?;
    let table: String = o.get("table")?.ok_or("--table DIR required")?;
    let g = load_graph(path)?;
    let mut cfg = BuildConfig::new(k).seed(o.get_or("seed", 0)?);
    cfg.threads = o.get_or("threads", 0)?;
    if let Some(lambda) = o.get::<f64>("biased")? {
        cfg = cfg.biased(lambda);
    }
    cfg = cfg.codec(parse_codec(&o)?);
    let mut scratch: Option<std::path::PathBuf> = None;
    if let Some(bytes) = o.get::<usize>("build-mem-bytes")? {
        // Spill runs need a directory before the urn dir exists; save_urn
        // re-persists the sealed levels into `table`, so the scratch dir
        // is safe to drop afterwards.
        let dir = std::path::PathBuf::from(format!("{table}.build-tmp"));
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        cfg = cfg.build_mem_bytes(&dir, bytes);
        scratch = Some(dir);
    }
    let urn = motivo::core::build_urn(&g, &cfg).map_err(|e| e.to_string())?;
    let st = urn.build_stats();
    println!(
        "built urn: {} colorful {k}-treelets, {:.2}s, {:.1} MiB table ({} codec)",
        urn.total_treelets(),
        st.total.as_secs_f64(),
        st.table_bytes as f64 / (1 << 20) as f64,
        cfg.codec
    );
    println!(
        "spill runs: {} · peak memtable: {} B",
        st.spill_runs, st.peak_mem_bytes
    );
    save_urn(&urn, &table).map_err(|e| format!("cannot persist urn: {e}"))?;
    if let Some(dir) = scratch {
        drop(urn);
        std::fs::remove_dir_all(&dir).ok();
    }
    println!("persisted to {table}");
    Ok(())
}

fn cmd_store(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_store_build(&args[1..]),
        Some("list") => cmd_store_list(&args[1..]),
        Some("query") => cmd_store_query(&args[1..]),
        Some("gc") => cmd_store_gc(&args[1..]),
        _ => Err("usage: store <build|list|query|gc> --store DIR [args]".into()),
    }
}

fn open_store(o: &Opts) -> Result<UrnStore, String> {
    let Some(dir) = o.flags.get("store") else {
        return Err("--store DIR required".into());
    };
    UrnStore::open(dir).map_err(|e| format!("cannot open store {dir}: {e}"))
}

/// Accepts `urn-3` (as printed by `store list`) or bare `3`.
fn parse_urn_id(s: &str) -> Option<UrnId> {
    s.strip_prefix("urn-").unwrap_or(s).parse().ok().map(UrnId)
}

fn cmd_store_build(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(
        args,
        &[
            "k",
            "store",
            "seed",
            "threads",
            "biased",
            "codec",
            "build-mem-bytes",
        ],
        &[],
    )?;
    let Some(path) = o.positional.first() else {
        return Err("usage: store build <graph> -k K --store DIR [--seed S]".into());
    };
    let k: u32 = o.get("k")?.ok_or("-k K required")?;
    let g = load_graph(path)?;
    let store = open_store(&o)?;
    let mut cfg = BuildConfig::new(k).seed(o.get_or("seed", 0)?);
    cfg.threads = o.get_or("threads", 0)?;
    if let Some(lambda) = o.get::<f64>("biased")? {
        cfg = cfg.biased(lambda);
    }
    cfg = cfg.codec(parse_codec(&o)?);
    if let Some(bytes) = o.get::<usize>("build-mem-bytes")? {
        // The store worker rewrites the directory to the urn's own dir;
        // only the budget matters here.
        cfg = cfg.build_mem_bytes(std::path::PathBuf::new(), bytes);
    }
    let handle = store.build_or_get(&g, &cfg).map_err(|e| e.to_string())?;
    let already = handle.poll().is_some();
    let urn = handle.wait().map_err(|e| e.to_string())?;
    println!(
        "{} {}: {} colorful {k}-treelets, {:.1} MiB table",
        if already { "reused" } else { "built" },
        handle.id(),
        urn.urn().total_treelets(),
        urn.urn().table().byte_size() as f64 / (1 << 20) as f64
    );
    Ok(())
}

fn cmd_store_list(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["store"], &[])?;
    let store = open_store(&o)?;
    let urns = store.list();
    println!(
        "{:>8}  {:>2}  {:>10}  {:>8}  {:>8}  {:>12}  {:>16}",
        "urn", "k", "seed", "codec", "status", "bytes", "graph"
    );
    for m in &urns {
        println!(
            "{:>8}  {:>2}  {:>10}  {:>8}  {:>8}  {:>12}  {:>16x}",
            m.id.to_string(),
            m.key.k,
            m.key.seed,
            m.key.codec.to_string(),
            match m.status {
                BuildStatus::Pending => "pending",
                BuildStatus::Built => "built",
                BuildStatus::Failed => "failed",
            },
            m.table_bytes,
            m.key.fingerprint
        );
    }
    println!("{} urns, {} graphs", urns.len(), store.graphs().len());
    Ok(())
}

fn cmd_store_query(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(
        args,
        &["store", "samples", "seed", "threads", "top"],
        &["ags"],
    )?;
    let id = o
        .positional
        .first()
        .and_then(|s| parse_urn_id(s))
        .ok_or("usage: store query <urn-id> --store DIR [--samples N] [--ags]")?;
    let store = open_store(&o)?;
    let meta = store.meta(id).ok_or_else(|| format!("unknown urn {id}"))?;
    let samples: u64 = o.get_or("samples", 200_000)?;
    let seed: u64 = o.get_or("seed", 1)?;
    let threads: usize = o.get_or("threads", 0)?;
    let top: usize = o.get_or("top", 25)?;
    let query = StoreQuery::new(&store);
    let mut registry = GraphletRegistry::new(meta.key.k as u8);
    let est = if o.has("ags") {
        query
            .ags(
                id,
                &mut registry,
                &AgsConfig {
                    max_samples: samples,
                    sample: SampleConfig::seeded(seed).threads(threads),
                    ..AgsConfig::default()
                },
            )
            .map_err(|e| e.to_string())?
            .estimates
    } else {
        query
            .naive_estimates(
                id,
                &mut registry,
                samples,
                &SampleConfig::seeded(seed).threads(threads),
            )
            .map_err(|e| e.to_string())?
    };
    let qs = query.stats(id);
    println!(
        "{}: {} samples in {:?}, {} classes (cache {})",
        id,
        est.samples,
        est.elapsed,
        est.per_graphlet.len(),
        if qs.cache_hits > 0 { "hit" } else { "miss" }
    );
    let mut rows = est.per_graphlet.clone();
    rows.sort_by(|a, b| b.count.total_cmp(&a.count));
    println!(
        "{:>16}  {:>14}  {:>9}  {:>10}",
        "graphlet", "count", "freq", "samples"
    );
    for e in rows.iter().take(top) {
        println!(
            "{:>16}  {:>14.4e}  {:>9.2e}  {:>10}",
            name(&registry.info(e.index).graphlet),
            e.count,
            e.frequency,
            e.occurrences
        );
    }
    Ok(())
}

fn cmd_store_gc(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["store"], &[])?;
    let store = open_store(&o)?;
    let rec = store.recovery_report();
    if rec.interrupted_builds > 0 || rec.torn_journal_bytes > 0 {
        println!(
            "recovered: {} interrupted builds swept, {} torn journal bytes dropped",
            rec.interrupted_builds, rec.torn_journal_bytes
        );
    }
    let r = store.gc().map_err(|e| e.to_string())?;
    println!(
        "gc: {} orphan urn dirs, {} orphan graphs, {} journal bytes compacted",
        r.orphan_dirs_removed, r.orphan_graphs_removed, r.journal_bytes_compacted
    );
    Ok(())
}

fn cmd_table(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => cmd_table_stats(&args[1..]),
        _ => Err("usage: table stats <dir>".into()),
    }
}

/// Per-level record counts, encoded bytes, and the plain-vs-succinct
/// compression ratio of a persisted count table (a `--table`/urn dir).
fn cmd_table_stats(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[], &[])?;
    let Some(dir) = o.positional.first() else {
        return Err("usage: table stats <dir>".into());
    };
    let table = CountTable::open_dir(dir).map_err(|e| format!("cannot open table {dir}: {e}"))?;
    println!(
        "table {dir}: k={}, codec={}, {} records",
        table.k(),
        table.codec(),
        table.record_count()
    );
    println!(
        "{:>5}  {:>10}  {:>10}  {:>12}  {:>12}  {:>6}  {:>6}  {:>6}",
        "level", "records", "entries", "encoded B", "plain B", "ratio", "blocks", "spills"
    );
    let (mut entries_total, mut plain_total) = (0u64, 0u64);
    for h in 1..=table.k() {
        let level = table.level(h);
        let mut entries = 0u64;
        for item in level.scan() {
            let (_, rec) = item.map_err(|e| format!("level {h}: {e}"))?;
            entries += rec.len() as u64;
        }
        // The plain layout costs 24 bytes per entry plus a 4-byte length
        // prefix per stored record on disk.
        let plain = entries * 24 + level.record_count() as u64 * 4;
        entries_total += entries;
        plain_total += plain;
        let spills = table.spill_runs().get(h as usize - 1).copied().unwrap_or(0);
        println!(
            "{:>5}  {:>10}  {:>10}  {:>12}  {:>12}  {:>6.3}  {:>6}  {:>6}",
            h,
            level.record_count(),
            entries,
            level.byte_size(),
            plain,
            level.byte_size() as f64 / plain.max(1) as f64,
            level.profile().blocks,
            spills
        );
    }
    println!(
        "{:>5}  {:>10}  {:>10}  {:>12}  {:>12}  {:>6.3}",
        "total",
        table.record_count(),
        entries_total,
        table.byte_size(),
        plain_total,
        table.byte_size() as f64 / plain_total.max(1) as f64
    );
    println!(
        "build history: {} spill runs · peak memtable {} B",
        table.total_spill_runs(),
        table.peak_mem_bytes()
    );
    Ok(())
}

fn cmd_sample(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(
        args,
        &["table", "samples", "seed", "threads", "top"],
        &["ags"],
    )?;
    let Some(path) = o.positional.first() else {
        return Err("usage: sample <graph> --table DIR [--samples N] [--ags]".into());
    };
    let table: String = o.get("table")?.ok_or("--table DIR required")?;
    let g = load_graph(path)?;
    let urn = load_urn(&g, &table).map_err(|e| format!("cannot load urn: {e}"))?;
    let samples: u64 = o.get_or("samples", 200_000)?;
    let seed: u64 = o.get_or("seed", 1)?;
    let threads: usize = o.get_or("threads", 0)?;
    let top: usize = o.get_or("top", 25)?;
    let k = urn.k();
    let mut registry = GraphletRegistry::new(k as u8);
    let est = if o.has("ags") {
        ags(
            &urn,
            &mut registry,
            &AgsConfig {
                max_samples: samples,
                sample: SampleConfig::seeded(seed).threads(threads),
                ..AgsConfig::default()
            },
        )
        .estimates
    } else {
        naive_estimates(
            &urn,
            &mut registry,
            samples,
            &SampleConfig::seeded(seed).threads(threads),
        )
    };
    println!(
        "{} samples in {:?} ({:.0}/s), {} classes",
        est.samples,
        est.elapsed,
        est.sampling_rate(),
        est.per_graphlet.len()
    );
    let mut rows = est.per_graphlet.clone();
    rows.sort_by(|a, b| b.count.total_cmp(&a.count));
    println!(
        "{:>16}  {:>14}  {:>9}  {:>10}",
        "graphlet", "count", "freq", "samples"
    );
    for e in rows.iter().take(top) {
        println!(
            "{:>16}  {:>14.4e}  {:>9.2e}  {:>10}",
            name(&registry.info(e.index).graphlet),
            e.count,
            e.frequency,
            e.occurrences
        );
    }
    Ok(())
}

/// Runs the query daemon until a wire `Shutdown` request arrives. With
/// `--replica-of` the store opens read-only and the serve loop tails the
/// leader as a timer-driven sync session; the server then refuses
/// `Build` and wire `Shutdown` with a `ReadOnly` error until a `Promote`
/// request arrives.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(
        args,
        &[
            "store",
            "addr",
            "workers",
            "queue",
            "cache-bytes",
            "snapshot-secs",
            "replica-of",
            "poll-ms",
        ],
        &[],
    )?;
    let replica_of: Option<String> = o.get("replica-of")?;
    let store = if replica_of.is_some() {
        let dir = o.flags.get("store").ok_or("--store DIR required")?;
        UrnStore::open_replica(dir, Default::default())
            .map_err(|e| format!("cannot open replica store {dir}: {e}"))?
    } else {
        open_store(&o)?
    };
    let addr: String = o.get_or("addr", "127.0.0.1:7070".into())?;
    let mut builder = ServeOptions::builder()
        .workers(o.get_or("workers", 4)?)
        .queue_depth(o.get_or("queue", 0)?)
        .cache_bytes(o.get_or("cache-bytes", motivo::server::DEFAULT_CACHE_BYTES)?)
        .snapshot_secs(o.get_or("snapshot-secs", 0)?)
        .repl_poll_ms(o.get_or("poll-ms", 0)?);
    if let Some(leader) = replica_of {
        builder = builder.replica_of(leader);
    }
    let opts = builder.build()?;
    let server = Server::bind(Arc::new(store), addr.as_str(), opts)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // Scripts and tests read this line to learn the ephemeral port.
    println!("listening on {}", server.addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    let report = server.join();
    println!(
        "served {} requests on {} connections ({} busy rejections)",
        report.requests, report.connections, report.busy_rejections
    );
    if let Some(path) = report.stats_path {
        println!("stats flushed to {}", path.display());
    }
    Ok(())
}

/// Sends one raw JSON request to a running daemon and pretty-prints the
/// response envelope; exits nonzero if the server answered an error.
/// `-` reads the request from stdin; `--batch` wraps a JSON array of
/// sub-requests into one `Batch` frame.
fn cmd_client(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[], &["batch"])?;
    let [addr, request] = &o.positional[..] else {
        return Err("usage: client <addr> <request-json|-> [--batch]".into());
    };
    let raw = if request == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read request from stdin: {e}"))?;
        buf
    } else {
        request.clone()
    };
    // Validate locally so typos fail with a parse message, not a server
    // roundtrip.
    let doc = serde_json::from_str(&raw).map_err(|e| format!("request is not valid JSON: {e}"))?;
    let request_text = if o.has("batch") {
        if doc.as_array().is_none() {
            return Err("--batch expects a JSON array of request documents".into());
        }
        serde_json::to_string(&serde_json::json!({"type": "Batch", "requests": doc}))
            .map_err(|e| e.to_string())?
    } else {
        raw
    };
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let envelope = client.send_raw(&request_text).map_err(|e| e.to_string())?;
    let parsed: serde_json::Value =
        serde_json::from_str(&envelope).map_err(|e| format!("malformed response: {e}"))?;
    println!(
        "{}",
        serde_json::to_string_pretty(&parsed).map_err(|e| e.to_string())?
    );
    if let Some(err) = parsed.get("error") {
        let kind = err
            .get("kind")
            .and_then(|k| k.as_str().map(str::to_string))
            .unwrap_or_else(|| "Unknown".into());
        let message = err
            .get("message")
            .and_then(|m| m.as_str().map(str::to_string))
            .unwrap_or_default();
        return Err(format!("server answered [{kind}]: {message}"));
    }
    Ok(())
}

/// Sends a `Metrics` request to a running daemon and pretty-prints the
/// per-request-kind table (count, qps, latency quantiles, errors).
/// `--raw` dumps the server's Prometheus-style text body instead.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[], &["raw"])?;
    let [addr] = &o.positional[..] else {
        return Err("usage: stats <addr> [--raw]".into());
    };
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let ok = client
        .metrics()
        .map_err(|e| format!("Metrics request failed: {e}"))?;
    let field =
        |v: &serde_json::Value, key: &str| v.get(key).and_then(|f| f.as_u64()).unwrap_or_default();
    if o.has("raw") {
        let text = ok
            .get("text")
            .and_then(|t| t.as_str().map(str::to_string))
            .ok_or("response carries no `text` body")?;
        print!("{text}");
        return Ok(());
    }
    let uptime = ok
        .get("uptime_secs")
        .and_then(|u| u.as_f64())
        .unwrap_or_default();
    println!("uptime: {uptime:.1}s");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "kind", "count", "qps", "p50_us", "p90_us", "p99_us", "max_us", "errors"
    );
    let kinds = ok
        .get("kinds")
        .and_then(|k| k.as_array())
        .ok_or("response carries no `kinds` table")?;
    // Rows arrive sorted by kind name; re-sort by count descending so the
    // hottest request type tops the table.
    let mut rows = kinds;
    rows.sort_by_key(|r| std::cmp::Reverse(field(r, "count")));
    for row in &rows {
        let count = field(row, "count");
        let qps = if uptime > 0.0 {
            count as f64 / uptime
        } else {
            0.0
        };
        println!(
            "{:<16} {:>8} {:>9.2} {:>9} {:>9} {:>9} {:>9} {:>7}",
            row.get("kind")
                .and_then(|k| k.as_str().map(str::to_string))
                .unwrap_or_else(|| "?".into()),
            count,
            qps,
            field(row, "p50_us"),
            field(row, "p90_us"),
            field(row, "p99_us"),
            field(row, "max_us"),
            field(row, "errors"),
        );
    }
    for key in ["queue_wait", "service"] {
        if let Some(h) = ok.get(key) {
            println!(
                "{key}: count {} mean {}us p50 {}us p99 {}us max {}us",
                field(&h, "count"),
                field(&h, "mean_us"),
                field(&h, "p50_us"),
                field(&h, "p99_us"),
                field(&h, "max_us"),
            );
        }
    }
    Ok(())
}

/// Promotes a replica to leader: it starts accepting writes (and wire
/// `Shutdown`) and stops syncing from its old leader.
fn cmd_promote(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[], &[])?;
    let [addr] = &o.positional[..] else {
        return Err("usage: promote <addr>".into());
    };
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reply = client
        .promote()
        .map_err(|e| format!("Promote request failed: {e}"))?;
    println!(
        "promoted {addr} to leader ({} interrupted builds swept)",
        reply.swept
    );
    Ok(())
}

/// Prints a server's replication status: its role and offsets, plus
/// per-replica lag on a leader or sync-session progress on a replica.
fn cmd_repl(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("status") => cmd_repl_status(&args[1..]),
        _ => Err("usage: repl status <addr>".into()),
    }
}

fn cmd_repl_status(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[], &[])?;
    let [addr] = &o.positional[..] else {
        return Err("usage: repl status <addr>".into());
    };
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let ok = client
        .repl_status()
        .map_err(|e| format!("ReplStatus request failed: {e}"))?;
    let field =
        |v: &serde_json::Value, key: &str| v.get(key).and_then(|f| f.as_u64()).unwrap_or_default();
    let role = ok
        .get("role")
        .and_then(|r| r.as_str().map(str::to_string))
        .unwrap_or_else(|| "?".into());
    println!(
        "{addr}: {role}, journal offset {}, log id {:#010x}",
        field(&ok, "offset"),
        field(&ok, "log_id")
    );
    if let Some(leader) = ok.get("leader").filter(|l| !l.is_null()) {
        println!("leader: {}", leader.as_str().unwrap_or("?"));
    }
    if role == "replica" {
        if let Some(sync) = ok.get("sync") {
            let flag = |key: &str| sync.get(key).and_then(|b| b.as_bool()).unwrap_or_default();
            println!(
                "sync: connected {} caught_up {} offset {}/{} · {} fetches, {} records, \
                 {} files, {} bootstraps",
                flag("connected"),
                flag("caught_up"),
                field(&sync, "offset"),
                field(&sync, "leader_len"),
                field(&sync, "fetches"),
                field(&sync, "records_applied"),
                field(&sync, "files_fetched"),
                field(&sync, "bootstraps"),
            );
            if let Some(err) = sync.get("last_error").filter(|e| !e.is_null()) {
                println!("last error: {}", err.as_str().unwrap_or("?"));
            }
        }
    }
    let replicas = ok
        .get("replicas")
        .and_then(|r| r.as_array())
        .unwrap_or_default();
    if !replicas.is_empty() {
        println!(
            "{:<24} {:>12} {:>10} {:>8} {:>8} {:>12}",
            "replica", "offset", "lag", "fetches", "files", "last_seen_ms"
        );
        for r in &replicas {
            println!(
                "{:<24} {:>12} {:>10} {:>8} {:>8} {:>12}",
                r.get("name")
                    .and_then(|n| n.as_str().map(str::to_string))
                    .unwrap_or_else(|| "?".into()),
                field(r, "offset"),
                field(r, "lag"),
                field(r, "fetches"),
                field(r, "files_served"),
                field(r, "last_seen_ms"),
            );
        }
    }
    Ok(())
}
