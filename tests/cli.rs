//! End-to-end tests of the `motivo` command-line tool: every subcommand,
//! driven through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn motivo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_motivo"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("motivo-cli-test-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn motivo");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn generate_info_convert_roundtrip() {
    let dir = workdir("gen");
    let g = dir.join("g.mtvg");
    let out = run(motivo()
        .args([
            "generate", "--model", "er", "--nodes", "500", "--param", "3", "--seed", "2",
        ])
        .arg("--out")
        .arg(&g));
    assert!(out.contains("500 nodes"), "{out}");
    let info = run(motivo().arg("info").arg(&g));
    assert!(info.contains("nodes        500"), "{info}");
    assert!(info.contains("edges        1500"), "{info}");

    // Text → binary conversion.
    let txt = dir.join("edges.txt");
    std::fs::write(&txt, "0 1\n1 2\n2 0\n# comment\n3 0\n").unwrap();
    let bin = dir.join("small.mtvg");
    run(motivo().arg("convert").arg(&txt).arg(&bin));
    let info = run(motivo().arg("info").arg(&bin));
    assert!(info.contains("nodes        4"), "{info}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exact_names_the_classes() {
    let dir = workdir("exact");
    let g = dir.join("k6.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "lollipop", "--nodes", "10", "--param", "3",
        ])
        .arg("--out")
        .arg(&g));
    let out = run(motivo().arg("exact").arg(&g).args(["-k", "3"]));
    assert!(out.contains("triangle"), "{out}");
    assert!(out.contains("path-3"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn count_reports_ensemble_estimates() {
    let dir = workdir("count");
    let g = dir.join("g.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "ba", "--nodes", "400", "--param", "3", "--seed", "7",
        ])
        .arg("--out")
        .arg(&g));
    let out = run(motivo().arg("count").arg(&g).args([
        "-k",
        "4",
        "--samples",
        "10000",
        "--runs",
        "3",
        "--top",
        "8",
    ]));
    assert!(out.contains("estimated total 4-graphlet copies"), "{out}");
    assert!(out.contains("star-4"), "{out}");
    assert!(out.contains("path-4"), "{out}");
    // AGS variant runs too.
    let out = run(motivo().arg("count").arg(&g).args([
        "-k",
        "4",
        "--samples",
        "10000",
        "--runs",
        "2",
        "--ags",
    ]));
    assert!(out.contains("graphlet"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_then_sample_from_persisted_urn() {
    let dir = workdir("persist");
    let g = dir.join("g.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "ba", "--nodes", "300", "--param", "3", "--seed", "9",
        ])
        .arg("--out")
        .arg(&g));
    let urn = dir.join("urn");
    let out = run(motivo()
        .arg("build")
        .arg(&g)
        .args(["-k", "4", "--seed", "3", "--table"])
        .arg(&urn));
    assert!(out.contains("built urn"), "{out}");
    assert!(urn.join("table.meta").exists());
    assert!(urn.join("coloring.mtvc").exists());
    let out = run(motivo()
        .arg("sample")
        .arg(&g)
        .arg("--table")
        .arg(&urn)
        .args(["--samples", "20000", "--seed", "4"]));
    assert!(out.contains("samples"), "{out}");
    assert!(out.contains("star-4") || out.contains("path-4"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `build --codec succinct` persists a v2 table, `table stats` reports its
/// compression ratio, and `sample` serves from it transparently.
#[test]
fn succinct_build_table_stats_and_sample() {
    let dir = workdir("codec");
    let g = dir.join("g.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "ba", "--nodes", "400", "--param", "3", "--seed", "8",
        ])
        .arg("--out")
        .arg(&g));
    let plain = dir.join("urn-plain");
    let succ = dir.join("urn-succinct");
    for (codec, urn) in [("plain", &plain), ("succinct", &succ)] {
        let out = run(motivo()
            .arg("build")
            .arg(&g)
            .args(["-k", "5", "--seed", "3", "--codec", codec, "--table"])
            .arg(urn));
        assert!(out.contains(&format!("({codec} codec)")), "{out}");
    }

    // table stats reports the codec and a sub-60% ratio for succinct.
    let out = run(motivo().args(["table", "stats"]).arg(&succ));
    assert!(out.contains("codec=succinct"), "{out}");
    assert!(out.contains("ratio"), "{out}");
    let total_line = out
        .lines()
        .find(|l| l.trim_start().starts_with("total"))
        .expect("total row");
    let ratio: f64 = total_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert!(ratio <= 0.60, "succinct/plain ratio {ratio} above 60%");
    let out = run(motivo().args(["table", "stats"]).arg(&plain));
    assert!(out.contains("codec=plain"), "{out}");

    // Sampling from both persisted urns with one seed is identical output.
    let sample = |urn: &std::path::Path| {
        run(motivo()
            .arg("sample")
            .arg(&g)
            .arg("--table")
            .arg(urn)
            .args(["--samples", "20000", "--seed", "4", "--threads", "2"]))
    };
    let (sp, ss) = (sample(&plain), sample(&succ));
    // Strip the timing line (wall clock differs); the estimates must match.
    let tail = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
    assert_eq!(tail(&sp), tail(&ss), "codec changed sampled estimates");
    // An invalid codec fails cleanly.
    let out = motivo()
        .arg("build")
        .arg(&g)
        .args(["-k", "4", "--codec", "bogus", "--table"])
        .arg(dir.join("x"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_build_list_query_gc_flow() {
    let dir = workdir("store");
    let g = dir.join("g.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "ba", "--nodes", "250", "--param", "3", "--seed", "5",
        ])
        .arg("--out")
        .arg(&g));
    let repo = dir.join("repo");

    // First build creates urn-0; an identical request reuses it.
    let out = run(motivo()
        .args(["store", "build"])
        .arg(&g)
        .args(["-k", "4", "--seed", "2", "--store"])
        .arg(&repo));
    assert!(out.contains("built urn-0"), "{out}");
    assert!(repo.join("journal.log").exists());
    assert!(repo.join("urns/urn-0/table.meta").exists());
    let out = run(motivo()
        .args(["store", "build"])
        .arg(&g)
        .args(["-k", "4", "--seed", "2", "--store"])
        .arg(&repo));
    assert!(out.contains("reused urn-0"), "{out}");

    let out = run(motivo().args(["store", "list", "--store"]).arg(&repo));
    assert!(out.contains("urn-0"), "{out}");
    assert!(out.contains("built"), "{out}");
    assert!(out.contains("1 urns, 1 graphs"), "{out}");

    // Query without resupplying the graph: the store owns it.
    let out = run(motivo()
        .args(["store", "query", "urn-0", "--store"])
        .arg(&repo)
        .args(["--samples", "20000", "--seed", "3"]));
    assert!(out.contains("samples"), "{out}");
    assert!(out.contains("star-4") || out.contains("path-4"), "{out}");

    let out = run(motivo().args(["store", "gc", "--store"]).arg(&repo));
    assert!(out.contains("journal bytes compacted"), "{out}");
    assert!(repo.join("MANIFEST").exists());

    // Unknown urn fails cleanly.
    let out = motivo()
        .args(["store", "query", "urn-9", "--store"])
        .arg(&repo)
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = motivo().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

/// Bad input — unknown flags, flags missing their value, unparseable
/// values, missing files, bad urn ids — exits 1 with a one-line `error:`
/// on stderr, never a panic with a backtrace.
#[test]
fn bad_input_exits_nonzero_with_one_line_error() {
    let dir = workdir("badinput");
    let g = dir.join("g.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "er", "--nodes", "120", "--param", "2",
        ])
        .arg("--out")
        .arg(&g));

    let g_str = g.to_str().unwrap();
    let cases: Vec<(Vec<&str>, &str)> = vec![
        // Unknown flags are rejected, not silently ignored.
        (
            vec!["count", g_str, "-k", "4", "--bogus", "1"],
            "unknown flag --bogus",
        ),
        (vec!["generate", "--nodse", "100"], "unknown flag --nodse"),
        (
            vec!["serve", "--store", "x", "--loud"],
            "unknown flag --loud",
        ),
        // A value flag at the end of the line has no value.
        (vec!["count", g_str, "-k"], "requires a value"),
        // Unparseable values are an error, not a silent default.
        (
            vec!["count", g_str, "-k", "4", "--samples", "abc"],
            "invalid value for --samples",
        ),
        (
            vec!["generate", "--nodes", "many", "--out", "x.mtvg"],
            "invalid value for --nodes",
        ),
        (
            vec!["exact", g_str, "-k", "banana"],
            "invalid value for --k",
        ),
        // Missing files fail cleanly.
        (vec!["info", "no-such-graph.mtvg"], "cannot load graph"),
        (
            vec!["sample", "no-such.mtvg", "--table", "nope"],
            "cannot load graph",
        ),
        // Malformed client requests fail before any connection attempt.
        (vec!["client", "127.0.0.1:1", "{not json"], "not valid JSON"),
        // Bad urn ids and codecs.
        (vec!["store", "query", "urn-x"], "usage: store query"),
        (
            vec!["build", g_str, "-k", "4", "--codec", "zip", "--table", "t"],
            "unknown codec",
        ),
    ];
    for (args, needle) in cases {
        let out = motivo().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{args:?} must exit 1");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: stderr was {stderr:?}");
        assert!(
            !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
            "{args:?} panicked: {stderr:?}"
        );
        assert_eq!(
            stderr.lines().count(),
            1,
            "{args:?}: expected a one-line error, got {stderr:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `client -` reads the request from stdin; malformed input exits 1 with
/// a one-line error before any connection attempt (so no server needed).
#[test]
fn client_stdin_malformed_input_fails_cleanly() {
    use std::io::Write;
    use std::process::Stdio;
    let cases: Vec<(Vec<&str>, &str, &str)> = vec![
        // Bad JSON on stdin.
        (
            vec!["client", "127.0.0.1:1", "-"],
            "{not json",
            "not valid JSON",
        ),
        // Valid JSON, but --batch needs an array.
        (
            vec!["client", "127.0.0.1:1", "-", "--batch"],
            r#"{"type":"Ping"}"#,
            "expects a JSON array",
        ),
        // Empty stdin is not a request.
        (vec!["client", "127.0.0.1:1", "-"], "", "not valid JSON"),
    ];
    for (args, stdin, needle) in cases {
        let mut child = motivo()
            .args(&args)
            .stdin(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(stdin.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{args:?} must exit 1");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: stderr was {stderr:?}");
        assert_eq!(
            stderr.lines().count(),
            1,
            "{args:?}: expected a one-line error, got {stderr:?}"
        );
    }
}

#[test]
fn missing_required_flag_fails() {
    let dir = workdir("missing");
    let g = dir.join("g.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "er", "--nodes", "100", "--param", "2",
        ])
        .arg("--out")
        .arg(&g));
    let out = motivo().arg("count").arg(&g).output().unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

/// `motivo stats <addr>` renders the per-kind latency table from a live
/// daemon, and `--raw` dumps the Prometheus-style text body.
#[test]
fn stats_command_reports_per_kind_latencies() {
    use std::io::BufRead;

    let dir = workdir("stats");
    let g = dir.join("g.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "ba", "--nodes", "200", "--param", "3", "--seed", "5",
        ])
        .arg("--out")
        .arg(&g));
    let store = dir.join("store");
    let mut build = motivo();
    build.args(["store", "build"]).arg(&g).args(["-k", "4"]);
    run(build.arg("--store").arg(&store));

    let mut serve = motivo()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .arg("--store")
        .arg(&store)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut lines = std::io::BufReader::new(serve.stdout.take().unwrap()).lines();
    let first = lines.next().expect("serve banner").unwrap();
    let addr = first
        .strip_prefix("listening on ")
        .expect(&first)
        .to_string();

    for seed in 0..3 {
        let req = format!(r#"{{"type":"Sample","urn":0,"samples":500,"seed":{seed}}}"#);
        run(motivo().args(["client", &addr, &req]));
    }
    let table = run(motivo().args(["stats", &addr]));
    assert!(table.contains("uptime:"), "{table}");
    assert!(table.contains("Sample"), "{table}");
    assert!(table.contains("p99_us"), "{table}");
    assert!(table.contains("service: count"), "{table}");
    let raw = run(motivo().args(["stats", &addr, "--raw"]));
    assert!(raw.contains("motivo_server_requests_sample 3"), "{raw}");
    assert!(raw.contains("# TYPE"), "{raw}");

    run(motivo().args(["client", &addr, r#"{"type":"Shutdown"}"#]));
    let status = serve.wait().expect("serve exits");
    assert!(status.success());
    std::fs::remove_dir_all(&dir).ok();
}

/// The out-of-core path end to end: a build under a tiny memtable budget
/// must report its spill rounds, leave no scratch behind, produce level
/// files byte-identical to the unbudgeted build, and `table stats` must
/// surface the block counts and build history.
#[test]
fn budgeted_build_matches_unbudgeted_byte_for_byte() {
    let dir = workdir("oom");
    let g = dir.join("g.mtvg");
    run(motivo()
        .args([
            "generate", "--model", "ba", "--nodes", "300", "--param", "3", "--seed", "9",
        ])
        .arg("--out")
        .arg(&g));
    let reference = dir.join("urn-ref");
    let budgeted = dir.join("urn-budget");
    let out = run(motivo()
        .arg("build")
        .arg(&g)
        .args(["-k", "4", "--seed", "3", "--codec", "succinct", "--table"])
        .arg(&reference));
    assert!(out.contains("spill runs: 0 "), "{out}");
    let out = run(motivo()
        .arg("build")
        .arg(&g)
        .args(["-k", "4", "--seed", "3", "--codec", "succinct"])
        .args(["--build-mem-bytes", "4096", "--table"])
        .arg(&budgeted));
    let spills: u64 = out
        .lines()
        .find_map(|l| l.strip_prefix("spill runs: "))
        .and_then(|rest| rest.split_whitespace().next())
        .expect("spill line")
        .parse()
        .expect("spill count");
    assert!(spills >= 2, "4 KiB budget must force ≥2 spills: {out}");
    // The scratch spill directory is cleaned up after persisting.
    assert!(
        !dir.join("urn-budget.build-tmp").exists(),
        "scratch dir left behind"
    );
    for h in 1..=4 {
        let a = std::fs::read(reference.join(format!("level-{h}.mtvb"))).unwrap();
        let b = std::fs::read(budgeted.join(format!("level-{h}.mtvb"))).unwrap();
        assert_eq!(a, b, "level {h} diverged between budgeted and unbudgeted");
    }
    let stats = run(motivo().args(["table", "stats"]).arg(&budgeted));
    assert!(stats.contains("blocks"), "{stats}");
    assert!(stats.contains("build history:"), "{stats}");
    let history = stats
        .lines()
        .find(|l| l.starts_with("build history:"))
        .unwrap()
        .to_string();
    assert!(
        history.contains(&format!("{spills} spill runs")),
        "{history} vs {spills}"
    );
}
