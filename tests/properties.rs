//! Cross-crate property tests (proptest): the invariants that hold for
//! *every* input, not just the hand-picked unit cases.

use motivo::core::checksum::crc32;
use motivo::graphlet::spanning::SmallCounts;
use motivo::prelude::*;
use motivo::store::{BuildKey, GraphMeta, Journal, ManifestRecord, SEGMENT_MAX_BYTES};
use proptest::prelude::*;
use std::path::PathBuf;

/// Random parent array of a rooted tree on `n ≤ 10` nodes.
fn parents_strategy() -> impl Strategy<Value = Vec<u8>> {
    (2usize..=10).prop_flat_map(|n| {
        let mut parts: Vec<BoxedStrategy<u8>> = vec![Just(0u8).boxed()];
        for i in 1..n {
            parts.push((0..i as u8).boxed());
        }
        parts
    })
}

/// Random small simple graph as (n, edges).
fn graph_strategy(max_n: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..=(n as usize * 3));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Treelet canonical encoding: building from any parent array and
    /// re-deriving parents is a fixed point, and merge ∘ decomp = id.
    #[test]
    fn treelet_roundtrip(parents in parents_strategy()) {
        let t = Treelet::from_parents(&parents);
        prop_assert!(t.is_valid());
        prop_assert_eq!(t.size() as usize, parents.len());
        prop_assert_eq!(Treelet::from_parents(&t.parents()), t);
        if !t.is_singleton() {
            let (rest, child) = t.decomp();
            prop_assert_eq!(rest.merge(child), Some(t));
        }
    }

    /// Graphlet canonicalization is invariant under relabeling and
    /// idempotent.
    #[test]
    fn canonical_form_invariant(
        (n, edges) in graph_strategy(8),
        perm_seed in 0u64..1_000,
    ) {
        let k = n as u8;
        let small: Vec<(u8, u8)> = edges
            .iter()
            .filter(|&&(a, b)| a != b)
            .map(|&(a, b)| (a as u8, b as u8))
            .collect();
        let g = Graphlet::from_edges(k, &small);
        // A deterministic pseudo-random permutation.
        let mut perm: Vec<u8> = (0..k).collect();
        let mut state = perm_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in (1..k as usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let h = g.relabel(&perm);
        prop_assert_eq!(h.canonical(), g.canonical());
        prop_assert_eq!(g.canonical().canonical(), g.canonical());
    }

    /// The production DP equals the reference DP on arbitrary graphs and
    /// colorings (every vertex, every colored treelet, every size).
    #[test]
    fn engine_matches_reference_dp(
        (n, edges) in graph_strategy(12),
        k in 3u32..=4,
        color_seed in 0u64..500,
    ) {
        let clean: Vec<(u32, u32)> =
            edges.iter().filter(|&&(a, b)| a != b).copied().collect();
        let graph = Graph::from_edges(n, &clean);
        // Deterministic colors from the seed.
        let colors: Vec<u8> = (0..n)
            .map(|v| {
                let x = (v as u64 + 1).wrapping_mul(color_seed.wrapping_add(7))
                    .wrapping_mul(0x9E3779B97F4A7C15);
                ((x >> 32) % k as u64) as u8
            })
            .collect();
        let cfg = BuildConfig {
            zero_rooting: false,
            threads: 2,
            coloring: ColoringSpec::Fixed(colors.clone()),
            ..BuildConfig::new(k)
        };
        let coloring = Coloring::fixed(colors.clone(), k);
        let (table, _) = motivo::core::build::build_table(&graph, &coloring, &cfg).unwrap();
        let verts: Vec<u32> = (0..n).collect();
        let rows = graph.induced_rows(&verts);
        let reference = SmallCounts::build(&rows, &colors, k);
        for v in 0..n {
            for h in 1..=k {
                let got: Vec<(ColoredTreelet, u128)> = table.get(h, v).unwrap().iter().collect();
                let want: Vec<(ColoredTreelet, u128)> = reference.per_vertex[v as usize]
                    .iter()
                    .filter(|(ct, _)| ct.size() == h)
                    .map(|(&ct, &c)| (ct, c))
                    .collect();
                prop_assert_eq!(&got, &want, "vertex {} size {}", v, h);
            }
        }
    }

    /// ESU totals equal brute force on arbitrary small graphs.
    #[test]
    fn esu_equals_bruteforce((n, edges) in graph_strategy(10), k in 3u8..=5) {
        let clean: Vec<(u32, u32)> =
            edges.iter().filter(|&&(a, b)| a != b).copied().collect();
        let graph = Graph::from_edges(n, &clean);
        let esu = motivo::exact::count_exact(&graph, k);
        let bf = motivo::exact::count_exact_bruteforce(&graph, k);
        prop_assert_eq!(esu.total, bf.total);
        prop_assert_eq!(esu.counts, bf.counts);
    }

    /// Count-table records: select() hits every entry exactly count times,
    /// and per-tree totals tile the overall total.
    #[test]
    fn record_selection_partitions(counts in proptest::collection::vec(1u32..50, 1..12)) {
        // Build distinct valid colored-treelet keys of sizes 2 and 3.
        let shapes = [
            motivo::treelet::path_treelet(2),
            motivo::treelet::path_treelet(3),
            motivo::treelet::star_treelet(3),
        ];
        let mut pairs: Vec<(u64, u128)> = Vec::new();
        let full = ColorSet::full(6);
        'outer: for (i, &c) in counts.iter().enumerate() {
            for (si, &shape) in shapes.iter().enumerate() {
                let subsets = full.subsets_of_size(shape.size());
                let idx = i * 3 + si;
                if idx < subsets.len() {
                    pairs.push((
                        ColoredTreelet::new(shape, subsets[idx]).code(),
                        c as u128,
                    ));
                    continue 'outer;
                }
            }
            break;
        }
        let rec = motivo::table::Record::from_counts(pairs.clone());
        let total = rec.total();
        prop_assert_eq!(total, pairs.iter().map(|&(_, c)| c).sum::<u128>());
        let mut tally = std::collections::HashMap::new();
        for r in 1..=total {
            *tally.entry(rec.select(r).code()).or_insert(0u128) += 1;
        }
        for (ct, c) in rec.iter() {
            prop_assert_eq!(tally[&ct.code()], c);
        }
        let tree_sum: u128 = shapes.iter().map(|&s| rec.tree_total(s)).sum();
        prop_assert_eq!(tree_sum, total);
    }

    /// Kirchhoff σ times k equals the rooted-spanning-shape totals for
    /// arbitrary connected graphlets.
    #[test]
    fn sigma_rooted_total_invariant((n, edges) in graph_strategy(7)) {
        let k = n as u8;
        let small: Vec<(u8, u8)> = edges
            .iter()
            .filter(|&&(a, b)| a != b)
            .map(|&(a, b)| (a as u8, b as u8))
            .collect();
        let g = Graphlet::from_edges(k, &small);
        prop_assume!(g.is_connected());
        let family = motivo::treelet::TreeletFamily::new(k as u32);
        let sigma = motivo::graphlet::spanning::sigma_rooted(&g, &family);
        let total: u128 = sigma.iter().map(|&s| s as u128).sum();
        let kirchhoff = motivo::graphlet::kirchhoff::spanning_tree_count(&g);
        prop_assert_eq!(total, k as u128 * kirchhoff);
    }
}

// ---------------------------------------------------------------------------
// Replication protocol: the journal IS the replication log, so these pin the
// three invariants the replica's correctness rests on — frames roundtrip for
// every record type, corrupted frames are rejected without poisoning the
// intact prefix, and resuming from any durable offset replays exactly the
// suffix a full replay would.

/// An arbitrary manifest record, covering every variant the replication
/// stream can carry.
fn manifest_record_strategy() -> impl Strategy<Value = ManifestRecord> {
    (
        0u8..5,
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (1u32..=16, any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(tag, (a, b, c), (k, with_lambda, zero_rooting))| match tag {
                0 => ManifestRecord::GraphAdded(GraphMeta {
                    fingerprint: a,
                    nodes: b as u32,
                    edges: c,
                }),
                1 => ManifestRecord::BuildStarted {
                    id: UrnId(a),
                    key: BuildKey {
                        fingerprint: b,
                        k,
                        seed: c,
                        lambda_bits: if with_lambda { Some(a ^ b) } else { None },
                        zero_rooting,
                        codec: if c & 1 == 0 {
                            RecordCodec::Plain
                        } else {
                            RecordCodec::Succinct
                        },
                    },
                },
                2 => ManifestRecord::BuildFinished {
                    id: UrnId(a),
                    table_bytes: b,
                    records: c,
                    // Exactly representable, so it roundtrips through the
                    // f64-LE encoding under `PartialEq`.
                    build_secs: (b % 1_000_000) as f64 / 1024.0,
                },
                3 => ManifestRecord::BuildFailed { id: UrnId(a) },
                _ => ManifestRecord::Removed { id: UrnId(a) },
            },
        )
}

/// Scratch path under the temp dir; each property test owns one name, so
/// parallel test threads never collide.
fn prop_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("motivo-prop-replication");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Writes `records` into a fresh journal at `path`, returning the raw file
/// bytes and each frame's end offset (the durable-offset boundaries).
fn write_record_journal(
    path: &std::path::Path,
    records: &[ManifestRecord],
) -> (Vec<u8>, Vec<usize>) {
    std::fs::remove_file(path).ok();
    let mut journal = Journal::open(path).unwrap().journal;
    let mut ends = Vec::with_capacity(records.len());
    let mut at = 0usize;
    for r in records {
        let payload = r.encode();
        journal.append(&payload).unwrap();
        at += 8 + payload.len();
        ends.push(at);
    }
    drop(journal);
    let raw = std::fs::read(path).unwrap();
    assert_eq!(raw.len(), at, "frame layout is len:u32 crc:u32 payload");
    (raw, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every record type survives encode → decode bit-exactly, and a
    /// journal replays the exact frame stream it appended.
    #[test]
    fn replication_frames_roundtrip(
        records in proptest::collection::vec(manifest_record_strategy(), 1..12),
    ) {
        for r in &records {
            prop_assert_eq!(&ManifestRecord::decode(&r.encode()).unwrap(), r);
        }
        let path = prop_path("roundtrip.log");
        let (raw, ends) = write_record_journal(&path, &records);
        prop_assert_eq!(*ends.last().unwrap(), raw.len());
        let replay = Journal::open(&path).unwrap();
        prop_assert_eq!(replay.truncated_bytes, 0);
        prop_assert_eq!(replay.entries.len(), records.len());
        for (entry, r) in replay.entries.iter().zip(&records) {
            prop_assert_eq!(&ManifestRecord::decode(entry).unwrap(), r);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncated, bit-flipped, and length-corrupted frames are rejected:
    /// replay surfaces exactly the intact prefix — never a corrupted or
    /// later frame — and the reopened journal is healed.
    #[test]
    fn corrupt_frames_never_replay(
        records in proptest::collection::vec(manifest_record_strategy(), 1..10),
        corrupt in (0u8..3, any::<u64>(), 0u8..8),
    ) {
        let path = prop_path("corrupt.log");
        let (raw, ends) = write_record_journal(&path, &records);
        let (mode, pos_seed, bit) = corrupt;
        let frame_of = |p: usize| ends.iter().position(|&e| p < e).unwrap();
        let intact = match mode {
            0 => {
                // Torn tail: the file stops mid-frame (or mid-header).
                let cut = (pos_seed % raw.len() as u64) as usize;
                std::fs::write(&path, &raw[..cut]).unwrap();
                ends.iter().filter(|&&e| e <= cut).count()
            }
            1 => {
                // A single flipped bit anywhere in the stream.
                let p = (pos_seed % raw.len() as u64) as usize;
                let mut bytes = raw.clone();
                bytes[p] ^= 1 << bit;
                std::fs::write(&path, &bytes).unwrap();
                frame_of(p)
            }
            _ => {
                // One frame's length header off by 1..=4096.
                let j = (pos_seed % records.len() as u64) as usize;
                let start = if j == 0 { 0 } else { ends[j - 1] };
                let mut bytes = raw.clone();
                let len = u32::from_le_bytes(bytes[start..start + 4].try_into().unwrap());
                let delta = 1 + (pos_seed % 4096) as u32;
                bytes[start..start + 4]
                    .copy_from_slice(&len.wrapping_add(delta).to_le_bytes());
                std::fs::write(&path, &bytes).unwrap();
                j
            }
        };
        let replay = Journal::open(&path).unwrap();
        prop_assert_eq!(replay.entries.len(), intact);
        for (entry, r) in replay.entries.iter().zip(&records) {
            prop_assert_eq!(&ManifestRecord::decode(entry).unwrap(), r);
        }
        // The open truncated the corrupt tail; a reopen is clean.
        let reopened = Journal::open(&path).unwrap();
        prop_assert_eq!(reopened.truncated_bytes, 0);
        prop_assert_eq!(reopened.entries.len(), intact);
        std::fs::remove_file(&path).ok();
    }

    /// Offset-resume equivalence: a segment served from any frame boundary
    /// `k` equals the full-replay suffix past `k`; mid-frame offsets and
    /// divergent prefix CRCs are refused as stale, never served.
    #[test]
    fn journal_segment_resume_equivalence(
        graphs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>()), 1..10),
        pick in (any::<u64>(), any::<u64>()),
    ) {
        // GraphAdded-only journals: `UrnStore::open` replays them without
        // recovery side effects that would append to the log.
        let records: Vec<ManifestRecord> = graphs
            .iter()
            .map(|&(f, n, e)| ManifestRecord::GraphAdded(GraphMeta {
                fingerprint: f,
                nodes: n as u32,
                edges: e,
            }))
            .collect();
        let dir = prop_path("segment-store");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let (raw, ends) = write_record_journal(&dir.join("journal.log"), &records);
        let store = UrnStore::open(&dir).unwrap();
        let full = store.journal_segment(0, crc32(&[]), SEGMENT_MAX_BYTES).unwrap();
        prop_assert!(!full.stale);
        prop_assert_eq!(full.payloads.len(), records.len());
        prop_assert_eq!(full.leader_len, raw.len() as u64);
        let mut boundaries = vec![0usize];
        boundaries.extend(&ends);
        let idx = (pick.0 % boundaries.len() as u64) as usize;
        let at = boundaries[idx];
        let seg = store
            .journal_segment(at as u64, crc32(&raw[..at]), SEGMENT_MAX_BYTES)
            .unwrap();
        prop_assert!(!seg.stale);
        prop_assert_eq!(&seg.payloads[..], &full.payloads[idx..]);
        prop_assert_eq!(seg.leader_len, full.leader_len);
        // A mid-frame offset is stale even with a matching prefix CRC.
        if raw.len() > 1 {
            let off = 1 + (pick.1 % (raw.len() as u64 - 1)) as usize;
            if !boundaries.contains(&off) {
                let torn = store
                    .journal_segment(off as u64, crc32(&raw[..off]), SEGMENT_MAX_BYTES)
                    .unwrap();
                prop_assert!(torn.stale);
            }
        }
        // So is a boundary offset under the wrong prefix CRC (a replica
        // whose log diverged from this leader's lineage).
        if at > 0 {
            let bad = store
                .journal_segment(at as u64, crc32(&raw[..at]) ^ 1, SEGMENT_MAX_BYTES)
                .unwrap();
            prop_assert!(bad.stale);
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
