//! Cross-crate property tests (proptest): the invariants that hold for
//! *every* input, not just the hand-picked unit cases.

use motivo::graphlet::spanning::SmallCounts;
use motivo::prelude::*;
use proptest::prelude::*;

/// Random parent array of a rooted tree on `n ≤ 10` nodes.
fn parents_strategy() -> impl Strategy<Value = Vec<u8>> {
    (2usize..=10).prop_flat_map(|n| {
        let mut parts: Vec<BoxedStrategy<u8>> = vec![Just(0u8).boxed()];
        for i in 1..n {
            parts.push((0..i as u8).boxed());
        }
        parts
    })
}

/// Random small simple graph as (n, edges).
fn graph_strategy(max_n: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..=(n as usize * 3));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Treelet canonical encoding: building from any parent array and
    /// re-deriving parents is a fixed point, and merge ∘ decomp = id.
    #[test]
    fn treelet_roundtrip(parents in parents_strategy()) {
        let t = Treelet::from_parents(&parents);
        prop_assert!(t.is_valid());
        prop_assert_eq!(t.size() as usize, parents.len());
        prop_assert_eq!(Treelet::from_parents(&t.parents()), t);
        if !t.is_singleton() {
            let (rest, child) = t.decomp();
            prop_assert_eq!(rest.merge(child), Some(t));
        }
    }

    /// Graphlet canonicalization is invariant under relabeling and
    /// idempotent.
    #[test]
    fn canonical_form_invariant(
        (n, edges) in graph_strategy(8),
        perm_seed in 0u64..1_000,
    ) {
        let k = n as u8;
        let small: Vec<(u8, u8)> = edges
            .iter()
            .filter(|&&(a, b)| a != b)
            .map(|&(a, b)| (a as u8, b as u8))
            .collect();
        let g = Graphlet::from_edges(k, &small);
        // A deterministic pseudo-random permutation.
        let mut perm: Vec<u8> = (0..k).collect();
        let mut state = perm_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in (1..k as usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let h = g.relabel(&perm);
        prop_assert_eq!(h.canonical(), g.canonical());
        prop_assert_eq!(g.canonical().canonical(), g.canonical());
    }

    /// The production DP equals the reference DP on arbitrary graphs and
    /// colorings (every vertex, every colored treelet, every size).
    #[test]
    fn engine_matches_reference_dp(
        (n, edges) in graph_strategy(12),
        k in 3u32..=4,
        color_seed in 0u64..500,
    ) {
        let clean: Vec<(u32, u32)> =
            edges.iter().filter(|&&(a, b)| a != b).copied().collect();
        let graph = Graph::from_edges(n, &clean);
        // Deterministic colors from the seed.
        let colors: Vec<u8> = (0..n)
            .map(|v| {
                let x = (v as u64 + 1).wrapping_mul(color_seed.wrapping_add(7))
                    .wrapping_mul(0x9E3779B97F4A7C15);
                ((x >> 32) % k as u64) as u8
            })
            .collect();
        let cfg = BuildConfig {
            zero_rooting: false,
            threads: 2,
            coloring: ColoringSpec::Fixed(colors.clone()),
            ..BuildConfig::new(k)
        };
        let coloring = Coloring::fixed(colors.clone(), k);
        let (table, _) = motivo::core::build::build_table(&graph, &coloring, &cfg).unwrap();
        let verts: Vec<u32> = (0..n).collect();
        let rows = graph.induced_rows(&verts);
        let reference = SmallCounts::build(&rows, &colors, k);
        for v in 0..n {
            for h in 1..=k {
                let got: Vec<(ColoredTreelet, u128)> = table.get(h, v).unwrap().iter().collect();
                let want: Vec<(ColoredTreelet, u128)> = reference.per_vertex[v as usize]
                    .iter()
                    .filter(|(ct, _)| ct.size() == h)
                    .map(|(&ct, &c)| (ct, c))
                    .collect();
                prop_assert_eq!(&got, &want, "vertex {} size {}", v, h);
            }
        }
    }

    /// ESU totals equal brute force on arbitrary small graphs.
    #[test]
    fn esu_equals_bruteforce((n, edges) in graph_strategy(10), k in 3u8..=5) {
        let clean: Vec<(u32, u32)> =
            edges.iter().filter(|&&(a, b)| a != b).copied().collect();
        let graph = Graph::from_edges(n, &clean);
        let esu = motivo::exact::count_exact(&graph, k);
        let bf = motivo::exact::count_exact_bruteforce(&graph, k);
        prop_assert_eq!(esu.total, bf.total);
        prop_assert_eq!(esu.counts, bf.counts);
    }

    /// Count-table records: select() hits every entry exactly count times,
    /// and per-tree totals tile the overall total.
    #[test]
    fn record_selection_partitions(counts in proptest::collection::vec(1u32..50, 1..12)) {
        // Build distinct valid colored-treelet keys of sizes 2 and 3.
        let shapes = [
            motivo::treelet::path_treelet(2),
            motivo::treelet::path_treelet(3),
            motivo::treelet::star_treelet(3),
        ];
        let mut pairs: Vec<(u64, u128)> = Vec::new();
        let full = ColorSet::full(6);
        'outer: for (i, &c) in counts.iter().enumerate() {
            for (si, &shape) in shapes.iter().enumerate() {
                let subsets = full.subsets_of_size(shape.size());
                let idx = i * 3 + si;
                if idx < subsets.len() {
                    pairs.push((
                        ColoredTreelet::new(shape, subsets[idx]).code(),
                        c as u128,
                    ));
                    continue 'outer;
                }
            }
            break;
        }
        let rec = motivo::table::Record::from_counts(pairs.clone());
        let total = rec.total();
        prop_assert_eq!(total, pairs.iter().map(|&(_, c)| c).sum::<u128>());
        let mut tally = std::collections::HashMap::new();
        for r in 1..=total {
            *tally.entry(rec.select(r).code()).or_insert(0u128) += 1;
        }
        for (ct, c) in rec.iter() {
            prop_assert_eq!(tally[&ct.code()], c);
        }
        let tree_sum: u128 = shapes.iter().map(|&s| rec.tree_total(s)).sum();
        prop_assert_eq!(tree_sum, total);
    }

    /// Kirchhoff σ times k equals the rooted-spanning-shape totals for
    /// arbitrary connected graphlets.
    #[test]
    fn sigma_rooted_total_invariant((n, edges) in graph_strategy(7)) {
        let k = n as u8;
        let small: Vec<(u8, u8)> = edges
            .iter()
            .filter(|&&(a, b)| a != b)
            .map(|&(a, b)| (a as u8, b as u8))
            .collect();
        let g = Graphlet::from_edges(k, &small);
        prop_assume!(g.is_connected());
        let family = motivo::treelet::TreeletFamily::new(k as u32);
        let sigma = motivo::graphlet::spanning::sigma_rooted(&g, &family);
        let total: u128 = sigma.iter().map(|&s| s as u128).sum();
        let kirchhoff = motivo::graphlet::kirchhoff::spanning_tree_count(&g);
        prop_assert_eq!(total, k as u128 * kirchhoff);
    }
}
