//! End-to-end accuracy: the full pipeline (color → build → sample →
//! estimate) against exact ESU ground truth, mirroring the §5.2 protocol
//! (average over colorings, ℓ1 error and per-class count errors).

use motivo::core::stats;
use motivo::prelude::*;
use std::collections::HashMap;

/// Average naive estimates over several colorings and compare with exact
/// counts class by class.
fn run_naive_vs_exact(graph: &Graph, k: u32, colorings: u64, samples: u64) -> (f64, Vec<f64>) {
    let exact = motivo::exact::count_exact(graph, k as u8);
    let mut registry = GraphletRegistry::new(k as u8);
    let truth: HashMap<usize, u64> = exact.by_registry(&mut registry);

    let mut acc: HashMap<usize, f64> = HashMap::new();
    for seed in 0..colorings {
        let urn = match build_urn(graph, &BuildConfig::new(k).seed(seed)) {
            Ok(u) => u,
            Err(BuildError::EmptyUrn) => continue, // contributes zero
            Err(e) => panic!("build failed: {e}"),
        };
        let est = naive_estimates(&urn, &mut registry, samples, &SampleConfig::seeded(seed));
        for e in &est.per_graphlet {
            *acc.entry(e.index).or_insert(0.0) += e.count;
        }
    }
    let est_avg: HashMap<usize, f64> = acc
        .into_iter()
        .map(|(i, c)| (i, c / colorings as f64))
        .collect();

    let total_truth: f64 = truth.values().map(|&c| c as f64).sum();
    let truth_freq: HashMap<usize, f64> = truth
        .iter()
        .map(|(&i, &c)| (i, c as f64 / total_truth))
        .collect();
    let total_est: f64 = est_avg.values().sum();
    let est_freq: HashMap<usize, f64> = est_avg.iter().map(|(&i, &c)| (i, c / total_est)).collect();
    let l1 = stats::l1_error(&est_freq, &truth_freq);

    let truth_f64: HashMap<usize, f64> = truth.iter().map(|(&i, &c)| (i, c as f64)).collect();
    let errors: Vec<f64> = stats::count_errors(&est_avg, &truth_f64)
        .into_iter()
        .map(|(_, e)| e)
        .collect();
    (l1, errors)
}

#[test]
fn ba_graph_k4_l1_below_five_percent() {
    let graph = motivo::graph::generators::barabasi_albert(400, 3, 9);
    let (l1, errors) = run_naive_vs_exact(&graph, 4, 8, 60_000);
    assert!(l1 < 0.05, "ℓ1 error {l1} exceeds the paper's 5% envelope");
    // The frequent classes must all be within ±50%.
    let within =
        stats::fraction_within(&errors.iter().copied().enumerate().collect::<Vec<_>>(), 0.5);
    assert!(within >= 0.75, "only {within} of classes within ±50%");
}

#[test]
fn er_graph_k4_l1_below_five_percent() {
    let graph = motivo::graph::generators::erdos_renyi(500, 1500, 3);
    let (l1, _) = run_naive_vs_exact(&graph, 4, 8, 60_000);
    assert!(l1 < 0.05, "ℓ1 error {l1} exceeds 5%");
}

#[test]
fn k5_total_count_matches_exact() {
    // Calibration: the per-coloring estimate has ~10% relative std at this
    // size, so the coloring average (not the sample count) controls the
    // error; 8 colorings on n=300 lands well inside the 10% bar for the
    // deterministic seeds below, where 6 colorings on n=200 sat at ~1.8σ
    // and passed or failed on RNG-stream luck.
    let graph = motivo::graph::generators::barabasi_albert(300, 3, 2);
    let exact = motivo::exact::count_exact(&graph, 5);
    let mut registry = GraphletRegistry::new(5);
    let mut acc = 0.0;
    let colorings = 8;
    for seed in 0..colorings {
        let urn = match build_urn(&graph, &BuildConfig::new(5).seed(seed)) {
            Ok(u) => u,
            Err(_) => continue,
        };
        let est = naive_estimates(&urn, &mut registry, 40_000, &SampleConfig::seeded(seed));
        acc += est.total_count();
    }
    let avg = acc / colorings as f64;
    let truth = exact.total as f64;
    let rel = (avg - truth).abs() / truth;
    assert!(
        rel < 0.10,
        "total 5-graphlets {avg:.0} vs exact {truth:.0} ({rel:.3})"
    );
}

#[test]
fn ags_accuracy_matches_naive_on_flat_graph() {
    // §5.3: on flat distributions AGS is comparable (slightly worse) —
    // both must land near the exact counts for the dominant classes.
    let graph = motivo::graph::generators::erdos_renyi(400, 1000, 8);
    let k = 4u32;
    let exact = motivo::exact::count_exact(&graph, k as u8);
    let mut registry = GraphletRegistry::new(k as u8);
    let truth = exact.by_registry(&mut registry);
    let (&top_idx, &top_count) = truth.iter().max_by_key(|(_, &c)| c).unwrap();

    let mut naive_acc = 0.0;
    let mut ags_acc = 0.0;
    let colorings = 6;
    for seed in 0..colorings {
        let urn = match build_urn(&graph, &BuildConfig::new(k).seed(seed)) {
            Ok(u) => u,
            Err(_) => continue,
        };
        let naive = naive_estimates(&urn, &mut registry, 30_000, &SampleConfig::seeded(seed));
        naive_acc += naive.get(top_idx).map(|e| e.count).unwrap_or(0.0);
        let res = ags(
            &urn,
            &mut registry,
            &AgsConfig {
                c_bar: 500,
                max_samples: 30_000,
                ..AgsConfig::default()
            },
        );
        ags_acc += res.estimates.get(top_idx).map(|e| e.count).unwrap_or(0.0);
    }
    let truth_f = top_count as f64;
    for (name, acc) in [("naive", naive_acc), ("ags", ags_acc)] {
        let avg = acc / colorings as f64;
        let rel = (avg - truth_f).abs() / truth_f;
        assert!(
            rel < 0.15,
            "{name}: {avg:.0} vs {truth_f:.0} (rel {rel:.3})"
        );
    }
}

#[test]
fn disk_backed_pipeline_matches_memory() {
    let graph = motivo::graph::generators::barabasi_albert(300, 3, 5);
    let dir = std::env::temp_dir().join("motivo-e2e-disk");
    std::fs::remove_dir_all(&dir).ok();
    let mem_cfg = BuildConfig::new(4).seed(3);
    let disk_cfg = BuildConfig::new(4)
        .seed(3)
        .storage(StorageKind::Disk { dir: dir.clone() });
    let urn_mem = build_urn(&graph, &mem_cfg).unwrap();
    let urn_disk = build_urn(&graph, &disk_cfg).unwrap();
    assert_eq!(urn_mem.total_treelets(), urn_disk.total_treelets());
    // Same estimates with the same sampling seed. Registry indices depend
    // on discovery order, so compare by canonical code.
    let mut reg_a = GraphletRegistry::new(4);
    let mut reg_b = GraphletRegistry::new(4);
    let a = naive_estimates(
        &urn_mem,
        &mut reg_a,
        20_000,
        &SampleConfig::seeded(1).threads(1),
    );
    let b = naive_estimates(
        &urn_disk,
        &mut reg_b,
        20_000,
        &SampleConfig::seeded(1).threads(1),
    );
    assert_eq!(a.per_graphlet.len(), b.per_graphlet.len());
    let by_code = |est: &Estimates, reg: &GraphletRegistry| -> HashMap<u128, (u64, f64)> {
        est.per_graphlet
            .iter()
            .map(|e| (reg.info(e.index).graphlet.code(), (e.occurrences, e.count)))
            .collect()
    };
    let (ma, mb) = (by_code(&a, &reg_a), by_code(&b, &reg_b));
    for (code, (occ, count)) in ma {
        let (occ_b, count_b) = mb[&code];
        assert_eq!(occ, occ_b);
        assert!((count - count_b).abs() < 1e-6);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The succinct codec changes bytes, never counts: with a fixed seed every
/// estimator (naive, AGS, ensemble) must be **bit-identical** across
/// codecs, while the k=5 table shrinks by at least 40%.
#[test]
fn succinct_codec_is_bit_identical_and_forty_percent_smaller() {
    let graph = motivo::graph::generators::barabasi_albert(600, 4, 7);
    let k = 5u32;
    let mut urns = Vec::new();
    for codec in RecordCodec::ALL {
        let urn = build_urn(&graph, &BuildConfig::new(k).seed(3).codec(codec)).unwrap();
        urns.push(urn);
    }
    let (plain, succ) = (&urns[0], &urns[1]);

    // The urn-level aggregates are exactly equal.
    assert_eq!(plain.total_treelets(), succ.total_treelets());
    assert_eq!(plain.shape_totals(), succ.shape_totals());

    // Acceptance bar: ≥ 40% fewer bytes on a k=5 benchmark graph.
    let (pb, sb) = (
        plain.build_stats().table_bytes,
        succ.build_stats().table_bytes,
    );
    assert!(
        sb * 10 <= pb * 6,
        "succinct table {sb} B must be ≤ 60% of plain {pb} B"
    );

    // Naive estimates: bit-identical per class, multi-threaded.
    let mut reg_p = GraphletRegistry::new(k as u8);
    let mut reg_s = GraphletRegistry::new(k as u8);
    let np = naive_estimates(
        plain,
        &mut reg_p,
        20_000,
        &SampleConfig::seeded(5).threads(2),
    );
    let ns = naive_estimates(
        succ,
        &mut reg_s,
        20_000,
        &SampleConfig::seeded(5).threads(2),
    );
    assert_eq!(np.per_graphlet.len(), ns.per_graphlet.len());
    for (a, b) in np.per_graphlet.iter().zip(&ns.per_graphlet) {
        assert_eq!(reg_p.info(a.index).graphlet, reg_s.info(b.index).graphlet);
        assert_eq!(a.occurrences, b.occurrences);
        assert_eq!(a.count.to_bits(), b.count.to_bits(), "bit-identical counts");
    }

    // AGS: same switches, same estimates, bit for bit.
    let cfg = AgsConfig {
        c_bar: 300,
        max_samples: 10_000,
        sample: SampleConfig::seeded(9).threads(2),
        ..AgsConfig::default()
    };
    let ap = ags(plain, &mut reg_p, &cfg);
    let asucc = ags(succ, &mut reg_s, &cfg);
    assert_eq!(ap.estimates.samples, asucc.estimates.samples);
    for (a, b) in ap
        .estimates
        .per_graphlet
        .iter()
        .zip(&asucc.estimates.per_graphlet)
    {
        assert_eq!(a.occurrences, b.occurrences);
        assert_eq!(a.count.to_bits(), b.count.to_bits());
    }
    drop(urns);

    // Ensemble: full multi-coloring runs agree bit for bit too.
    let mut totals = Vec::new();
    for codec in RecordCodec::ALL {
        let mut registry = GraphletRegistry::new(k as u8);
        let cfg = EnsembleConfig {
            runs: 3,
            base_seed: 11,
            threads: 2,
            estimator: Estimator::Naive { samples: 5_000 },
            build: BuildConfig::new(k).codec(codec),
        };
        let res = ensemble(&graph, &mut registry, &cfg).unwrap();
        totals.push(res.total_count().to_bits());
    }
    assert_eq!(totals[0], totals[1], "ensemble bit-identical across codecs");
}

#[test]
fn biased_coloring_stays_unbiased() {
    // Biased coloring changes p_k but the estimator corrects for it; the
    // averaged estimate must still approach the truth (with more variance).
    let graph = motivo::graph::generators::barabasi_albert(400, 3, 6);
    let k = 4u32;
    let exact = motivo::exact::count_exact(&graph, k as u8);
    let truth = exact.total as f64;
    let lambda = 0.15; // < 1/k = 0.25
    let mut registry = GraphletRegistry::new(k as u8);
    let mut acc = 0.0;
    let colorings = 12;
    for seed in 0..colorings {
        let cfg = BuildConfig::new(k).seed(seed).biased(lambda);
        match build_urn(&graph, &cfg) {
            Ok(urn) => {
                let est = naive_estimates(&urn, &mut registry, 20_000, &SampleConfig::seeded(seed));
                acc += est.total_count();
            }
            Err(BuildError::EmptyUrn) => {}
            Err(e) => panic!("{e}"),
        }
    }
    let avg = acc / colorings as f64;
    let rel = (avg - truth).abs() / truth;
    assert!(
        rel < 0.25,
        "biased estimate {avg:.0} vs {truth:.0} (rel {rel:.3})"
    );
}

#[test]
fn biased_coloring_shrinks_the_table() {
    let graph = motivo::graph::generators::barabasi_albert(2_000, 4, 1);
    let k = 5u32;
    let uniform = build_urn(&graph, &BuildConfig::new(k).seed(2)).unwrap();
    let biased = build_urn(&graph, &BuildConfig::new(k).seed(2).biased(0.05)).unwrap();
    let (ub, bb) = (
        uniform.build_stats().table_bytes,
        biased.build_stats().table_bytes,
    );
    assert!(
        bb * 2 < ub,
        "biased table ({bb} B) should be well under half the uniform table ({ub} B)"
    );
}
