//! End-to-end tests of `motivo serve`: the real binary on an ephemeral
//! port, ≥ 32 concurrent clients mixing query types, responses
//! byte-identical to in-process [`StoreQuery`] calls for a fixed seed, and
//! a graceful shutdown that drains every accepted request.

mod support;

use motivo::prelude::Client;
use motivo::server::proto;
use serde_json::json;
use std::io::{BufRead, BufReader};
use support::{motivo, ping_barrier, seed_store, spawn_server, workdir};

/// ≥ 32 concurrent clients mixing every query type; the seeded estimate
/// responses are byte-identical to the in-process call.
#[test]
fn concurrent_clients_get_in_process_bytes() {
    let dir = workdir("concurrent");
    let expected = seed_store(&dir, 5_000, 3);
    let (mut child, addr) = spawn_server(&dir, 4, 256);

    let clients = 32;
    std::thread::scope(|s| {
        let (expected, addr) = (&expected, &addr);
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                s.spawn(move || {
                    let mut client = Client::connect(addr.as_str()).unwrap();
                    match i % 4 {
                        // The determinism check: every one of these, from
                        // any client at any time, matches the in-process
                        // bytes exactly.
                        0 => {
                            let ok = client
                                .request(&json!({
                                    "type": "NaiveEstimates", "urn": 0,
                                    "samples": 5_000, "seed": 3, "threads": 2,
                                }))
                                .unwrap();
                            assert_eq!(&serde_json::to_string(&ok).unwrap(), expected);
                        }
                        1 => {
                            let ok = client.request(&json!({"type": "ListUrns"})).unwrap();
                            let rows = ok.get("urns").unwrap().as_array().unwrap();
                            assert_eq!(rows.len(), 1);
                        }
                        2 => {
                            let ok = client
                                .request(&json!({
                                    "type": "Sample", "urn": 0, "samples": 1_000, "seed": i,
                                }))
                                .unwrap();
                            let total: u64 = ok
                                .get("classes")
                                .unwrap()
                                .as_array()
                                .unwrap()
                                .iter()
                                .map(|c| c.get("occurrences").unwrap().as_u64().unwrap())
                                .sum();
                            assert_eq!(total, 1_000);
                        }
                        _ => {
                            let ok = client.request(&json!({"type": "Stats"})).unwrap();
                            assert!(ok.get("cache").is_some());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // Shut down over the wire; the daemon exits 0 and flushes stats.
    let mut client = Client::connect(addr.as_str()).unwrap();
    client.request(&json!({"type": "Shutdown"})).unwrap();
    let status = child.wait().expect("server exit");
    assert!(status.success(), "serve exited {status:?}");
    assert!(dir.join("server-stats.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI client end-to-end against the real daemon: `-` reads the
/// request from stdin, `--batch` wraps a JSON array into one `Batch`
/// frame, and repeated seeded requests replay cached bytes (the
/// `--cache-bytes` flag is honored).
#[test]
fn cli_client_stdin_and_batch_roundtrip() {
    use std::io::Write;
    use std::process::Stdio;

    let dir = workdir("cli-batch");
    let expected = seed_store(&dir, 2_000, 9);
    let mut child = motivo()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .args(["--cache-bytes", "1048576"])
        .arg("--store")
        .arg(&dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn motivo serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = lines
        .next()
        .unwrap()
        .unwrap()
        .strip_prefix("listening on ")
        .expect("address line")
        .to_string();

    let pipe_client = |args: &[&str], stdin: &str| {
        let mut c = motivo()
            .arg("client")
            .arg(&addr)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        c.stdin.take().unwrap().write_all(stdin.as_bytes()).unwrap();
        let out = c.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "client {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    // A single request from stdin.
    let out = pipe_client(&["-"], r#"{"type":"Ping"}"#);
    assert!(out.contains("\"pong\": true"), "{out}");

    // A batch from stdin: three sub-requests, answered in order, the
    // malformed one failing alone.
    let batch = r#"[
        {"id": 1, "type": "NaiveEstimates", "urn": 0, "samples": 2000, "seed": 9},
        {"id": 2, "type": "Teleport"},
        {"id": 3, "type": "NaiveEstimates", "urn": 0, "samples": 2000, "seed": 9, "threads": 2}
    ]"#;
    let out = pipe_client(&["-", "--batch"], batch);
    let envelope: serde_json::Value = serde_json::from_str(&out).unwrap();
    let responses = envelope
        .get("ok")
        .unwrap()
        .get("responses")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(responses.len(), 3);
    // Sub 1 and 3 (differing only in threads) both match the in-process
    // bytes — the second from the cache.
    for idx in [0usize, 2] {
        assert_eq!(
            serde_json::to_string(&responses[idx].get("ok").unwrap()).unwrap(),
            expected,
            "sub-response {idx}"
        );
    }
    assert_eq!(
        responses[1]
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("BadRequest")
    );

    // Stats over the wire confirm the cache replay.
    let mut client = Client::connect(addr.as_str()).unwrap();
    let stats = client.request(&json!({"type": "Stats"})).unwrap();
    let qc = stats.get("query_cache").unwrap();
    assert_eq!(qc.get("misses").unwrap().as_u64(), Some(1), "{stats:?}");
    assert!(qc.get("hits").unwrap().as_u64().unwrap() >= 1, "{stats:?}");

    client.request(&json!({"type": "Shutdown"})).unwrap();
    let status = child.wait().expect("server exit");
    assert!(status.success());
    // The flushed stats file carries the cache section now.
    let flushed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("server-stats.json")).unwrap())
            .unwrap();
    assert!(flushed.get("query_cache").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

/// The reactor holds ≥ 1000 idle connections on a fixed thread count
/// (read from `/proc/<pid>/status`), while an active connection
/// pipelining seeded requests still gets responses byte-identical to the
/// in-process payload — the tentpole claim of the event-driven server.
#[cfg(target_os = "linux")]
#[test]
fn reactor_holds_1000_idle_connections_on_fixed_threads() {
    let dir = workdir("idle-conns");
    let expected = seed_store(&dir, 2_000, 9);
    let (mut child, addr) = spawn_server(&dir, 2, 64);

    let thread_count = |pid: u32| -> u64 {
        std::fs::read_to_string(format!("/proc/{pid}/status"))
            .unwrap()
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads: line in /proc status")
            .trim()
            .parse()
            .unwrap()
    };

    // A probe request first, so the reactor and pool are warm when the
    // baseline thread count is taken.
    let mut client = Client::connect(addr.as_str()).unwrap();
    client.request(&json!({"type": "Ping"})).unwrap();
    let threads_before = thread_count(child.id());

    let mut idle: Vec<std::net::TcpStream> = (0..1000)
        .map(|_| std::net::TcpStream::connect(addr.as_str()).unwrap())
        .collect();

    // Active traffic while the idle set is held: 16 pipelined seeded
    // estimates on one connection, every response byte-identical to the
    // in-process payload.
    let mut active = std::net::TcpStream::connect(addr.as_str()).unwrap();
    for i in 0..16u64 {
        let req = json!({
            "id": i, "type": "NaiveEstimates", "urn": 0,
            "samples": 2_000, "seed": 9, "threads": 2,
        });
        proto::write_frame(&mut active, serde_json::to_string(&req).unwrap().as_bytes()).unwrap();
    }
    for _ in 0..16 {
        let frame = proto::read_frame(&mut active).unwrap().unwrap();
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(serde_json::to_string(&v.get("ok").unwrap()).unwrap(), expected);
    }

    // Every idle connection was accepted and still answers — and holding
    // all 1000 grew the daemon by zero threads.
    for conn in idle.iter_mut() {
        proto::write_frame(conn, br#"{"id":"live","type":"Ping"}"#).unwrap();
        let frame = proto::read_frame(conn)
            .unwrap()
            .expect("pong on an idle connection");
        assert!(std::str::from_utf8(&frame).unwrap().contains("\"pong\""));
    }
    assert_eq!(
        thread_count(child.id()),
        threads_before,
        "thread count grew with connection count"
    );

    drop(idle);
    client.request(&json!({"type": "Shutdown"})).unwrap();
    let status = child.wait().expect("server exit");
    assert!(status.success(), "serve exited {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful shutdown drains: requests accepted (not `Busy`-rejected)
/// before the signal all receive real responses; none are dropped.
#[test]
fn shutdown_drains_accepted_requests() {
    let dir = workdir("drain");
    seed_store(&dir, 1_000, 1);
    let (mut child, addr) = spawn_server(&dir, 2, 64);

    // Park a sampling request on each of 8 connections, then shut down
    // while they are queued/in flight.
    let mut conns: Vec<std::net::TcpStream> = (0..8)
        .map(|_| std::net::TcpStream::connect(addr.as_str()).unwrap())
        .collect();
    for (i, conn) in conns.iter_mut().enumerate() {
        let req = json!({
            "id": i, "type": "NaiveEstimates", "urn": 0,
            "samples": 40_000, "seed": 1, "threads": 1,
        });
        proto::write_frame(conn, serde_json::to_string(&req).unwrap().as_bytes()).unwrap();
    }
    // A ping barrier per connection instead of a fixed sleep: the pong
    // proves the parked request ahead of it was accepted into the queue,
    // so the shutdown below provably races the drain, not the readers.
    let mut early: Vec<Vec<serde_json::Value>> = conns.iter_mut().map(ping_barrier).collect();
    let mut client = Client::connect(addr.as_str()).unwrap();
    client.request(&json!({"type": "Shutdown"})).unwrap();

    // Every accepted request completes with a real payload — and because
    // they share a seed, all with the *same* payload.
    let mut payloads = std::collections::HashSet::new();
    for (conn, early) in conns.iter_mut().zip(early.iter_mut()) {
        let v = match early.pop() {
            Some(v) => v, // answered before the barrier's pong
            None => {
                let frame = proto::read_frame(conn)
                    .unwrap()
                    .expect("a response, not a dropped connection");
                serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap()
            }
        };
        let ok = v
            .get("ok")
            .unwrap_or_else(|| panic!("accepted request answered with {v:?} instead of a payload"));
        payloads.insert(serde_json::to_string(&ok).unwrap());
    }
    assert_eq!(
        payloads.len(),
        1,
        "same seed ⇒ same bytes, even at shutdown"
    );

    let status = child.wait().expect("server exit");
    assert!(status.success(), "serve exited {status:?}");

    // After shutdown the port is closed.
    assert!(std::net::TcpStream::connect(addr.as_str()).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
