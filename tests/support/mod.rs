//! Shared helpers for the daemon integration tests (`server.rs`,
//! `replication.rs`): spawning real `motivo` binaries on ephemeral ports,
//! seeding stores, and polling observable state with bounded retries —
//! never fixed sleeps, which is what keeps these suites deflaked.
#![allow(dead_code)]

use motivo::core::{BuildConfig, SampleConfig};
use motivo::graphlet::GraphletRegistry;
use motivo::prelude::{Client, StoreQuery, UrnId, UrnStore};
use motivo::server::proto;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

pub fn motivo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_motivo"))
}

pub fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("motivo-serve-test-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a store with one k=4 urn and returns the expected in-process
/// serialization of a seeded `NaiveEstimates` request against it. The
/// store is closed again before the daemon opens it — one process at a
/// time owns the journal.
pub fn seed_store(dir: &PathBuf, samples: u64, seed: u64) -> String {
    let graph = motivo::graph::generators::barabasi_albert(250, 3, 5);
    let store = UrnStore::open(dir).unwrap();
    let handle = store
        .build_or_get(&graph, &BuildConfig::new(4).seed(2))
        .unwrap();
    handle.wait().unwrap();
    let query = StoreQuery::new(&store);
    let mut registry = GraphletRegistry::new(4);
    let est = query
        .naive_estimates(
            UrnId(0),
            &mut registry,
            samples,
            &SampleConfig::seeded(seed).threads(2),
        )
        .unwrap();
    serde_json::to_string(&proto::estimates_json(&est, &registry)).unwrap()
}

/// Spawns `motivo serve` with extra flags appended (`--replica-of`,
/// `--addr`, …) and reads the bound address off its first stdout line.
/// Defaults to an ephemeral port unless `extra` carries its own `--addr`.
pub fn spawn_server_with(store_dir: &PathBuf, extra: &[&str]) -> (Child, String) {
    let mut cmd = motivo();
    cmd.arg("serve");
    if !extra.contains(&"--addr") {
        cmd.args(["--addr", "127.0.0.1:0"]);
    }
    let mut child = cmd
        .arg("--store")
        .arg(store_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn motivo serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("server printed its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
        .to_string();
    (child, addr)
}

/// Spawns `motivo serve` on an ephemeral port with the given pool knobs.
pub fn spawn_server(store_dir: &PathBuf, workers: u32, queue: u32) -> (Child, String) {
    spawn_server_with(
        store_dir,
        &[
            "--workers",
            &workers.to_string(),
            "--queue",
            &queue.to_string(),
        ],
    )
}

/// Bounded polling: retries `f` every 20 ms until it returns `Some`,
/// panicking with `what` after `timeout`. The deflaked replacement for
/// every "sleep and hope" wait in these suites.
pub fn poll_until<T>(what: &str, timeout: Duration, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Bounded connect-retry: a fresh [`Client`] to `addr`, retrying while
/// the server is still binding (or restarting between fault injections).
pub fn connect_retry(addr: &str) -> Client {
    poll_until(
        &format!("a connection to {addr}"),
        Duration::from_secs(10),
        || Client::connect(addr).ok(),
    )
}

/// Sends one request on a fresh connection and returns the **raw response
/// frame text** — the exact bytes the server wrote, before any JSON
/// re-parse. What the byte-identity assertions compare.
pub fn raw_request(addr: &str, body: &Value) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect for raw request");
    proto::write_frame(&mut conn, serde_json::to_string(body).unwrap().as_bytes()).unwrap();
    let frame = proto::read_frame(&mut conn)
        .unwrap()
        .expect("a response frame");
    String::from_utf8(frame).expect("UTF-8 response")
}

/// Flushes a connection's accepted-request pipeline: writes a `Ping` and
/// reads frames until its pong arrives. A connection's reader handles
/// frames strictly in order, so the pong proves every frame written
/// before it was parsed and accepted (queued or answered) — a
/// deterministic barrier where a fixed sleep would be a race. Response
/// frames that arrived ahead of the pong are returned for later matching.
pub fn ping_barrier(conn: &mut TcpStream) -> Vec<Value> {
    let ping = json!({"id": "barrier", "type": "Ping"});
    proto::write_frame(conn, serde_json::to_string(&ping).unwrap().as_bytes()).unwrap();
    let mut early = Vec::new();
    loop {
        let frame = proto::read_frame(conn)
            .unwrap()
            .expect("a frame before the pong");
        let v: Value = serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
        let is_pong = v
            .get("id")
            .map(|i| i.as_str() == Some("barrier"))
            .unwrap_or(false);
        if is_pong {
            return early;
        }
        early.push(v);
    }
}

/// Reserves an ephemeral port by binding and immediately releasing it —
/// for servers that must **restart on the same address** (a replica's
/// `--replica-of` target is fixed for its lifetime).
pub fn pick_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}
