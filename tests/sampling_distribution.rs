//! Statistical validation of the samplers beyond unit scale: exact
//! uniformity of the per-shape urns, and agreement between the three ways
//! to count (naive urn, AGS, exact enumeration) on one mid-size instance.

use motivo::prelude::*;
use std::collections::HashMap;

/// Per-shape sampling must be uniform over the copies of that shape: on a
/// graph small enough to enumerate, each colorful copy of the chosen shape
/// should appear with equal empirical frequency.
#[test]
fn per_shape_sampling_is_uniform() {
    let g = motivo::graph::generators::cycle_graph(9);
    let k = 3u32;
    // Fixed rainbow-ish coloring so the urn is deterministic.
    let colors: Vec<u8> = (0..9).map(|v| (v % 3) as u8).collect();
    let cfg = BuildConfig {
        threads: 1,
        coloring: ColoringSpec::Fixed(colors),
        ..BuildConfig::new(k)
    };
    let urn = build_urn(&g, &cfg).unwrap();
    // The path shape (k=3 end-rooted path) — every 3-path on the cycle
    // with colors 0,1,2 in order... enumerate via the urn totals instead.
    let shape = motivo::treelet::path_treelet(3);
    let j = urn.shape_index(shape);
    let r_j = urn.shape_total(j);
    assert!(r_j > 0, "cycle coloring 0,1,2,... has colorful paths");
    let alias = motivo::table::AliasTable::from_u128(&urn.shape_vertex_totals(shape));
    let mut sampler = Sampler::new(&urn, SampleConfig::seeded(3));
    let trials = 40_000u64;
    let mut tally: HashMap<Vec<u32>, u64> = HashMap::new();
    for _ in 0..trials {
        let mut verts = sampler.sample_copy_of_shape(shape, &alias);
        verts.sort_unstable();
        *tally.entry(verts).or_insert(0) += 1;
    }
    assert_eq!(tally.len() as u128, r_j, "every copy must be reachable");
    let expected = trials as f64 / r_j as f64;
    for (copy, hits) in tally {
        let dev = (hits as f64 - expected).abs() / expected;
        assert!(
            dev < 0.15,
            "copy {copy:?}: {hits} hits vs expected {expected:.1}"
        );
    }
}

/// Three counting routes agree on one instance: exact ESU, averaged naive
/// urn sampling, and averaged AGS.
#[test]
fn three_ways_to_count_agree() {
    let g = motivo::graph::generators::erdos_renyi(250, 700, 11);
    let k = 4u32;
    let exact = motivo::exact::count_exact(&g, k as u8);
    let mut registry = GraphletRegistry::new(k as u8);
    let truth = exact.by_registry(&mut registry);
    let (&top, &top_count) = truth.iter().max_by_key(|(_, &c)| c).unwrap();

    let naive_cfg = EnsembleConfig {
        runs: 8,
        ..EnsembleConfig::naive(k, 40_000)
    };
    let naive = ensemble(&g, &mut registry, &naive_cfg).unwrap();
    let ags_cfg = EnsembleConfig {
        runs: 8,
        estimator: Estimator::Ags(AgsConfig {
            c_bar: 500,
            max_samples: 40_000,
            ..AgsConfig::default()
        }),
        ..EnsembleConfig::naive(k, 0)
    };
    let agsr = ensemble(&g, &mut registry, &ags_cfg).unwrap();

    let t = top_count as f64;
    for (label, res) in [("naive", &naive), ("ags", &agsr)] {
        let got = res.get(top).map(|c| c.mean).unwrap_or(0.0);
        let rel = (got - t).abs() / t;
        assert!(rel < 0.15, "{label}: top class {got:.0} vs exact {t:.0}");
        // The ensemble total tracks the exact total too.
        let rel_total = (res.total_count() - exact.total as f64).abs() / exact.total as f64;
        assert!(
            rel_total < 0.15,
            "{label}: total {:.0} vs {}",
            res.total_count(),
            exact.total
        );
    }
}

/// Atlas names cover all 21 five-node classes without collisions.
#[test]
fn atlas_names_are_unique_per_class() {
    use motivo::graphlet::{all_graphlets, name};
    for k in 3..=5u8 {
        let classes = all_graphlets(k);
        let names: Vec<String> = classes.iter().map(name).collect();
        let mut uniq = names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            classes.len(),
            "name collision at k={k}: {names:?}"
        );
    }
}

/// The neighbor-buffered sampler and the plain sampler agree on class
/// tallies at matched seeds and budgets (statistically).
#[test]
fn buffered_tallies_match_unbuffered() {
    let g = motivo::graph::generators::star_heavy(1_500, 3, 0.6, 4);
    let k = 4u32;
    let urn = build_urn(&g, &BuildConfig::new(k).seed(2)).unwrap();
    let tally = |buffering: bool, seed: u64| {
        let mut reg = GraphletRegistry::new(k as u8);
        let cfg = SampleConfig {
            seed,
            buffering,
            buffer_threshold: 256,
            buffer_batch: 100,
            threads: 1,
            ..SampleConfig::default()
        };
        let est = naive_estimates(&urn, &mut reg, 40_000, &cfg);
        let m: HashMap<u128, f64> = est
            .per_graphlet
            .iter()
            .map(|e| (reg.info(e.index).graphlet.code(), e.frequency))
            .collect();
        m
    };
    let a = tally(true, 7);
    let b = tally(false, 8);
    for (code, fa) in &a {
        if *fa > 0.01 {
            let fb = b.get(code).copied().unwrap_or(0.0);
            assert!(
                (fa - fb).abs() < 0.02,
                "class {code:x}: buffered {fa:.4} vs plain {fb:.4}"
            );
        }
    }
}
