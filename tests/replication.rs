//! Fault-injection tests of replicated serving: real `motivo` binaries on
//! ephemeral ports, a leader streaming its journal to replicas, and the
//! faults DESIGN.md §8 promises to survive — replicas killed mid-stream,
//! leaders dying and restarting with torn journal tails, and promotion
//! after leader death. All waits are bounded polls (`support::poll_until`),
//! never fixed sleeps.

mod support;

use motivo::prelude::{Client, ClientError};
use motivo::store::testing::torn_journal_append;
use serde_json::{json, Value};
use std::path::PathBuf;
use std::time::Duration;
use support::{poll_until, raw_request, seed_store, spawn_server_with, workdir};

/// Spawns a replica of `leader_addr` over `dir` with a fast poll.
fn spawn_replica(dir: &PathBuf, leader_addr: &str) -> (std::process::Child, String) {
    spawn_server_with(
        dir,
        &[
            "--replica-of",
            leader_addr,
            "--poll-ms",
            "25",
            "--workers",
            "2",
        ],
    )
}

/// Polls `addr` until its sync loop reports caught-up over a live
/// connection *and* it lists `urns` built urns; returns the final
/// `ReplStatus` payload.
fn wait_caught_up(addr: &str, urns: usize) -> Value {
    poll_until(
        &format!("replica {addr} to catch up with {urns} urn(s)"),
        Duration::from_secs(60),
        || {
            let mut client = Client::connect(addr).ok()?;
            let status = client.request(&json!({"type": "ReplStatus"})).ok()?;
            let sync = status.get("sync")?;
            let ready = sync.get("connected").and_then(|v| v.as_bool()) == Some(true)
                && sync.get("caught_up").and_then(|v| v.as_bool()) == Some(true);
            let listed = client.request(&json!({"type": "ListUrns"})).ok()?;
            let built = listed
                .get("urns")
                .and_then(|u| u.as_array())
                .map(|rows| {
                    rows.iter()
                        .filter(|r| {
                            r.get("status").map(|s| s.as_str() == Some("built")) == Some(true)
                        })
                        .count()
                })
                .unwrap_or(0);
            (ready && built == urns).then_some(status)
        },
    )
}

fn sync_field(status: &Value, key: &str) -> u64 {
    status
        .get("sync")
        .and_then(|s| s.get(key))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("no sync.{key} in {status:?}"))
}

/// Asserts a request against `addr` is refused with the `ReadOnly` kind.
fn assert_read_only(addr: &str, body: &Value) {
    let mut client = Client::connect(addr).unwrap();
    match client.request(body) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "ReadOnly", "{body:?}"),
        other => panic!("{body:?} against a replica returned {other:?}, not ReadOnly"),
    }
}

/// An empty replica converges against a live leader and then serves
/// **byte-identical** responses — asserted on the raw response frames,
/// not re-parsed JSON — while refusing every mutation with `ReadOnly`.
#[test]
fn empty_replica_converges_and_serves_identical_bytes() {
    let leader_dir = workdir("repl-converge-leader");
    let replica_dir = workdir("repl-converge-replica");
    let scratch = workdir("repl-converge-scratch");
    let expected = seed_store(&leader_dir, 5_000, 3);
    let (mut leader, leader_addr) = spawn_server_with(&leader_dir, &["--workers", "2"]);
    let (mut replica, replica_addr) = spawn_replica(&replica_dir, &leader_addr);

    wait_caught_up(&replica_addr, 1);

    // The determinism ⇒ exact-replica claim, on the wire: the raw frame
    // bytes from leader and replica are equal, and both carry the
    // in-process payload.
    let req = json!({
        "id": 11, "type": "NaiveEstimates", "urn": 0,
        "samples": 5_000, "seed": 3, "threads": 2,
    });
    let from_leader = raw_request(&leader_addr, &req);
    let from_replica = raw_request(&replica_addr, &req);
    assert_eq!(
        from_leader, from_replica,
        "response frames must be identical"
    );
    let envelope: Value = serde_json::from_str(&from_replica).unwrap();
    let ok = envelope.get("ok").expect("an ok envelope");
    assert_eq!(serde_json::to_string(&ok).unwrap(), expected);

    // The leader's registry saw this replica and served it files.
    let mut client = Client::connect(leader_addr.as_str()).unwrap();
    let status = client.request(&json!({"type": "ReplStatus"})).unwrap();
    assert_eq!(status.get("role").unwrap().as_str(), Some("leader"));
    let rows = status.get("replicas").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 1, "{status:?}");
    assert!(rows[0].get("files_served").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(rows[0].get("lag").unwrap().as_u64(), Some(0));

    // Mutations are refused until promotion — including wire shutdown.
    // (The build's graph file is real: the refusal must come from the
    // store's write gate, not from a failed load.)
    let edges = scratch.join("denied.txt");
    let g = motivo::graph::generators::barabasi_albert(80, 2, 1);
    motivo::graph::io::save_edge_list(&g, &edges).unwrap();
    assert_read_only(&replica_addr, &json!({"type": "Shutdown"}));
    assert_read_only(
        &replica_addr,
        &json!({"type": "Build", "graph": edges.to_str().unwrap(), "k": 3}),
    );

    // A replica's lifecycle belongs to its operator: kill it directly.
    replica.kill().unwrap();
    replica.wait().unwrap();
    let mut client = Client::connect(leader_addr.as_str()).unwrap();
    client.request(&json!({"type": "Shutdown"})).unwrap();
    assert!(leader.wait().unwrap().success());
    for dir in [&leader_dir, &replica_dir, &scratch] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// A replica killed outright resumes from its durable journal offset:
/// the restarted process applies only the records it missed and never
/// re-fetches sealed urn files it already holds.
#[test]
fn killed_replica_resumes_from_durable_offset_without_refetch() {
    let leader_dir = workdir("repl-resume-leader");
    let replica_dir = workdir("repl-resume-replica");
    let scratch = workdir("repl-resume-scratch");
    seed_store(&leader_dir, 1_000, 1);
    let (mut leader, leader_addr) = spawn_server_with(&leader_dir, &["--workers", "2"]);
    let (mut replica, replica_addr) = spawn_replica(&replica_dir, &leader_addr);

    let status = wait_caught_up(&replica_addr, 1);
    let first_offset = sync_field(&status, "offset");
    let first_files = sync_field(&status, "files_fetched");
    assert!(first_offset > 0);
    assert!(first_files >= 1, "the urn's tables were fetched");

    // Fault: SIGKILL mid-stream. No flush, no goodbye.
    replica.kill().unwrap();
    replica.wait().unwrap();

    // The leader moves on: a second urn built over the wire.
    let g2 = motivo::graph::generators::erdos_renyi(150, 400, 7);
    let edges = scratch.join("second.txt");
    motivo::graph::io::save_edge_list(&g2, &edges).unwrap();
    let mut client = Client::connect(leader_addr.as_str()).unwrap();
    let built = client
        .request(&json!({
            "type": "Build", "graph": edges.to_str().unwrap(),
            "k": 3, "seed": 4, "wait": true,
        }))
        .unwrap();
    assert_eq!(built.get("status").unwrap().as_str(), Some("built"));
    let urn2_files = client
        .request(&json!({"type": "ReplFiles", "urn": 1}))
        .unwrap()
        .get("files")
        .unwrap()
        .as_array()
        .unwrap()
        .len() as u64;
    assert!(urn2_files >= 1);

    // Restart over the same store directory. Torn-tail recovery lands the
    // journal back on its last durable offset; the sync loop resumes from
    // there instead of replaying (or re-bootstrapping) the world.
    let (mut replica, replica_addr) = spawn_replica(&replica_dir, &leader_addr);
    let status = wait_caught_up(&replica_addr, 2);
    assert_eq!(
        sync_field(&status, "bootstraps"),
        0,
        "resume must not reinstall the manifest: {status:?}"
    );
    assert!(
        sync_field(&status, "offset") > first_offset,
        "the new session extends the durable offset"
    );
    // Only the second build's records crossed the wire (GraphAdded +
    // BuildStarted + BuildFinished) — nothing from before the kill.
    assert!(
        sync_field(&status, "records_applied") <= 3,
        "resume replayed old records: {status:?}"
    );
    // No-refetch invariant: the heal diffed urn-0's files by length+crc
    // and skipped them; only urn-1's tables (plus its cached host graph)
    // moved.
    assert!(
        sync_field(&status, "files_fetched") <= urn2_files + 1,
        "resume re-fetched files it already held: {status:?}"
    );

    // Both urns answer byte-identically to the leader after the resume.
    for (urn, seed) in [(0u64, 1u64), (1, 4)] {
        let req = json!({
            "id": 5, "type": "Sample", "urn": urn, "samples": 500, "seed": seed,
        });
        assert_eq!(
            raw_request(&leader_addr, &req),
            raw_request(&replica_addr, &req),
            "urn {urn}"
        );
    }

    replica.kill().unwrap();
    replica.wait().unwrap();
    let mut client = Client::connect(leader_addr.as_str()).unwrap();
    client.request(&json!({"type": "Shutdown"})).unwrap();
    assert!(leader.wait().unwrap().success());
    for dir in [&leader_dir, &replica_dir, &scratch] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// The leader dies and restarts with a **torn journal tail** (an append
/// interrupted mid-frame). Recovery truncates the tail; the replica —
/// whose offset only ever covered durable frames — reconnects under
/// backoff and stays byte-identical.
#[test]
fn leader_restart_with_torn_tail_keeps_replica_convergent() {
    let leader_dir = workdir("repl-torn-leader");
    let replica_dir = workdir("repl-torn-replica");
    seed_store(&leader_dir, 1_000, 2);

    // The leader must come back on the *same* address: reserve a port.
    let port = support::pick_port();
    let fixed_addr = format!("127.0.0.1:{port}");
    let leader_args = ["--addr", fixed_addr.as_str(), "--workers", "2"];
    let (mut leader, leader_addr) = spawn_server_with(&leader_dir, &leader_args);
    let (mut replica, replica_addr) = spawn_replica(&replica_dir, &leader_addr);
    wait_caught_up(&replica_addr, 1);

    let mut client = Client::connect(leader_addr.as_str()).unwrap();
    let status = client.request(&json!({"type": "ReplStatus"})).unwrap();
    let durable_offset = status.get("offset").unwrap().as_u64().unwrap();
    drop(client);

    // Fault: kill the leader, then forge the crash it could have died in —
    // a frame whose header promises more bytes than ever hit the disk.
    leader.kill().unwrap();
    leader.wait().unwrap();
    torn_journal_append(
        &leader_dir.join("journal.log"),
        b"record torn apart mid-append",
        9,
    )
    .unwrap();

    // The replica notices its leader is gone and says so.
    poll_until(
        "the replica to report its leader unreachable",
        Duration::from_secs(30),
        || {
            let mut client = Client::connect(replica_addr.as_str()).ok()?;
            let status = client.request(&json!({"type": "ReplStatus"})).ok()?;
            let sync = status.get("sync")?;
            (sync.get("connected").and_then(|v| v.as_bool()) == Some(false)
                && !sync.get("last_error")?.is_null())
            .then_some(())
        },
    );

    // Restart on the same address: recovery drops the torn tail, landing
    // exactly on the offset the replica holds.
    let (mut leader, leader_addr) = spawn_server_with(&leader_dir, &leader_args);
    let mut client = Client::connect(leader_addr.as_str()).unwrap();
    let status = client.request(&json!({"type": "ReplStatus"})).unwrap();
    assert_eq!(
        status.get("offset").unwrap().as_u64(),
        Some(durable_offset),
        "torn tail must be truncated on recovery"
    );
    drop(client);

    // The replica reconnects under backoff and is still byte-identical.
    let status = wait_caught_up(&replica_addr, 1);
    assert_eq!(sync_field(&status, "offset"), durable_offset);
    assert_eq!(sync_field(&status, "bootstraps"), 0, "{status:?}");
    let req = json!({
        "id": 3, "type": "NaiveEstimates", "urn": 0,
        "samples": 1_000, "seed": 2, "threads": 2,
    });
    assert_eq!(
        raw_request(&leader_addr, &req),
        raw_request(&replica_addr, &req)
    );

    replica.kill().unwrap();
    replica.wait().unwrap();
    let mut client = Client::connect(leader_addr.as_str()).unwrap();
    client.request(&json!({"type": "Shutdown"})).unwrap();
    assert!(leader.wait().unwrap().success());
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// The leader dies for good; `motivo promote` turns the surviving replica
/// into a leader that accepts builds and (only now) wire shutdowns.
#[test]
fn promotion_serves_writes_after_leader_death() {
    let leader_dir = workdir("repl-promote-leader");
    let replica_dir = workdir("repl-promote-replica");
    let scratch = workdir("repl-promote-scratch");
    seed_store(&leader_dir, 1_000, 6);
    let (mut leader, leader_addr) = spawn_server_with(&leader_dir, &["--workers", "2"]);
    let (mut replica, replica_addr) = spawn_replica(&replica_dir, &leader_addr);
    wait_caught_up(&replica_addr, 1);

    leader.kill().unwrap();
    leader.wait().unwrap();

    // Still a replica: writes and shutdowns bounce.
    let g2 = motivo::graph::generators::barabasi_albert(150, 3, 9);
    let edges = scratch.join("after-failover.txt");
    motivo::graph::io::save_edge_list(&g2, &edges).unwrap();
    assert_read_only(&replica_addr, &json!({"type": "Shutdown"}));
    assert_read_only(
        &replica_addr,
        &json!({"type": "Build", "graph": edges.to_str().unwrap(), "k": 3}),
    );

    // Manual failover through the CLI.
    let out = support::motivo()
        .args(["promote", &replica_addr])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "promote failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("promoted"));

    // Promoting a leader twice is an error, not a no-op.
    let mut client = Client::connect(replica_addr.as_str()).unwrap();
    match client.request(&json!({"type": "Promote"})) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "BadRequest"),
        other => panic!("second promote returned {other:?}"),
    }
    let status = client.request(&json!({"type": "ReplStatus"})).unwrap();
    assert_eq!(status.get("role").unwrap().as_str(), Some("leader"));
    drop(client);

    // The operator's view agrees.
    let out = support::motivo()
        .args(["repl", "status", &replica_addr])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("leader"));

    // The promoted store takes writes: a fresh build over the wire…
    let mut client = Client::connect(replica_addr.as_str()).unwrap();
    let built = client
        .request(&json!({
            "type": "Build", "graph": edges.to_str().unwrap(),
            "k": 3, "seed": 8, "wait": true,
        }))
        .unwrap();
    assert_eq!(built.get("status").unwrap().as_str(), Some("built"));
    let sampled = client
        .request(&json!({"type": "Sample", "urn": 1, "samples": 200, "seed": 8}))
        .unwrap();
    assert!(!sampled
        .get("classes")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());

    // …and, now a leader, honors wire shutdown with a clean exit.
    client.request(&json!({"type": "Shutdown"})).unwrap();
    assert!(replica.wait().unwrap().success());
    for dir in [&leader_dir, &replica_dir, &scratch] {
        std::fs::remove_dir_all(dir).ok();
    }
}
