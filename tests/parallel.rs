//! Cross-crate guarantees of the parallel sampling engine: for a fixed
//! seed, every estimator returns bit-identical results no matter how many
//! OS threads execute it — the logical-shard seed-splitting contract of
//! `motivo::core::parallel`.

use motivo::prelude::*;

/// A compact, fully-ordered fingerprint of an estimate (f64s compared by
/// bit pattern, not approximately).
fn naive_fingerprint(est: &Estimates) -> Vec<(usize, u64, u64, u64)> {
    est.per_graphlet
        .iter()
        .map(|e| {
            (
                e.index,
                e.occurrences,
                e.count.to_bits(),
                e.frequency.to_bits(),
            )
        })
        .collect()
}

#[test]
fn naive_estimates_identical_at_1_2_8_threads() {
    let g = motivo::graph::generators::barabasi_albert(400, 3, 5);
    let urn = build_urn(&g, &BuildConfig::new(4).seed(1).threads(1)).unwrap();
    let run = |threads: usize| {
        let mut registry = GraphletRegistry::new(4);
        let est = naive_estimates(
            &urn,
            &mut registry,
            25_000,
            &SampleConfig::seeded(3).threads(threads),
        );
        assert_eq!(est.samples, 25_000);
        naive_fingerprint(&est)
    };
    let base = run(1);
    assert!(!base.is_empty());
    for threads in [2, 8] {
        assert_eq!(base, run(threads), "naive diverged at {threads} threads");
    }
}

#[test]
fn ensemble_identical_at_1_2_8_threads() {
    let g = motivo::graph::generators::erdos_renyi(150, 450, 2);
    let fingerprint = |res: &EnsembleResult| -> Vec<(usize, u64, u64, u64, u64, u64)> {
        res.classes
            .iter()
            .map(|c| {
                (
                    c.index,
                    c.seen_in,
                    c.occurrences,
                    c.mean.to_bits(),
                    c.p10.to_bits(),
                    c.p90.to_bits(),
                )
            })
            .collect()
    };
    let run = |threads: usize, estimator: Estimator| {
        let mut registry = GraphletRegistry::new(3);
        let cfg = EnsembleConfig {
            runs: 6,
            base_seed: 4,
            threads,
            estimator,
            build: BuildConfig::new(3),
        };
        let res = ensemble(&g, &mut registry, &cfg).unwrap();
        (res.samples, fingerprint(&res))
    };
    for estimator in [
        Estimator::Naive { samples: 5_000 },
        Estimator::Ags(AgsConfig {
            c_bar: 200,
            max_samples: 5_000,
            idle_limit: 1_000,
            ..AgsConfig::default()
        }),
        Estimator::Mixed {
            samples: 4_000,
            c_bar: 200,
        },
    ] {
        let base = run(1, estimator.clone());
        assert!(!base.1.is_empty());
        for threads in [2, 8] {
            assert_eq!(
                base,
                run(threads, estimator.clone()),
                "ensemble ({estimator:?}) diverged at {threads} threads"
            );
        }
    }
}

/// The registry indices themselves are deterministic (classification is
/// sorted by canonical code), so two identically-seeded runs agree on the
/// full registry mapping, not just per-class values.
#[test]
fn registry_assignment_is_deterministic() {
    let g = motivo::graph::generators::barabasi_albert(300, 3, 9);
    let urn = build_urn(&g, &BuildConfig::new(4).seed(2)).unwrap();
    let classes = |threads: usize| {
        let mut registry = GraphletRegistry::new(4);
        let est = naive_estimates(
            &urn,
            &mut registry,
            10_000,
            &SampleConfig::seeded(8).threads(threads),
        );
        est.per_graphlet
            .iter()
            .map(|e| (e.index, registry.info(e.index).graphlet.code()))
            .collect::<Vec<_>>()
    };
    assert_eq!(classes(1), classes(4));
}
