//! Integration tests of the urn store: end-to-end round-trips across
//! process-like boundaries (fresh `UrnStore` instances over one
//! directory), crash recovery from a torn journal, and LRU cache
//! behaviour under a byte budget.

use motivo::core::{BuildConfig, SampleConfig};
use motivo::graphlet::GraphletRegistry;
use motivo::store::{
    BuildKey, BuildStatus, Journal, ManifestRecord, StoreOptions, StoreQuery, UrnId, UrnStore,
};
use std::path::PathBuf;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("motivo-store-itest-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn roundtrip_two_graphs_across_reopen() {
    let dir = workdir("roundtrip");
    let ba = motivo::graph::generators::barabasi_albert(250, 3, 11);
    let er = motivo::graph::generators::erdos_renyi(250, 700, 12);

    // First instance: build both urns.
    let (ba_id, er_id, ba_total, er_total) = {
        let store = UrnStore::open(&dir).unwrap();
        let ba_handle = store
            .build_or_get(&ba, &BuildConfig::new(4).seed(3))
            .unwrap();
        let er_handle = store
            .build_or_get(&er, &BuildConfig::new(4).seed(4))
            .unwrap();
        let ba_urn = ba_handle.wait().unwrap();
        let er_urn = er_handle.wait().unwrap();
        // Baseline estimates straight from the first instance.
        let mut reg = GraphletRegistry::new(4);
        let q = StoreQuery::new(&store);
        let a = q
            .naive_estimates(
                ba_handle.id(),
                &mut reg,
                20_000,
                &SampleConfig::seeded(9).threads(1),
            )
            .unwrap();
        (
            ba_handle.id(),
            er_handle.id(),
            (ba_urn.urn().total_treelets(), a.total_count()),
            er_urn.urn().total_treelets(),
        )
    };

    // Fresh instance over the same directory: everything is served from
    // disk, nothing rebuilds.
    let store = UrnStore::open(&dir).unwrap();
    assert_eq!(store.recovery_report().interrupted_builds, 0);
    let urns = store.list();
    assert_eq!(urns.len(), 2);
    assert!(urns.iter().all(|m| m.status == BuildStatus::Built));

    // Identical build requests resolve instantly to the stored urns —
    // poll() is Some(Ok) without ever touching the build worker.
    let again = store
        .build_or_get(&ba, &BuildConfig::new(4).seed(3))
        .unwrap();
    assert_eq!(again.id(), ba_id);
    assert!(matches!(again.poll(), Some(Ok(id)) if id == ba_id));

    // Queries serve from each urn; the BA urn reproduces the exact same
    // estimate under the same sampling seed (proof it is the same urn).
    let q = StoreQuery::new(&store);
    let mut reg_ba = GraphletRegistry::new(4);
    let mut reg_er = GraphletRegistry::new(4);
    let a = q
        .naive_estimates(
            ba_id,
            &mut reg_ba,
            20_000,
            &SampleConfig::seeded(9).threads(1),
        )
        .unwrap();
    let b = q
        .naive_estimates(
            er_id,
            &mut reg_er,
            20_000,
            &SampleConfig::seeded(9).threads(1),
        )
        .unwrap();
    assert!((a.total_count() - ba_total.1).abs() < 1e-9);
    assert!(b.total_count() > 0.0);
    assert_eq!(store.get(ba_id).unwrap().urn().total_treelets(), ba_total.0);
    assert_eq!(store.get(er_id).unwrap().urn().total_treelets(), er_total);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_truncated_mid_entry_recovers_and_rebuilds() {
    let dir = workdir("crash");
    let graph = motivo::graph::generators::barabasi_albert(200, 3, 5);

    // A healthy store with one finished urn.
    {
        let store = UrnStore::open(&dir).unwrap();
        let h = store
            .build_or_get(&graph, &BuildConfig::new(4).seed(1))
            .unwrap();
        h.wait().unwrap();
    }

    // Simulate a crash mid-build: journal a BuildStarted with no outcome,
    // leave a half-written urn directory behind, and tear the journal tail
    // mid-frame as an interrupted append would.
    let crashed = UrnId(1);
    {
        let mut journal = Journal::open(dir.join("journal.log")).unwrap().journal;
        let key = BuildKey {
            fingerprint: motivo::core::graph_fingerprint(&graph),
            k: 5,
            seed: 2,
            lambda_bits: None,
            zero_rooting: true,
            codec: motivo::table::RecordCodec::Plain,
        };
        journal
            .append(&ManifestRecord::BuildStarted { id: crashed, key }.encode())
            .unwrap();
    }
    let partial_dir = dir.join("urns").join(crashed.dir_name());
    std::fs::create_dir_all(&partial_dir).unwrap();
    std::fs::write(partial_dir.join("level-2.mtvt"), b"half-written garbage").unwrap();
    // A frame interrupted mid-append: only 13 of its bytes hit the disk.
    motivo::store::testing::torn_journal_append(
        &dir.join("journal.log"),
        b"a record that never fully landed",
        13,
    )
    .unwrap();

    // Recovery: torn tail dropped, interrupted build failed and swept.
    let store = UrnStore::open(&dir).unwrap();
    let report = store.recovery_report();
    assert_eq!(report.interrupted_builds, 1);
    assert!(report.torn_journal_bytes > 0);
    assert!(!partial_dir.exists(), "partial urn directory must be swept");
    let urns = store.list();
    assert_eq!(
        urns.iter()
            .filter(|m| m.status == BuildStatus::Built)
            .count(),
        1
    );
    assert_eq!(
        urns.iter().find(|m| m.id == crashed).unwrap().status,
        BuildStatus::Failed
    );

    // The store keeps working: the interrupted build can be redone under a
    // fresh id, and queries serve from it.
    let cfg = BuildConfig::new(5).seed(2);
    let h = store.build_or_get(&graph, &cfg).unwrap();
    assert_ne!(h.id(), crashed, "failed ids are not resurrected");
    let urn = h.wait().unwrap();
    assert_eq!(urn.urn().k(), 5);

    // gc compacts the failure away; a reopen sees a clean manifest.
    store.gc().unwrap();
    drop(store);
    let store = UrnStore::open(&dir).unwrap();
    assert!(store.list().iter().all(|m| m.status == BuildStatus::Built));
    assert_eq!(store.recovery_report().torn_journal_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lru_cache_respects_byte_budget_and_counts_hits() {
    let dir = workdir("cache");
    // Three small graphs → three urns of similar size.
    let graphs: Vec<_> = (0..3)
        .map(|i| motivo::graph::generators::barabasi_albert(150, 3, 20 + i))
        .collect();

    let ids: Vec<UrnId> = {
        let store = UrnStore::open(&dir).unwrap();
        let handles: Vec<_> = graphs
            .iter()
            .map(|g| store.build_or_get(g, &BuildConfig::new(4).seed(6)).unwrap())
            .collect();
        handles.iter().for_each(|h| {
            h.wait().unwrap();
        });
        handles.iter().map(|h| h.id()).collect()
    };

    // Reopen with a budget that fits one urn (urn ≈ table + graph bytes).
    let store = UrnStore::open(&dir).unwrap();
    let one = store.get(ids[0]).unwrap().bytes();
    drop(store);
    let store = UrnStore::open_with(
        &dir,
        StoreOptions {
            cache_bytes: one + one / 2,
            ..Default::default()
        },
    )
    .unwrap();
    let q = StoreQuery::new(&store);
    let mut regs: Vec<GraphletRegistry> = (0..3).map(|_| GraphletRegistry::new(4)).collect();
    let mut run = |i: usize, q: &StoreQuery<'_>| {
        q.naive_estimates(
            ids[i],
            &mut regs[i],
            2_000,
            &SampleConfig::seeded(1).threads(1),
        )
        .unwrap();
    };

    run(0, &q); // miss (cold)
    run(0, &q); // hit
    run(0, &q); // hit
    run(1, &q); // miss; evicts urn 0 (budget fits one)
    run(0, &q); // miss again (was evicted)
    run(2, &q); // miss; evicts
    let s0 = q.stats(ids[0]);
    assert_eq!((s0.queries, s0.cache_hits, s0.cache_misses), (4, 2, 2));
    let s1 = q.stats(ids[1]);
    assert_eq!((s1.cache_hits, s1.cache_misses), (0, 1));
    let total = q.total_stats();
    assert_eq!(total.queries, 6);
    assert_eq!(total.cache_hits + total.cache_misses, 6);
    assert!(total.mean_latency() > std::time::Duration::ZERO);

    let cache = store.cache_stats();
    assert!(
        cache.evictions >= 2,
        "expected evictions under budget, got {cache:?}"
    );
    assert!(cache.resident_bytes <= one + one / 2);
    assert_eq!(cache.resident_urns, 1);

    // Explicit evict drops the resident urn without touching disk.
    assert!(store.evict(ids[2]));
    assert_eq!(store.cache_stats().resident_urns, 0);
    assert!(store.get(ids[2]).is_ok());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn remove_deletes_urn_and_unknown_ids_error() {
    let dir = workdir("remove");
    let graph = motivo::graph::generators::barabasi_albert(120, 3, 2);
    let store = UrnStore::open(&dir).unwrap();
    let h = store
        .build_or_get(&graph, &BuildConfig::new(3).seed(1))
        .unwrap();
    h.wait().unwrap();
    let urn_dir = dir.join("urns").join(h.id().dir_name());
    assert!(urn_dir.exists());
    store.remove(h.id()).unwrap();
    assert!(!urn_dir.exists());
    assert!(store.get(h.id()).is_err());
    assert!(store.remove(h.id()).is_err());
    assert!(store.get(UrnId(999)).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// Hammer one `StoreQuery` from many threads: every query must be counted
/// exactly once, hits + misses must add up, and the per-urn cells must sum
/// to the totals — no lost updates now that the stats are sharded atomics
/// instead of one global mutex.
#[test]
fn concurrent_queries_lose_no_stat_updates() {
    let dir = workdir("stress");
    let g = motivo::graph::generators::barabasi_albert(200, 3, 21);
    let store = UrnStore::open(&dir).unwrap();
    let ids: Vec<UrnId> = (0..2)
        .map(|seed| {
            let h = store
                .build_or_get(&g, &BuildConfig::new(3).seed(seed))
                .unwrap();
            h.wait().unwrap();
            h.id()
        })
        .collect();

    let query = StoreQuery::new(&store);
    let workers = 8;
    let per_worker = 25u64;
    crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let query = &query;
            let ids = &ids;
            scope.spawn(move |_| {
                let mut registry = GraphletRegistry::new(3);
                for i in 0..per_worker {
                    let id = ids[((w + i) % 2) as usize];
                    query
                        .naive_estimates(id, &mut registry, 200, &SampleConfig::seeded(w + i))
                        .unwrap();
                }
            });
        }
    })
    .unwrap();

    let total = query.total_stats();
    assert_eq!(total.queries, workers * per_worker);
    assert_eq!(total.cache_hits + total.cache_misses, total.queries);
    let per_urn: Vec<_> = ids.iter().map(|&id| query.stats(id)).collect();
    assert_eq!(
        per_urn.iter().map(|s| s.queries).sum::<u64>(),
        total.queries
    );
    assert_eq!(
        per_urn.iter().map(|s| s.cache_hits).sum::<u64>(),
        total.cache_hits
    );
    assert_eq!(
        per_urn
            .iter()
            .map(|s| s.total_latency)
            .sum::<std::time::Duration>(),
        total.total_latency
    );
    // Both urns fit in the default cache: after the cold loads everything
    // is a hit, so misses stay bounded by the racing cold loads.
    assert!(total.cache_misses <= workers * 2);
    assert!(total.mean_latency() > std::time::Duration::ZERO);
}

/// Plain and succinct builds of one graph are distinct urns (the codec is
/// part of the build key), both survive a reopen with their codec intact,
/// and the succinct one budgets fewer LRU bytes for identical counts.
#[test]
fn codec_is_part_of_the_build_key_and_survives_reopen() {
    use motivo::table::RecordCodec;
    let dir = workdir("codec");
    let graph = motivo::graph::generators::barabasi_albert(300, 3, 17);

    let (plain_id, succ_id) = {
        let store = UrnStore::open(&dir).unwrap();
        let plain = store
            .build_or_get(&graph, &BuildConfig::new(4).seed(1))
            .unwrap();
        let succ = store
            .build_or_get(
                &graph,
                &BuildConfig::new(4).seed(1).codec(RecordCodec::Succinct),
            )
            .unwrap();
        plain.wait().unwrap();
        succ.wait().unwrap();
        assert_ne!(plain.id(), succ.id(), "codec must separate build keys");
        // Re-requesting either codec reuses its urn.
        let again = store
            .build_or_get(
                &graph,
                &BuildConfig::new(4).seed(1).codec(RecordCodec::Succinct),
            )
            .unwrap();
        assert_eq!(again.id(), succ.id());
        (plain.id(), succ.id())
    };

    // A fresh process sees both, codec preserved, and serves identical
    // estimates from either for a fixed seed.
    let store = UrnStore::open(&dir).unwrap();
    let urns = store.list();
    assert_eq!(
        urns.iter().find(|m| m.id == plain_id).unwrap().key.codec,
        RecordCodec::Plain
    );
    let succ_meta = urns.iter().find(|m| m.id == succ_id).unwrap();
    assert_eq!(succ_meta.key.codec, RecordCodec::Succinct);
    let plain_meta = urns.iter().find(|m| m.id == plain_id).unwrap();
    assert!(
        succ_meta.table_bytes * 10 <= plain_meta.table_bytes * 6,
        "succinct {} B vs plain {} B",
        succ_meta.table_bytes,
        plain_meta.table_bytes
    );

    let a = store.get(plain_id).unwrap();
    let b = store.get(succ_id).unwrap();
    assert_eq!(a.urn().total_treelets(), b.urn().total_treelets());
    assert!(
        b.bytes() < a.bytes(),
        "succinct urn must budget fewer cache bytes"
    );
    let mut reg_a = GraphletRegistry::new(4);
    let mut reg_b = GraphletRegistry::new(4);
    let query = StoreQuery::new(&store);
    let ea = query
        .naive_estimates(plain_id, &mut reg_a, 5_000, &SampleConfig::seeded(2))
        .unwrap();
    let eb = query
        .naive_estimates(succ_id, &mut reg_b, 5_000, &SampleConfig::seeded(2))
        .unwrap();
    for (x, y) in ea.per_graphlet.iter().zip(&eb.per_graphlet) {
        assert_eq!(x.occurrences, y.occurrences);
        assert_eq!(x.count.to_bits(), y.count.to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}
