//! Property tests for the succinct treelet codec.

use motivo_treelet::{all_treelets, all_treelets_up_to, ColorSet, Treelet};
use proptest::prelude::*;

/// Random topologically-ordered parent array on `2..=12` nodes.
fn parents_strategy() -> impl Strategy<Value = Vec<u8>> {
    (2usize..=12).prop_flat_map(|n| {
        let mut parts: Vec<BoxedStrategy<u8>> = vec![Just(0u8).boxed()];
        for i in 1..n {
            parts.push((0..i as u8).boxed());
        }
        parts
    })
}

proptest! {
    /// The canonical encoding does not depend on the order children were
    /// attached in: permuting sibling ids in the parent array (relabeling
    /// the tree) leaves the encoding unchanged.
    #[test]
    fn encoding_is_shape_invariant(parents in parents_strategy(), seed in 0u64..1000) {
        let t = Treelet::from_parents(&parents);
        // Relabel: random permutation of non-root ids that preserves the
        // topological order constraint by re-deriving a parent array from
        // a shuffled DFS of the same tree.
        let n = parents.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &p) in parents.iter().enumerate().skip(1) {
            children[p as usize].push(i);
        }
        // Deterministic shuffle of every child list.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for ch in children.iter_mut() {
            for i in (1..ch.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                ch.swap(i, j);
            }
        }
        // Rebuild a parent array by DFS over the shuffled child lists.
        let mut new_parents = vec![0u8; n];
        let mut order = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            order[v] = next;
            next += 1;
            for &c in children[v].iter().rev() {
                stack.push(c);
            }
        }
        // order[] maps old id → new id, increasing along the DFS.
        let mut inv = vec![0usize; n];
        for (old, &new) in order.iter().enumerate() {
            inv[new] = old;
        }
        for new_id in 1..n {
            let old = inv[new_id];
            new_parents[new_id] = order[parents[old] as usize] as u8;
        }
        prop_assert_eq!(Treelet::from_parents(&new_parents), t);
    }

    /// `beta` equals the brute-force count of root-child subtrees
    /// isomorphic to the smallest one.
    #[test]
    fn beta_matches_bruteforce(parents in parents_strategy()) {
        let t = Treelet::from_parents(&parents);
        if t.is_singleton() {
            return Ok(());
        }
        let subs = t.subtrees();
        let first = subs[0];
        let brute = subs.iter().take_while(|&&s| s == first).count() as u32;
        prop_assert_eq!(t.beta(), brute);
    }

    /// Sizes add up and tours stay valid under decomposition chains.
    #[test]
    fn decomposition_chain_terminates(parents in parents_strategy()) {
        let mut t = Treelet::from_parents(&parents);
        let mut total = t.size();
        while !t.is_singleton() {
            let (rest, child) = t.decomp();
            prop_assert!(rest.is_valid() && child.is_valid());
            prop_assert_eq!(rest.size() + child.size(), t.size());
            prop_assert!(child <= t.first_subtree());
            total -= child.size();
            t = rest;
        }
        prop_assert_eq!(total, 1);
    }

    /// Gosper-hack subset enumeration equals the binomial coefficient and
    /// produces distinct subsets of the right size.
    #[test]
    fn colorset_subsets(k in 1u8..=10, size in 0u32..=10) {
        let full = ColorSet::full(k);
        let subs = full.subsets_of_size(size);
        let binom = |n: u64, r: u64| -> u64 {
            if r > n {
                return 0;
            }
            (0..r).fold(1u64, |acc, i| acc * (n - i) / (i + 1))
        };
        prop_assert_eq!(subs.len() as u64, binom(k as u64, size as u64));
        let mut seen = std::collections::HashSet::new();
        for s in subs {
            prop_assert_eq!(s.len(), size);
            prop_assert!(s.is_subset_of(full));
            prop_assert!(seen.insert(s.0));
        }
    }
}

/// Exhaustive (not property-based, but cheap): every admissible merge of
/// enumerated shapes round-trips, and the admissible pairs generate each
/// size class exactly once.
#[test]
fn exhaustive_merge_decomp_consistency() {
    let by_size = all_treelets_up_to(7);
    for h in 2..=7u32 {
        let mut generated = Vec::new();
        for h1 in 1..h {
            let h2 = h - h1;
            for &t1 in &by_size[h1 as usize - 1] {
                for &t2 in &by_size[h2 as usize - 1] {
                    match t1.merge(t2) {
                        Some(m) => {
                            assert_eq!(m.decomp(), (t1, t2));
                            generated.push(m);
                        }
                        None => {
                            // Either too large (impossible here) or
                            // non-canonical: t2 must exceed t1's first
                            // subtree.
                            assert!(
                                !t1.is_singleton() && t2 > t1.first_subtree(),
                                "unexpected merge rejection: {t1:?} + {t2:?}"
                            );
                        }
                    }
                }
            }
        }
        generated.sort_unstable();
        generated.dedup();
        assert_eq!(generated.len(), all_treelets(h).len(), "size {h}");
    }
}

/// The integer order on encodings refines the size order only within
/// fixed shapes — but padding guarantees no two distinct valid tours
/// compare equal.
#[test]
fn encodings_are_injective_across_sizes() {
    let mut all: Vec<Treelet> = Vec::new();
    for h in 1..=8u32 {
        all.extend(all_treelets(h));
    }
    let mut codes: Vec<u32> = all.iter().map(|t| t.code()).collect();
    codes.sort_unstable();
    let before = codes.len();
    codes.dedup();
    assert_eq!(codes.len(), before, "distinct treelets share an encoding");
}
