//! Color sets as 16-bit characteristic vectors.
//!
//! With `k ≤ 16` colors, a subset `C ⊆ {0, …, k−1}` is the bitmask with bit
//! `c` set for each `c ∈ C`. Set algebra becomes single bitwise instructions,
//! which is what makes the check half of check-and-merge (`C' ∩ C'' = ∅`)
//! essentially free (paper §3.1).

/// A subset of the `k ≤ 16` colors, as a characteristic bit vector.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ColorSet(pub u16);

impl ColorSet {
    /// The empty color set.
    pub const EMPTY: ColorSet = ColorSet(0);

    /// The singleton set `{color}`.
    #[inline]
    pub fn single(color: u8) -> ColorSet {
        debug_assert!(color < 16);
        ColorSet(1 << color)
    }

    /// The full set `{0, …, k−1}`.
    #[inline]
    pub fn full(k: u8) -> ColorSet {
        debug_assert!((1..=16).contains(&k));
        ColorSet(if k == 16 { u16::MAX } else { (1 << k) - 1 })
    }

    /// Number of colors in the set.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `color` is in the set.
    #[inline]
    pub fn contains(self, color: u8) -> bool {
        self.0 >> color & 1 == 1
    }

    /// Set union (bitwise `or`).
    #[inline]
    pub fn union(self, other: ColorSet) -> ColorSet {
        ColorSet(self.0 | other.0)
    }

    /// Set intersection (bitwise `and`).
    #[inline]
    pub fn inter(self, other: ColorSet) -> ColorSet {
        ColorSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn minus(self, other: ColorSet) -> ColorSet {
        ColorSet(self.0 & !other.0)
    }

    /// Whether the two sets share no color — the merge precondition.
    #[inline]
    pub fn is_disjoint(self, other: ColorSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: ColorSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The smallest color in the set, if any.
    #[inline]
    pub fn min_color(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as u8)
        }
    }

    /// Iterates over the colors in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let c = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(c)
            }
        })
    }

    /// Enumerates every subset of `self` with exactly `size` colors.
    ///
    /// Used by the brute-force reference implementations in tests; the hot
    /// DP never enumerates subsets (it iterates stored records instead).
    pub fn subsets_of_size(self, size: u32) -> Vec<ColorSet> {
        let colors: Vec<u8> = self.iter().collect();
        let mut out = Vec::new();
        let n = colors.len();
        if (size as usize) > n {
            return out;
        }
        // Gosper's hack over the positions of `colors`.
        if size == 0 {
            return vec![ColorSet::EMPTY];
        }
        let mut comb: u32 = (1 << size) - 1;
        while comb < 1 << n {
            let mut set = ColorSet::EMPTY;
            for (i, &c) in colors.iter().enumerate() {
                if comb >> i & 1 == 1 {
                    set = set.union(ColorSet::single(c));
                }
            }
            out.push(set);
            let c = comb & comb.wrapping_neg();
            let r = comb + c;
            comb = (((r ^ comb) >> 2) / c) | r;
        }
        out
    }
}

impl std::fmt::Debug for ColorSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra() {
        let a = ColorSet::single(0).union(ColorSet::single(3));
        let b = ColorSet::single(3).union(ColorSet::single(5));
        assert_eq!(a.inter(b), ColorSet::single(3));
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.minus(b), ColorSet::single(0));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(ColorSet::single(7)));
        assert!(ColorSet::single(3).is_subset_of(a));
    }

    #[test]
    fn full_and_iter() {
        let f = ColorSet::full(5);
        assert_eq!(f.len(), 5);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(ColorSet::full(16).len(), 16);
        assert_eq!(f.min_color(), Some(0));
        assert_eq!(ColorSet::EMPTY.min_color(), None);
    }

    #[test]
    fn subsets_of_size_counts() {
        let f = ColorSet::full(6);
        assert_eq!(f.subsets_of_size(0).len(), 1);
        assert_eq!(f.subsets_of_size(2).len(), 15);
        assert_eq!(f.subsets_of_size(3).len(), 20);
        assert_eq!(f.subsets_of_size(6).len(), 1);
        assert_eq!(f.subsets_of_size(7).len(), 0);
        for s in f.subsets_of_size(3) {
            assert_eq!(s.len(), 3);
            assert!(s.is_subset_of(f));
        }
    }
}
