//! Enumeration of all canonical rooted treelets by size.
//!
//! The generator mirrors the dynamic program itself: a canonical treelet on
//! `h` nodes arises from exactly one pair `(T', T'')` with
//! `|T'| + |T''| = h` and `T''` admissible as first child of `T'`
//! ([`Treelet::can_merge`]). Iterating all admissible pairs therefore yields
//! every canonical treelet exactly once — no dedup required (tested against
//! OEIS A000081).

use crate::Treelet;

/// All canonical rooted treelets on exactly `h` nodes, ascending in the
/// treelet order.
pub fn all_treelets(h: u32) -> Vec<Treelet> {
    all_treelets_up_to(h).pop().expect("h >= 1")
}

/// All canonical rooted treelets of sizes `1..=k`, indexed by `size - 1`.
/// Each size class is sorted ascending in the treelet order.
pub fn all_treelets_up_to(k: u32) -> Vec<Vec<Treelet>> {
    assert!((1..=crate::MAX_TREELET_NODES).contains(&k));
    let mut by_size: Vec<Vec<Treelet>> = vec![vec![Treelet::SINGLETON]];
    for h in 2..=k {
        let mut level = Vec::new();
        for h1 in 1..h {
            let h2 = h - h1;
            for &t1 in &by_size[h1 as usize - 1] {
                for &t2 in &by_size[h2 as usize - 1] {
                    if t1.can_merge(t2) {
                        level.push(t1.merge_unchecked(t2));
                    }
                }
            }
        }
        level.sort_unstable();
        debug_assert!(level.windows(2).all(|w| w[0] != w[1]), "duplicate treelet");
        by_size.push(level);
    }
    by_size
}

/// A precomputed family of treelets up to size `k`, with O(1) lookup from a
/// treelet to its dense index within its size class. The build-up phase and
/// AGS both index per-shape arrays with this.
pub struct TreeletFamily {
    k: u32,
    by_size: Vec<Vec<Treelet>>,
}

impl TreeletFamily {
    /// Enumerates and indexes all treelets of sizes `1..=k`.
    pub fn new(k: u32) -> TreeletFamily {
        TreeletFamily {
            k,
            by_size: all_treelets_up_to(k),
        }
    }

    /// The size parameter `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The treelets of exactly `h` nodes, ascending.
    pub fn of_size(&self, h: u32) -> &[Treelet] {
        &self.by_size[h as usize - 1]
    }

    /// Number of distinct shapes of exactly `h` nodes.
    pub fn count(&self, h: u32) -> usize {
        self.of_size(h).len()
    }

    /// Dense index of `t` within its size class (binary search; O(log) with
    /// tiny constants — there are at most 719 shapes for h ≤ 10).
    pub fn index_of(&self, t: Treelet) -> usize {
        self.of_size(t.size())
            .binary_search(&t)
            .expect("treelet must belong to the family")
    }

    /// Iterate `(size, index, treelet)` over the whole family.
    pub fn iter(&self) -> impl Iterator<Item = (u32, usize, Treelet)> + '_ {
        self.by_size.iter().enumerate().flat_map(|(s, v)| {
            v.iter()
                .enumerate()
                .map(move |(i, &t)| (s as u32 + 1, i, t))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_indexing_consistent() {
        let fam = TreeletFamily::new(7);
        for h in 1..=7 {
            for (i, &t) in fam.of_size(h).iter().enumerate() {
                assert_eq!(fam.index_of(t), i);
            }
        }
        assert_eq!(fam.count(7), 48);
        assert_eq!(fam.iter().count(), 1 + 1 + 2 + 4 + 9 + 20 + 48);
    }

    #[test]
    fn enumeration_is_sorted_unique() {
        for h in 1..=9 {
            let v = all_treelets(h);
            for w in v.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
