//! Colored treelets packed into 48 bits of a `u64` (paper §3.1).

use crate::{ColorSet, Treelet};

/// A colorful rooted treelet `(T, C)` with `|T| = |C|`, packed as
/// `(s_T as u64) << 16 | s_C`: the 30-bit tour in the high bits, the 16-bit
/// color characteristic vector in the low bits — 48 significant bits total,
/// exactly the paper's packing.
///
/// The derived `u64` order is tree-major, color-minor lexicographic order,
/// which is the sort order of the count-table records.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColoredTreelet(u64);

impl ColoredTreelet {
    /// Packs a treelet and its color set. Debug-asserts the colorfulness
    /// invariant `|T| = |C|`.
    #[inline]
    pub fn new(tree: Treelet, colors: ColorSet) -> ColoredTreelet {
        debug_assert_eq!(
            tree.size(),
            colors.len(),
            "colorful treelets span exactly one color per node"
        );
        ColoredTreelet((tree.code() as u64) << 16 | colors.0 as u64)
    }

    /// Reconstructs from a raw packed code, validating both halves.
    pub fn from_code(code: u64) -> Option<ColoredTreelet> {
        let tree = Treelet::from_code((code >> 16) as u32)?;
        let colors = ColorSet((code & 0xFFFF) as u16);
        if tree.size() == colors.len() {
            Some(ColoredTreelet(code))
        } else {
            None
        }
    }

    /// The packed 48-bit code.
    #[inline]
    pub fn code(self) -> u64 {
        self.0
    }

    /// The uncolored treelet shape.
    #[inline]
    pub fn tree(self) -> Treelet {
        Treelet::from_code((self.0 >> 16) as u32).expect("invariant: valid tour")
    }

    /// The color set.
    #[inline]
    pub fn colors(self) -> ColorSet {
        ColorSet((self.0 & 0xFFFF) as u16)
    }

    /// Number of nodes (= number of colors).
    #[inline]
    pub fn size(self) -> u32 {
        1 + ((self.0 >> 16) as u32).count_ones()
    }

    /// Smallest packed code with this tree shape (empty-color end of the
    /// shape's record range).
    #[inline]
    pub fn range_start(tree: Treelet) -> u64 {
        (tree.code() as u64) << 16
    }

    /// Largest packed code with this tree shape (inclusive).
    #[inline]
    pub fn range_end(tree: Treelet) -> u64 {
        (tree.code() as u64) << 16 | 0xFFFF
    }

    /// Merges two colored treelets: shape-merge plus color union. Returns
    /// `None` unless the shapes merge canonically and the colors are
    /// disjoint — the full check-and-merge of the paper.
    #[inline]
    pub fn merge(self, child: ColoredTreelet) -> Option<ColoredTreelet> {
        let (sc, cc) = (self.colors(), child.colors());
        if !sc.is_disjoint(cc) {
            return None;
        }
        let tree = self.tree().merge(child.tree())?;
        Some(ColoredTreelet::new(tree, sc.union(cc)))
    }
}

impl std::fmt::Debug for ColoredTreelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ColoredTreelet({}, {:?})", self.tree(), self.colors())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path_treelet;

    #[test]
    fn pack_unpack() {
        let t = path_treelet(3);
        let c = ColorSet::single(0)
            .union(ColorSet::single(2))
            .union(ColorSet::single(5));
        let ct = ColoredTreelet::new(t, c);
        assert_eq!(ct.tree(), t);
        assert_eq!(ct.colors(), c);
        assert_eq!(ct.size(), 3);
        assert_eq!(ColoredTreelet::from_code(ct.code()), Some(ct));
    }

    #[test]
    fn from_code_rejects_mismatched_sizes() {
        let t = path_treelet(3);
        let code = (t.code() as u64) << 16 | 0b11; // 2 colors for 3 nodes
        assert!(ColoredTreelet::from_code(code).is_none());
    }

    #[test]
    fn order_is_tree_major() {
        let small_tree = crate::star_treelet(3);
        let big_tree = path_treelet(3);
        assert!(small_tree < big_tree);
        let a = ColoredTreelet::new(small_tree, ColorSet(0b111));
        let b = ColoredTreelet::new(big_tree, ColorSet(0b0111));
        let c = ColoredTreelet::new(big_tree, ColorSet(0b1011));
        assert!(a < b && b < c);
    }

    #[test]
    fn colored_merge_checks_disjointness() {
        let e = ColoredTreelet::new(
            path_treelet(2),
            ColorSet::single(0).union(ColorSet::single(1)),
        );
        let overlapping = ColoredTreelet::new(Treelet::SINGLETON, ColorSet::single(1));
        assert!(e.merge(overlapping).is_none());
        let ok = ColoredTreelet::new(Treelet::SINGLETON, ColorSet::single(2));
        let merged = e.merge(ok).unwrap();
        assert_eq!(merged.size(), 3);
        assert_eq!(merged.tree(), crate::star_treelet(3));
    }

    #[test]
    fn range_bounds_bracket_all_colorings() {
        let t = path_treelet(4);
        let lo = ColoredTreelet::range_start(t);
        let hi = ColoredTreelet::range_end(t);
        for c in ColorSet::full(8).subsets_of_size(4) {
            let code = ColoredTreelet::new(t, c).code();
            assert!(lo <= code && code <= hi);
        }
    }
}
