//! Succinct rooted treelet encoding — Motivo §3.1.
//!
//! A *treelet* is a rooted tree on at most 16 nodes. Motivo's key data
//! structure insight is that such a tree can be encoded in a single machine
//! word as the bitstring of its DFS (Euler) tour: the i-th bit is `1` if the
//! i-th edge traversal moves *away* from the root and `0` if it moves back
//! *towards* it. A tree on `h` nodes has `h − 1` edges, each traversed twice,
//! so the tour takes `2(h − 1) ≤ 30` bits for `h ≤ 16` and fits in a `u32`.
//!
//! We store the tour **left-aligned** (first bit in the MSB) and padded with
//! zeros. Valid tours are balanced Dyck words, so zero-padding is unambiguous
//! (no valid tour is another valid tour extended by zeros), and plain integer
//! comparison of the padded words equals lexicographic comparison of the
//! bitstrings. That integer order is the *total order on treelets* used
//! throughout the paper: it determines the unique decomposition, the
//! check-and-merge condition, and the sort order of the count table.
//!
//! Supported operations (paper names in parentheses):
//! * [`Treelet::size`] (`getsize`) — one `POPCNT`.
//! * [`Treelet::merge`] (`merge`) — concatenate `1 · s_T'' · 0 · s_T'`.
//! * [`Treelet::decomp`] (`decomp`) — split off the root's first child
//!   subtree; the inverse of `merge`.
//! * [`Treelet::beta`] (`sub`) — the multiplicity `β_T` of Eq. (1): how many
//!   of the root's child subtrees are isomorphic to the first one.
//!
//! A [`ColoredTreelet`] packs the tour together with the 16-bit
//! characteristic vector of its color set into 48 bits of a `u64`, exactly as
//! motivo packs its count-table keys; the `u64` integer order is the
//! tree-major, color-minor lexicographic order of the paper.

mod colored;
mod colorset;
mod enumerate;

pub use colored::ColoredTreelet;
pub use colorset::ColorSet;
pub use enumerate::{all_treelets, all_treelets_up_to, TreeletFamily};

/// Maximum number of nodes a treelet may have (the paper's `k ≤ 16` limit).
pub const MAX_TREELET_NODES: u32 = 16;

/// A rooted treelet on `1..=16` nodes, encoded as a left-aligned DFS tour
/// bitstring in a `u32`.
///
/// The encoding is *canonical*: the DFS visits the children of every node in
/// ascending order of their sub-encodings, so isomorphic rooted trees have
/// identical encodings. All constructors maintain this invariant
/// ([`Treelet::merge`] refuses non-canonical combinations unless asserted
/// otherwise via [`Treelet::merge_unchecked`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Treelet(u32);

impl Treelet {
    /// The treelet consisting of a single root node (empty tour).
    pub const SINGLETON: Treelet = Treelet(0);

    /// Reconstructs a treelet from its raw encoding.
    ///
    /// Returns `None` if the bits are not a valid left-aligned balanced tour.
    pub fn from_code(code: u32) -> Option<Treelet> {
        let t = Treelet(code);
        if t.is_valid() {
            Some(t)
        } else {
            None
        }
    }

    /// The raw 30-bit (left-aligned) encoding.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Number of nodes: `1 + popcount(s_T)` — a single machine instruction,
    /// as advertised in the paper (`getsize`).
    #[inline]
    pub fn size(self) -> u32 {
        1 + self.0.count_ones()
    }

    /// Number of bits of the tour (`2(h−1)`).
    #[inline]
    pub fn tour_len(self) -> u32 {
        2 * self.0.count_ones()
    }

    /// Whether this is the single-node treelet.
    #[inline]
    pub fn is_singleton(self) -> bool {
        self.0 == 0
    }

    /// Validates the encoding: balanced tour, every prefix non-negative,
    /// nothing but padding after `tour_len` bits, at most 16 nodes.
    pub fn is_valid(self) -> bool {
        let ones = self.0.count_ones();
        if ones > MAX_TREELET_NODES - 1 {
            return false;
        }
        let len = 2 * ones;
        // No stray bits beyond the tour.
        if len < 32 && (self.0 << len) != 0 && len != 0 {
            return false;
        }
        if len == 0 {
            return self.0 == 0;
        }
        let mut depth: i32 = 0;
        for i in 0..len {
            if self.0 >> (31 - i) & 1 == 1 {
                depth += 1;
            } else {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
        }
        depth == 0
    }

    /// Whether `merge(self, child)` is size-feasible and *canonical*, i.e.
    /// produces the unique encoding whose [`Treelet::decomp`] returns
    /// exactly `(self, child)`.
    ///
    /// This is the check half of the paper's check-and-merge: `child` must
    /// come no later than the smallest (first) child subtree of `self` in the
    /// treelet order. Color disjointness is checked separately by the caller.
    #[inline]
    pub fn can_merge(self, child: Treelet) -> bool {
        if self.size() + child.size() > MAX_TREELET_NODES {
            return false;
        }
        if self.is_singleton() {
            return true;
        }
        child <= self.first_subtree()
    }

    /// Merges `child` as the new first child subtree of `self`'s root
    /// (the paper's `merge(T', T'')`): the resulting tour is
    /// `1 · s_child · 0 · s_self`.
    ///
    /// Returns `None` when the combination is not canonical or exceeds 16
    /// nodes; use with [`Treelet::can_merge`] pre-checked via
    /// [`Treelet::merge_unchecked`] in hot loops.
    #[inline]
    pub fn merge(self, child: Treelet) -> Option<Treelet> {
        if self.can_merge(child) {
            Some(self.merge_unchecked(child))
        } else {
            None
        }
    }

    /// [`Treelet::merge`] without the canonicality check. The caller must
    /// have verified [`Treelet::can_merge`]; in debug builds this is
    /// asserted.
    #[inline]
    pub fn merge_unchecked(self, child: Treelet) -> Treelet {
        debug_assert!(self.can_merge(child));
        let child_len = child.tour_len();
        // 1 · s_child · 0 · s_self, left-aligned. The `0` separator is the
        // return-to-root move; it is already present as padding in
        // `child.0 >> 1`, so only the final shift needs `child_len + 2`.
        let mut code = (1u32 << 31) | (child.0 >> 1);
        if child_len + 2 < 32 {
            code |= self.0 >> (child_len + 2);
        }
        Treelet(code)
    }

    /// Splits off the root's first (smallest) child subtree — the paper's
    /// unique decomposition `decomp(T) = (T', T'')` with `T''` rooted at a
    /// child of the root and `T' = T − T''`. Inverse of [`Treelet::merge`].
    ///
    /// Panics in debug builds if called on the singleton.
    #[inline]
    pub fn decomp(self) -> (Treelet, Treelet) {
        debug_assert!(!self.is_singleton(), "singleton has no decomposition");
        let j = self.first_subtree_end();
        // Bits 1..j-1 are the child's tour; bits j+1.. are the remainder's.
        // For j == 1 the mask is !(u32::MAX) == 0, yielding the singleton.
        let child = Treelet((self.0 << 1) & !(u32::MAX >> (j - 1)));
        let rest = Treelet(self.0 << (j + 1)); // j + 1 ≤ 31 since tours ≤ 30 bits
        (rest, child)
    }

    /// The root's first child subtree (the `T''` of [`Treelet::decomp`]).
    #[inline]
    pub fn first_subtree(self) -> Treelet {
        self.decomp().1
    }

    /// Index `j` of the `0`-bit that closes the first child subtree:
    /// the smallest `j ≥ 1` with balance zero after bits `0..=j`.
    #[inline]
    fn first_subtree_end(self) -> u32 {
        let mut depth: i32 = 1; // bit 0 is the initial descent
        let mut j = 1;
        loop {
            if self.0 >> (31 - j) & 1 == 1 {
                depth += 1;
            } else {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
    }

    /// `β_T`, the paper's `sub(T)`: the number of child subtrees of the root
    /// isomorphic to the first one. This is the overcount factor of Eq. (1):
    /// the forward merge produces every copy of `T` exactly `β_T` times.
    pub fn beta(self) -> u32 {
        debug_assert!(!self.is_singleton());
        let (mut rest, first) = self.decomp();
        let mut count = 1;
        while !rest.is_singleton() {
            let (r, c) = rest.decomp();
            if c == first {
                count += 1;
                rest = r;
            } else {
                break;
            }
        }
        count
    }

    /// Number of children of the root.
    pub fn root_degree(self) -> u32 {
        let mut deg = 0;
        let mut cur = self;
        while !cur.is_singleton() {
            deg += 1;
            cur = cur.decomp().0;
        }
        deg
    }

    /// The child subtrees of the root, in canonical (ascending) order.
    pub fn subtrees(self) -> Vec<Treelet> {
        let mut out = Vec::new();
        let mut cur = self;
        while !cur.is_singleton() {
            let (rest, child) = cur.decomp();
            out.push(child);
            cur = rest;
        }
        out
    }

    /// Expands the encoding into a parent array: `parent[0]` is the root
    /// (encoded as `0`), and for `i > 0`, `parent[i] < i` is the DFS parent.
    /// Nodes are numbered in DFS (pre-order) visit order.
    pub fn parents(self) -> Vec<u8> {
        let h = self.size() as usize;
        let mut parents = vec![0u8; h];
        let mut stack: Vec<u8> = vec![0];
        let mut next = 1u8;
        for i in 0..self.tour_len() {
            if self.0 >> (31 - i) & 1 == 1 {
                parents[next as usize] = *stack.last().expect("tour balanced");
                stack.push(next);
                next += 1;
            } else {
                stack.pop();
            }
        }
        parents
    }

    /// Builds the canonical treelet for an arbitrary rooted tree given as a
    /// parent array (`parent[0]` ignored; `parent[i] < i`).
    ///
    /// Used by tests and by the graphlet spanning-tree machinery; not on any
    /// hot path.
    pub fn from_parents(parents: &[u8]) -> Treelet {
        assert!(!parents.is_empty() && parents.len() <= MAX_TREELET_NODES as usize);
        let n = parents.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &p) in parents.iter().enumerate().skip(1) {
            assert!((p as usize) < i, "parents must be topologically ordered");
            children[p as usize].push(i);
        }
        fn canon(node: usize, children: &[Vec<usize>]) -> Treelet {
            let mut subs: Vec<Treelet> =
                children[node].iter().map(|&c| canon(c, children)).collect();
            // Children must be attached largest-first so that the final
            // first child is the smallest (merge prepends).
            subs.sort_unstable_by(|a, b| b.cmp(a));
            let mut acc = Treelet::SINGLETON;
            for s in subs {
                acc = acc.merge(s).expect("sorted attach order is canonical");
            }
            acc
        }
        canon(0, &children)
    }

    /// The tour bitstring as text, e.g. `"1100"` for the rooted path on 3
    /// nodes.
    pub fn tour_string(self) -> String {
        (0..self.tour_len())
            .map(|i| {
                if self.0 >> (31 - i) & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for Treelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Treelet({}, n={})", self.tour_string(), self.size())
    }
}

impl std::fmt::Display for Treelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.tour_string())
    }
}

/// The rooted path on `h` nodes (root at one end). Handy in tests/benches.
pub fn path_treelet(h: u32) -> Treelet {
    assert!((1..=MAX_TREELET_NODES).contains(&h));
    let mut t = Treelet::SINGLETON;
    for _ in 1..h {
        t = Treelet::SINGLETON
            .merge(t)
            .expect("path merge is canonical");
    }
    t
}

/// The star on `h` nodes rooted at the center.
pub fn star_treelet(h: u32) -> Treelet {
    assert!((1..=MAX_TREELET_NODES).contains(&h));
    let mut t = Treelet::SINGLETON;
    for _ in 1..h {
        t = t
            .merge(Treelet::SINGLETON)
            .expect("star merge is canonical");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> Treelet {
        Treelet::SINGLETON.merge(Treelet::SINGLETON).unwrap()
    }

    #[test]
    fn singleton_basics() {
        let s = Treelet::SINGLETON;
        assert_eq!(s.size(), 1);
        assert_eq!(s.tour_len(), 0);
        assert!(s.is_valid());
        assert_eq!(s.tour_string(), "");
    }

    #[test]
    fn edge_encoding() {
        let e = edge();
        assert_eq!(e.tour_string(), "10");
        assert_eq!(e.size(), 2);
        assert_eq!(e.beta(), 1);
    }

    #[test]
    fn path3_encoding() {
        let p3 = path_treelet(3);
        assert_eq!(p3.tour_string(), "1100");
        assert_eq!(p3.size(), 3);
        let (rest, child) = p3.decomp();
        assert_eq!(rest, Treelet::SINGLETON);
        assert_eq!(child, edge());
    }

    #[test]
    fn star3_encoding() {
        let s3 = star_treelet(3);
        assert_eq!(s3.tour_string(), "1010");
        assert_eq!(s3.beta(), 2);
        // star < path in the total order (lexicographic on tours).
        assert!(s3 < path_treelet(3));
    }

    #[test]
    fn merge_decomp_roundtrip_small() {
        for h in 2..=8u32 {
            for t in all_treelets(h) {
                let (rest, child) = t.decomp();
                assert_eq!(rest.merge(child), Some(t), "roundtrip failed for {t:?}");
                assert_eq!(rest.size() + child.size(), h);
            }
        }
    }

    #[test]
    fn enumeration_counts_match_oeis() {
        // Number of rooted trees on h nodes (OEIS A000081).
        let expect = [1usize, 1, 2, 4, 9, 20, 48, 115, 286, 719];
        for (i, &e) in expect.iter().enumerate() {
            let h = i as u32 + 1;
            assert_eq!(all_treelets(h).len(), e, "count mismatch at h={h}");
        }
    }

    #[test]
    fn all_enumerated_are_valid_and_sorted_children() {
        for h in 1..=9u32 {
            for t in all_treelets(h) {
                assert!(t.is_valid(), "{t:?}");
                assert_eq!(t.size(), h);
                let subs = t.subtrees();
                for w in subs.windows(2) {
                    assert!(w[0] <= w[1], "children not ascending in {t:?}");
                }
                // Re-canonicalizing the parent array must be the identity.
                assert_eq!(Treelet::from_parents(&t.parents()), t);
            }
        }
    }

    #[test]
    fn beta_counts_leading_equal_subtrees() {
        assert_eq!(star_treelet(5).beta(), 4);
        assert_eq!(path_treelet(5).beta(), 1);
        // Root with two path-2 children: beta = 2.
        let t = path_treelet(3).merge(edge()).unwrap();
        assert_eq!(t.beta(), 2);
    }

    #[test]
    fn non_canonical_merge_rejected() {
        // Attaching a chain after building a star root–leaf is rejected:
        // the chain (larger) may not become the first child.
        let chain = edge();
        let t = edge(); // root with one leaf
        assert!(t.merge(chain).is_none());
        // But the other association works: merge(path3, singleton).
        assert!(path_treelet(3).merge(Treelet::SINGLETON).is_some());
    }

    #[test]
    fn size_limit_enforced() {
        let p = path_treelet(16);
        assert!(p.merge(Treelet::SINGLETON).is_none());
        assert_eq!(p.size(), 16);
        assert_eq!(p.tour_len(), 30);
    }

    #[test]
    fn from_code_rejects_garbage() {
        assert!(Treelet::from_code(0b01 << 30).is_none()); // starts descending
        assert!(Treelet::from_code(u32::MAX).is_none()); // unbalanced
        assert!(Treelet::from_code(0).is_some());
        assert!(Treelet::from_code(0b10 << 30).is_some());
    }

    #[test]
    fn parents_roundtrip_path_and_star() {
        assert_eq!(path_treelet(4).parents(), vec![0, 0, 1, 2]);
        assert_eq!(star_treelet(4).parents(), vec![0, 0, 0, 0]);
    }
}
