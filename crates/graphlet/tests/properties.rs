//! Property tests for graphlet canonicalization and spanning machinery,
//! including brute-force oracles that bypass the WL refinement entirely.

use motivo_graphlet::kirchhoff::spanning_tree_count;
use motivo_graphlet::spanning::sigma_rooted;
use motivo_graphlet::{canonical_form, Graphlet};
use motivo_treelet::{Treelet, TreeletFamily};
use proptest::prelude::*;

fn graphlet_strategy(max_k: u8) -> impl Strategy<Value = Graphlet> {
    (2u8..=max_k).prop_flat_map(|k| {
        let pairs = (k as usize) * (k as usize - 1) / 2;
        proptest::collection::vec(any::<bool>(), pairs).prop_map(move |bits| {
            let mut g = Graphlet::empty(k);
            let mut idx = 0;
            for j in 0..k {
                for i in 0..j {
                    if bits[idx] {
                        g.set_edge(i, j);
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

/// All permutations of `0..k` (k ≤ 6 keeps this ≤ 720).
fn permutations(k: u8) -> Vec<Vec<u8>> {
    fn rec(remaining: &mut Vec<u8>, acc: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if remaining.is_empty() {
            out.push(acc.clone());
            return;
        }
        for i in 0..remaining.len() {
            let x = remaining.remove(i);
            acc.push(x);
            rec(remaining, acc, out);
            acc.pop();
            remaining.insert(i, x);
        }
    }
    let mut out = Vec::new();
    rec(&mut (0..k).collect(), &mut Vec::new(), &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exhaustive soundness of the canonical form: *every* one of the k!
    /// relabelings canonicalizes to the same representative, and that
    /// representative is itself a relabeling of the input. (Note: the
    /// WL-cell-restricted maximum is a valid canonical form but not the
    /// global k!-maximum — the restriction changes which representative is
    /// picked, not its invariance.)
    #[test]
    fn canonical_is_exhaustively_invariant(g in graphlet_strategy(5)) {
        let (canon, _) = canonical_form(&g);
        let mut reaches_canon = false;
        for p in permutations(g.k()) {
            let h = g.relabel(&p);
            prop_assert_eq!(h.canonical(), canon, "perm {:?}", p);
            if h == canon {
                reaches_canon = true;
            }
        }
        prop_assert!(reaches_canon, "canonical form must be isomorphic to the input");
    }

    /// σ* computed by the DP equals brute-force spanning-tree enumeration
    /// with explicit rooting classification.
    #[test]
    fn sigma_rooted_matches_bruteforce(g in graphlet_strategy(6)) {
        prop_assume!(g.is_connected());
        let k = g.k();
        let family = TreeletFamily::new(k as u32);
        let sigma = sigma_rooted(&g, &family);

        // Brute force: every (k−1)-edge subset that forms a spanning tree,
        // rooted at every vertex, classified by canonical rooted shape.
        let edges: Vec<(u8, u8)> = {
            let mut v = Vec::new();
            for j in 0..k {
                for i in 0..j {
                    if g.edge(i, j) {
                        v.push((i, j));
                    }
                }
            }
            v
        };
        let mut brute = vec![0u64; family.count(k as u32)];
        let need = k as u32 - 1;
        for mask in 0u32..1 << edges.len() {
            if mask.count_ones() != need {
                continue;
            }
            let sel: Vec<(u8, u8)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let tree = Graphlet::from_edges(k, &sel);
            if !tree.is_connected() {
                continue;
            }
            for root in 0..k {
                // Parent array by BFS from the root.
                let mut order = vec![root];
                let mut parent_of = vec![u8::MAX; k as usize];
                parent_of[root as usize] = root;
                let mut qi = 0;
                while qi < order.len() {
                    let v = order[qi];
                    qi += 1;
                    for u in 0..k {
                        if tree.edge(v, u) && parent_of[u as usize] == u8::MAX {
                            parent_of[u as usize] = v;
                            order.push(u);
                        }
                    }
                }
                // Re-index in BFS order so parents precede children.
                let mut pos = vec![0u8; k as usize];
                for (i, &v) in order.iter().enumerate() {
                    pos[v as usize] = i as u8;
                }
                let mut parents = vec![0u8; k as usize];
                for &v in &order[1..] {
                    parents[pos[v as usize] as usize] = pos[parent_of[v as usize] as usize];
                }
                let shape = Treelet::from_parents(&parents);
                brute[family.index_of(shape)] += 1;
            }
        }
        prop_assert_eq!(sigma, brute);
    }

    /// Kirchhoff count is relabeling-invariant.
    #[test]
    fn kirchhoff_is_invariant(g in graphlet_strategy(7), seed in 0u64..500) {
        let k = g.k();
        let mut perm: Vec<u8> = (0..k).collect();
        let mut state = seed | 1;
        for i in (1..k as usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        prop_assert_eq!(
            spanning_tree_count(&g),
            spanning_tree_count(&g.relabel(&perm))
        );
    }

    /// `code`/`from_code` are mutually inverse for arbitrary graphlets.
    #[test]
    fn code_roundtrip(g in graphlet_strategy(16)) {
        prop_assert_eq!(Graphlet::from_code(g.code()), Some(g));
    }
}
