//! Spanning-treelet tables: the `σ*` matrix needed by AGS (§3.3, §4).
//!
//! For AGS we need, for every k-graphlet `H` and every canonical *rooted*
//! k-treelet shape `T`, the number `σ*(H, T)` of pairs *(spanning tree `S`
//! of `H`, root vertex `r`)* whose canonical rooted shape is `T`. The paper
//! computes these "using an in-memory implementation of the build-up phase"
//! on the graphlet itself; we do exactly that: run the treelet dynamic
//! program (Eq. 1) on `H` with the *identity coloring* (vertex `i` has color
//! `i`), under which every subtree is automatically colorful and the
//! full-color-set size-k counts at each root are precisely the rooted
//! spanning-shape counts.
//!
//! This module doubles as the *reference implementation* of the DP: it is
//! deliberately simple (per-vertex `BTreeMap`s, no parallelism, no
//! flushing), and the integration tests pit the production engine against
//! it on small graphs.

use crate::kirchhoff::spanning_tree_count;
use crate::Graphlet;
use motivo_treelet::{ColorSet, ColoredTreelet, Treelet, TreeletFamily};
use std::collections::BTreeMap;

/// Per-vertex colorful treelet counts of a small (≤ 16 node) graph.
pub struct SmallCounts {
    /// `per_vertex[v]` maps each colored treelet (all sizes `1..=k`) to its
    /// count rooted at `v`.
    pub per_vertex: Vec<BTreeMap<ColoredTreelet, u128>>,
    k: u32,
}

impl SmallCounts {
    /// Runs the build-up DP on a graph given as adjacency bitmask rows with
    /// an explicit vertex coloring (`colors[v] < k`).
    ///
    /// Counts follow Eq. 1: for every vertex `v` and colored treelet
    /// `(T, C)` on `h ≤ k` nodes, the number of colorful non-induced copies
    /// of `T` rooted at `v` spanning exactly the colors `C`.
    pub fn build(rows: &[u16], colors: &[u8], k: u32) -> SmallCounts {
        let n = rows.len();
        assert!(n <= 16 && (1..=16).contains(&k));
        assert_eq!(colors.len(), n);
        // tables[h-1][v]: counts for treelets on exactly h nodes.
        let mut tables: Vec<Vec<BTreeMap<ColoredTreelet, u128>>> = Vec::new();
        let mut base: Vec<BTreeMap<ColoredTreelet, u128>> = vec![BTreeMap::new(); n];
        for (v, row) in base.iter_mut().enumerate() {
            row.insert(
                ColoredTreelet::new(Treelet::SINGLETON, ColorSet::single(colors[v])),
                1,
            );
        }
        tables.push(base);
        for h in 2..=k {
            let mut level: Vec<BTreeMap<ColoredTreelet, u128>> = vec![BTreeMap::new(); n];
            for v in 0..n {
                for h1 in 1..h {
                    let h2 = h - h1;
                    // T' of size h1 rooted at v, T'' of size h2 rooted at u ~ v.
                    for u in 0..n {
                        if rows[v] >> u & 1 == 0 {
                            continue;
                        }
                        let tv = tables[h1 as usize - 1][v].clone();
                        for (&ct1, &c1) in &tv {
                            for (&ct2, &c2) in &tables[h2 as usize - 1][u] {
                                if !ct1.colors().is_disjoint(ct2.colors()) {
                                    continue;
                                }
                                if !ct1.tree().can_merge(ct2.tree()) {
                                    continue;
                                }
                                let merged = ColoredTreelet::new(
                                    ct1.tree().merge_unchecked(ct2.tree()),
                                    ct1.colors().union(ct2.colors()),
                                );
                                *level[v].entry(merged).or_insert(0) += c1 * c2;
                            }
                        }
                    }
                }
                // Divide by the multiplicity β_T (Eq. 1).
                for (ct, count) in level[v].iter_mut() {
                    let beta = ct.tree().beta() as u128;
                    debug_assert_eq!(*count % beta, 0, "β must divide the accumulation");
                    *count /= beta;
                }
                level[v].retain(|_, c| *c > 0);
            }
            tables.push(level);
        }
        let mut per_vertex: Vec<BTreeMap<ColoredTreelet, u128>> = vec![BTreeMap::new(); n];
        for level in tables {
            for (v, map) in level.into_iter().enumerate() {
                per_vertex[v].extend(map);
            }
        }
        SmallCounts { per_vertex, k }
    }

    /// Count of a specific colored treelet rooted at `v`.
    pub fn count(&self, v: usize, ct: ColoredTreelet) -> u128 {
        self.per_vertex[v].get(&ct).copied().unwrap_or(0)
    }

    /// Total count of colorful size-`h` treelets rooted at `v`.
    pub fn total_of_size(&self, v: usize, h: u32) -> u128 {
        self.per_vertex[v]
            .iter()
            .filter(|(ct, _)| ct.size() == h)
            .map(|(_, &c)| c)
            .sum()
    }

    /// The size parameter `k`.
    pub fn k(&self) -> u32 {
        self.k
    }
}

/// The rooted spanning-shape counts `σ*(H, ·)` of a k-graphlet, indexed by
/// the dense index of each rooted k-treelet shape in `family`.
///
/// Invariant (tested): `Σ_T σ*(H, T) = k · σ(H)` where `σ` is the Kirchhoff
/// spanning-tree count — every spanning tree contributes one rooted copy per
/// choice of root.
pub fn sigma_rooted(h: &Graphlet, family: &TreeletFamily) -> Vec<u64> {
    let k = h.k() as u32;
    assert_eq!(family.k(), k, "family must be built for k = |H|");
    let rows = h.rows();
    let colors: Vec<u8> = (0..h.k()).collect();
    let counts = SmallCounts::build(&rows, &colors, k);
    let full = ColorSet::full(k as u8);
    let mut sigma = vec![0u64; family.count(k)];
    for v in 0..rows.len() {
        for (&ct, &c) in &counts.per_vertex[v] {
            if ct.size() == k {
                debug_assert_eq!(ct.colors(), full);
                sigma[family.index_of(ct.tree())] += c as u64;
            }
        }
    }
    debug_assert_eq!(
        sigma.iter().map(|&s| s as u128).sum::<u128>(),
        k as u128 * spanning_tree_count(h),
        "rooted spanning shapes must total k · σ(H) for {h:?}"
    );
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clique, cycle, path, star};
    use motivo_treelet::{path_treelet, star_treelet};

    #[test]
    fn sigma_totals_match_kirchhoff() {
        for k in 3..=6u8 {
            let family = TreeletFamily::new(k as u32);
            for g in [clique(k), path(k), star(k), cycle(k)] {
                let sigma = sigma_rooted(&g, &family);
                let total: u128 = sigma.iter().map(|&s| s as u128).sum();
                assert_eq!(
                    total,
                    k as u128 * spanning_tree_count(&g),
                    "total mismatch for {g:?}"
                );
            }
        }
    }

    #[test]
    fn star_spans_only_star_shapes() {
        // The star's unique spanning tree is itself; its rootings are the
        // star rooted at the center (1 way) and the "spider" rooted at a
        // leaf (k−1 ways).
        let k = 5u8;
        let family = TreeletFamily::new(k as u32);
        let sigma = sigma_rooted(&star(k), &family);
        let nonzero: Vec<(Treelet, u64)> = family
            .of_size(k as u32)
            .iter()
            .zip(&sigma)
            .filter(|(_, &s)| s > 0)
            .map(|(&t, &s)| (t, s))
            .collect();
        assert_eq!(nonzero.len(), 2);
        let center_rooted = star_treelet(k as u32);
        let leaf_rooted = Treelet::SINGLETON
            .merge(star_treelet(k as u32 - 1))
            .unwrap();
        let get = |t: Treelet| nonzero.iter().find(|(x, _)| *x == t).map(|(_, s)| *s);
        assert_eq!(get(center_rooted), Some(1));
        assert_eq!(get(leaf_rooted), Some(k as u64 - 1));
    }

    #[test]
    fn path_spans_paths_and_brooms() {
        // The path graphlet's unique spanning tree is the path; rooted at an
        // end it is the rooted path, rooted inside it is a "double broom".
        let family = TreeletFamily::new(4);
        let sigma = sigma_rooted(&path(4), &family);
        let p4 = path_treelet(4);
        assert_eq!(sigma[family.index_of(p4)], 2); // two ends
        let total: u64 = sigma.iter().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn small_counts_on_triangle() {
        // Triangle, identity coloring: each vertex roots one singleton, two
        // edges, and size-3 treelets: rooted path x2 (via each neighbor) and
        // the star-2 (cherry) x1.
        let g = clique(3);
        let counts = SmallCounts::build(&g.rows(), &[0, 1, 2], 3);
        for v in 0..3 {
            assert_eq!(counts.total_of_size(v, 1), 1);
            assert_eq!(counts.total_of_size(v, 2), 2);
            assert_eq!(counts.total_of_size(v, 3), 3);
        }
    }

    #[test]
    fn colorful_constraint_kills_repeated_colors() {
        // Path 0-1-2 colored [0, 1, 0]: no colorful 3-treelet exists.
        let g = path(3);
        let counts = SmallCounts::build(&g.rows(), &[0, 1, 0], 3);
        for v in 0..3 {
            assert_eq!(counts.total_of_size(v, 3), 0, "vertex {v}");
        }
        // But the 2-treelets across distinct colors survive.
        assert_eq!(counts.total_of_size(1, 2), 2);
    }
}
