//! Canonical labeling — the from-scratch Nauty substitute.
//!
//! The canonical form of a graphlet is the relabeling that **maximizes** the
//! packed upper-triangle code, restricted to permutations respecting the
//! stable partition computed by 1-D Weisfeiler–Leman color refinement. The
//! refinement classes are isomorphism-invariant (colors are built from
//! degrees and multisets of neighbor colors only), and the class order is
//! fixed by the invariant signatures, so the restricted maximum is the same
//! for any two isomorphic graphs — giving a sound canonical form with a
//! search space of `Π |cell|!` instead of `k!`.
//!
//! The backtracking assigns positions `0..k` one vertex at a time; placing
//! position `p` fixes exactly the upper-triangle column `p` (bits
//! `p(p−1)/2 .. p(p+1)/2`), so partial codes are comparable per-column and
//! branches that fall lexicographically behind the incumbent are pruned.
//!
//! A [`CanonicalCache`] memoizes raw code → canonical code, which makes the
//! sampler's per-sample classification an amortized hash lookup (sampled
//! patterns repeat heavily).

use crate::Graphlet;
use std::collections::HashMap;

/// Computes the canonical representative and one certifying permutation
/// (`perm[i]` = canonical position of input vertex `i`).
pub fn canonical_form(g: &Graphlet) -> (Graphlet, Vec<u8>) {
    let k = g.k() as usize;
    if k == 1 {
        return (*g, vec![0]);
    }
    let cells = refine(g);
    // Positions 0..k take vertices cell by cell (cell order is invariant).
    let mut cell_of_position = Vec::with_capacity(k);
    for (ci, cell) in cells.iter().enumerate() {
        for _ in 0..cell.len() {
            cell_of_position.push(ci);
        }
    }
    let rows = g.rows();
    let mut search = Search {
        k,
        rows: &rows,
        cells: &cells,
        cell_of_position: &cell_of_position,
        used: 0,
        placed: Vec::with_capacity(k),
        best_bits: 0,
        best_perm: Vec::new(),
        have_best: false,
    };
    search.dfs(0, 0, true);
    let placed = search.best_perm;
    // placed[p] = input vertex at canonical position p; invert it.
    let mut perm = vec![0u8; k];
    for (p, &v) in placed.iter().enumerate() {
        perm[v as usize] = p as u8;
    }
    let canon = Graphlet::from_parts(g.k(), search.best_bits).expect("triangle bits");
    debug_assert_eq!(g.relabel(&perm), canon);
    (canon, perm)
}

/// 1-D WL refinement: returns the stable ordered partition as cells of
/// vertex ids; the cell order is derived from invariant signatures only.
fn refine(g: &Graphlet) -> Vec<Vec<u8>> {
    let k = g.k() as usize;
    let mut colors: Vec<u32> = (0..k).map(|i| g.degree(i as u8)).collect();
    loop {
        // Signature: (own color, sorted neighbor colors).
        let mut sigs: Vec<(u32, Vec<u32>)> = Vec::with_capacity(k);
        for i in 0..k {
            let mut nc: Vec<u32> = (0..k)
                .filter(|&j| g.edge(i as u8, j as u8))
                .map(|j| colors[j])
                .collect();
            nc.sort_unstable();
            sigs.push((colors[i], nc));
        }
        let mut sorted: Vec<&(u32, Vec<u32>)> = sigs.iter().collect();
        sorted.sort();
        sorted.dedup();
        let new_colors: Vec<u32> = sigs
            .iter()
            .map(|s| sorted.binary_search(&s).expect("present") as u32)
            .collect();
        if new_colors == colors {
            break;
        }
        colors = new_colors;
    }
    let num_cells = colors.iter().max().map(|&m| m as usize + 1).unwrap_or(0);
    let mut cells: Vec<Vec<u8>> = vec![Vec::new(); num_cells];
    for (i, &c) in colors.iter().enumerate() {
        cells[c as usize].push(i as u8);
    }
    cells.retain(|c| !c.is_empty());
    cells
}

struct Search<'a> {
    k: usize,
    rows: &'a [u16],
    cells: &'a [Vec<u8>],
    cell_of_position: &'a [usize],
    /// Bitmask of already-placed input vertices.
    used: u16,
    /// placed[p] = input vertex at canonical position p.
    placed: Vec<u8>,
    best_bits: u128,
    best_perm: Vec<u8>,
    have_best: bool,
}

impl Search<'_> {
    /// `partial` holds the bits of columns `< pos`; `tight` means the
    /// partial code equals the incumbent's prefix (only then can pruning
    /// apply).
    fn dfs(&mut self, pos: usize, partial: u128, tight: bool) {
        if pos == self.k {
            if !self.have_best || partial > self.best_bits {
                self.best_bits = partial;
                self.best_perm = self.placed.clone();
                self.have_best = true;
            }
            return;
        }
        let col_base = (pos * pos.saturating_sub(1) / 2) as u32;
        let best_col = if self.have_best {
            (self.best_bits >> col_base) & ((1u128 << pos) - 1)
        } else {
            0
        };
        for &v in &self.cells[self.cell_of_position[pos]] {
            if self.used >> v & 1 == 1 {
                continue;
            }
            // Column bits: edges from v to the already-placed positions.
            let mut col: u128 = 0;
            for (p, &u) in self.placed.iter().enumerate() {
                if self.rows[v as usize] >> u & 1 == 1 {
                    col |= 1 << p;
                }
            }
            let (child_tight, skip) = if tight && self.have_best {
                if col < best_col {
                    (false, true) // strictly behind the incumbent: prune
                } else {
                    (col == best_col, false)
                }
            } else {
                (false, false)
            };
            if skip {
                continue;
            }
            self.used |= 1 << v;
            self.placed.push(v);
            self.dfs(pos + 1, partial | (col << col_base), child_tight);
            self.placed.pop();
            self.used &= !(1 << v);
        }
    }
}

/// Memo cache from raw graphlet codes to canonical codes.
///
/// Samples are classified at a rate of 10⁴–10⁶ per second and the set of
/// distinct raw patterns is tiny compared to the sample count, so after
/// warm-up a classification is one hash probe.
#[derive(Default)]
pub struct CanonicalCache {
    map: HashMap<u128, u128>,
    hits: u64,
    misses: u64,
}

impl CanonicalCache {
    /// Creates an empty cache.
    pub fn new() -> CanonicalCache {
        CanonicalCache::default()
    }

    /// Canonical code of `g`, computing and memoizing on first sight.
    pub fn canonical_code(&mut self, g: &Graphlet) -> u128 {
        if let Some(&c) = self.map.get(&g.code()) {
            self.hits += 1;
            return c;
        }
        self.misses += 1;
        let c = g.canonical().code();
        self.map.insert(g.code(), c);
        c
    }

    /// `(hits, misses)` counters, for diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clique, cycle, path, star};

    fn random_perm(k: u8, rng: &mut impl rand::Rng) -> Vec<u8> {
        let mut p: Vec<u8> = (0..k).collect();
        for i in (1..k as usize).rev() {
            let j = rng.gen_range(0..=i);
            p.swap(i, j);
        }
        p
    }

    #[test]
    fn canonical_is_isomorphism_invariant() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for g in [
            path(6),
            cycle(6),
            star(7),
            clique(5),
            crate::Graphlet::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (2, 5)]),
        ] {
            let c0 = g.canonical();
            for _ in 0..50 {
                let perm = random_perm(g.k(), &mut rng);
                let h = g.relabel(&perm);
                assert_eq!(h.canonical(), c0, "not invariant for {g:?} perm {perm:?}");
            }
        }
    }

    #[test]
    fn canonical_is_idempotent() {
        for g in [path(5), cycle(7), star(6), clique(4)] {
            let c = g.canonical();
            assert_eq!(c.canonical(), c);
        }
    }

    #[test]
    fn distinguishes_non_isomorphic() {
        assert_ne!(path(4).canonical(), star(4).canonical());
        assert_ne!(cycle(5).canonical(), path(5).canonical());
        // Two 4-node graphs with degree sequence [2,2,1,1]: P4 vs triangle+pendant
        // have different sequences; use C4 vs K3+isolated-ish instead: both
        // degree-regular cases are covered above. Paw vs diamond:
        let paw = crate::Graphlet::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let diamond = crate::Graphlet::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)]);
        assert_ne!(paw.canonical(), diamond.canonical());
    }

    #[test]
    fn certifying_permutation_is_valid() {
        let g = crate::Graphlet::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let (c, perm) = canonical_form(&g);
        assert_eq!(g.relabel(&perm), c);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<u8>>());
    }

    #[test]
    fn regular_graphs_survive_symmetry() {
        // Highly symmetric inputs exercise the non-discrete-partition path.
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let petersen_ish = cycle(8);
        let c0 = petersen_ish.canonical();
        for _ in 0..30 {
            let perm = random_perm(8, &mut rng);
            assert_eq!(petersen_ish.relabel(&perm).canonical(), c0);
        }
        assert_eq!(clique(8).canonical(), clique(8));
    }

    #[test]
    fn cache_memoizes() {
        let mut cache = CanonicalCache::new();
        let g = cycle(6);
        let a = cache.canonical_code(&g);
        let b = cache.canonical_code(&g);
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
    }
}
