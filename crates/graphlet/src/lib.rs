//! Graphlets: small connected graphs on at most 16 nodes, packed in 128 bits.
//!
//! Motivo encodes each graphlet as its `k × k` symmetric adjacency matrix
//! reduced to the strict upper triangle and reshaped into a
//! `1 × k(k−1)/2` bit vector — at most 120 bits, fitting a `u128` (§3.3,
//! "Graphlets"). Before encoding, a graphlet is replaced by a canonical
//! representative of its isomorphism class; the paper uses Nauty, we use a
//! from-scratch canonicalizer ([`canon`]) based on 1-D Weisfeiler–Leman
//! refinement plus pruned backtracking.
//!
//! The crate also provides the spanning-tree machinery the samplers need:
//! Kirchhoff's matrix-tree determinant ([`kirchhoff`]) and the per-rooted-
//! treelet spanning counts `σ*` ([`spanning`]) computed by running the
//! build-up dynamic program on the graphlet itself with the identity
//! coloring (§3.3, "Spanning trees").

pub mod canon;
pub mod enumerate;
pub mod kirchhoff;
pub mod names;
pub mod registry;
pub mod spanning;

pub use canon::{canonical_form, CanonicalCache};
pub use enumerate::all_graphlets;
pub use names::name;
pub use registry::{GraphletInfo, GraphletRegistry};

/// Upper-triangle bit index of the unordered pair `(i, j)`, `i < j`:
/// column-major, `idx = j(j−1)/2 + i`. This is the paper's bijection between
/// vertex pairs and `{0, …, 119}`.
#[inline]
pub fn pair_index(i: u8, j: u8) -> u32 {
    debug_assert!(i < j && j < 16);
    (j as u32 * (j as u32 - 1)) / 2 + i as u32
}

/// A small simple graph on `k ≤ 16` labelled vertices, adjacency packed in a
/// `u128`. Not necessarily canonical; see [`canonical_form`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Graphlet {
    k: u8,
    bits: u128,
}

impl Graphlet {
    /// The empty graph on `k` vertices.
    pub fn empty(k: u8) -> Graphlet {
        assert!((1..=16).contains(&k));
        Graphlet { k, bits: 0 }
    }

    /// From an explicit edge list over vertices `0..k`.
    pub fn from_edges(k: u8, edges: &[(u8, u8)]) -> Graphlet {
        let mut g = Graphlet::empty(k);
        for &(a, b) in edges {
            g.set_edge(a, b);
        }
        g
    }

    /// From per-vertex adjacency bitmask rows (as produced by
    /// `Graph::induced_rows`): row `i` has bit `j` set iff `i ~ j`.
    pub fn from_rows(rows: &[u16]) -> Graphlet {
        let k = rows.len() as u8;
        let mut g = Graphlet::empty(k);
        for i in 0..k {
            for j in i + 1..k {
                if rows[i as usize] >> j & 1 == 1 {
                    g.set_edge(i, j);
                }
            }
        }
        g
    }

    /// From raw parts (validated: no bits beyond the triangle).
    pub fn from_parts(k: u8, bits: u128) -> Option<Graphlet> {
        if !(1..=16).contains(&k) {
            return None;
        }
        let max_bits = (k as u32 * (k as u32 - 1)) / 2;
        if max_bits < 128 && bits >> max_bits != 0 {
            return None;
        }
        Some(Graphlet { k, bits })
    }

    /// Number of vertices.
    #[inline]
    pub fn k(&self) -> u8 {
        self.k
    }

    /// The packed upper-triangle bits.
    #[inline]
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// A code identifying `(k, bits)` jointly: `k` in the top 8 bits (the
    /// triangle needs only 120). Two graphlets are identical iff their codes
    /// are.
    #[inline]
    pub fn code(&self) -> u128 {
        (self.k as u128) << 120 | self.bits
    }

    /// Inverse of [`Graphlet::code`].
    pub fn from_code(code: u128) -> Option<Graphlet> {
        Graphlet::from_parts((code >> 120) as u8, code & ((1u128 << 120) - 1))
    }

    /// Whether `i ~ j` (false for `i == j`).
    #[inline]
    pub fn edge(&self, i: u8, j: u8) -> bool {
        if i == j {
            return false;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.bits >> pair_index(a, b) & 1 == 1
    }

    /// Adds the edge `i ~ j`.
    #[inline]
    pub fn set_edge(&mut self, i: u8, j: u8) {
        assert!(i != j && i < self.k && j < self.k);
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.bits |= 1 << pair_index(a, b);
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Degree of vertex `i`.
    pub fn degree(&self, i: u8) -> u32 {
        (0..self.k).filter(|&j| self.edge(i, j)).count() as u32
    }

    /// Adjacency of vertex `i` as a bitmask over `0..k`.
    pub fn row(&self, i: u8) -> u16 {
        let mut r = 0u16;
        for j in 0..self.k {
            if self.edge(i, j) {
                r |= 1 << j;
            }
        }
        r
    }

    /// All rows at once.
    pub fn rows(&self) -> Vec<u16> {
        (0..self.k).map(|i| self.row(i)).collect()
    }

    /// Degree sequence, descending — a cheap isomorphism invariant.
    pub fn degree_sequence(&self) -> Vec<u32> {
        let mut d: Vec<u32> = (0..self.k).map(|i| self.degree(i)).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Whether the graphlet is connected (graphlets in the paper's sense
    /// always are; samples are connected by construction).
    pub fn is_connected(&self) -> bool {
        if self.k == 1 {
            return true;
        }
        let rows = self.rows();
        let mut seen: u16 = 1;
        let mut frontier: u16 = 1;
        while frontier != 0 {
            let mut next: u16 = 0;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= rows[v] & !seen;
            }
            seen |= next;
            frontier = next;
        }
        seen.count_ones() == self.k as u32
    }

    /// Relabels vertices: `perm[i]` is the new label of old vertex `i`.
    pub fn relabel(&self, perm: &[u8]) -> Graphlet {
        debug_assert_eq!(perm.len(), self.k as usize);
        let mut g = Graphlet::empty(self.k);
        for i in 0..self.k {
            for j in i + 1..self.k {
                if self.edge(i, j) {
                    g.set_edge(perm[i as usize], perm[j as usize]);
                }
            }
        }
        g
    }

    /// The canonical representative of this graphlet's isomorphism class.
    pub fn canonical(&self) -> Graphlet {
        canon::canonical_form(self).0
    }
}

impl std::fmt::Debug for Graphlet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graphlet(k={}, edges=[", self.k)?;
        let mut first = true;
        for j in 0..self.k {
            for i in 0..j {
                if self.edge(i, j) {
                    if !first {
                        write!(f, ",")?;
                    }
                    write!(f, "{i}-{j}")?;
                    first = false;
                }
            }
        }
        write!(f, "])")
    }
}

/// The k-clique.
pub fn clique(k: u8) -> Graphlet {
    let mut g = Graphlet::empty(k);
    for i in 0..k {
        for j in i + 1..k {
            g.set_edge(i, j);
        }
    }
    g
}

/// The k-path.
pub fn path(k: u8) -> Graphlet {
    let mut g = Graphlet::empty(k);
    for i in 1..k {
        g.set_edge(i - 1, i);
    }
    g
}

/// The k-cycle (`k ≥ 3`).
pub fn cycle(k: u8) -> Graphlet {
    assert!(k >= 3);
    let mut g = path(k);
    g.set_edge(k - 1, 0);
    g
}

/// The k-star (center 0).
pub fn star(k: u8) -> Graphlet {
    let mut g = Graphlet::empty(k);
    for i in 1..k {
        g.set_edge(0, i);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_is_a_bijection() {
        let mut seen = std::collections::HashSet::new();
        for j in 0..16u8 {
            for i in 0..j {
                let idx = pair_index(i, j);
                assert!(idx < 120);
                assert!(seen.insert(idx));
            }
        }
        assert_eq!(seen.len(), 120);
    }

    #[test]
    fn edges_and_degrees() {
        let g = cycle(5);
        assert_eq!(g.num_edges(), 5);
        for i in 0..5 {
            assert_eq!(g.degree(i), 2);
        }
        assert!(g.edge(0, 4) && g.edge(4, 0));
        assert!(!g.edge(0, 2));
        assert_eq!(g.degree_sequence(), vec![2, 2, 2, 2, 2]);
    }

    #[test]
    fn connectivity_bitset_bfs() {
        assert!(clique(7).is_connected());
        assert!(path(9).is_connected());
        let mut g = Graphlet::empty(4);
        g.set_edge(0, 1);
        g.set_edge(2, 3);
        assert!(!g.is_connected());
        assert!(Graphlet::empty(1).is_connected());
        assert!(!Graphlet::empty(2).is_connected());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = path(4);
        let perm = [3u8, 1, 0, 2];
        let h = g.relabel(&perm);
        assert_eq!(h.num_edges(), 3);
        // Edge 0-1 of g becomes 3-1, edge 1-2 becomes 1-0, edge 2-3 becomes 0-2.
        assert!(h.edge(3, 1) && h.edge(1, 0) && h.edge(0, 2));
    }

    #[test]
    fn code_roundtrip() {
        for g in [clique(6), path(5), star(8), cycle(4)] {
            assert_eq!(Graphlet::from_code(g.code()), Some(g));
        }
        assert!(Graphlet::from_parts(3, 0b1000).is_none()); // bit beyond triangle
        assert!(Graphlet::from_parts(0, 0).is_none());
    }

    #[test]
    fn from_rows_matches_edges() {
        let g = Graphlet::from_rows(&[0b0110, 0b0101, 0b0011, 0b0000]);
        assert!(g.edge(0, 1) && g.edge(0, 2) && g.edge(1, 2));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.k(), 4);
    }
}
