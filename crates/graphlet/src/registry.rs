//! The graphlet registry: canonical class ⇄ dense index, with the derived
//! quantities (spanning-tree count `σ`, rooted spanning shapes `σ*`) the
//! estimators need.
//!
//! The registry can be pre-populated by exhaustive enumeration (`k ≤ 7`) or
//! grown on demand as the sampler discovers new classes (`k ≥ 8`, where the
//! paper's >10⁴ classes are met only through samples). Derived quantities
//! are computed once per class; the paper likewise caches its `σ_ij` table
//! to disk because recomputing it dominated sampling start-up (§3.3).

use crate::canon::CanonicalCache;
use crate::kirchhoff::spanning_tree_count;
use crate::spanning::sigma_rooted;
use crate::{enumerate, Graphlet};
use motivo_treelet::TreeletFamily;
use std::collections::HashMap;

/// Everything the samplers need to know about one isomorphism class.
pub struct GraphletInfo {
    /// Canonical representative.
    pub graphlet: Graphlet,
    /// Kirchhoff spanning-tree count `σ`.
    pub spanning_trees: u128,
    /// `σ*(H, T_j)` per rooted k-treelet shape `j` (dense family index):
    /// rooted spanning copies of shape `T_j` over all roots.
    pub sigma_rooted: Vec<u64>,
}

/// Registry of k-graphlet classes with a memoized canonicalizer.
pub struct GraphletRegistry {
    k: u8,
    family: TreeletFamily,
    index: HashMap<u128, usize>,
    infos: Vec<GraphletInfo>,
    cache: CanonicalCache,
}

impl GraphletRegistry {
    /// An empty registry that discovers classes on demand.
    pub fn new(k: u8) -> GraphletRegistry {
        assert!((2..=16).contains(&k));
        GraphletRegistry {
            k,
            family: TreeletFamily::new(k as u32),
            index: HashMap::new(),
            infos: Vec::new(),
            cache: CanonicalCache::new(),
        }
    }

    /// A registry pre-populated with every connected k-graphlet (`k ≤ 7`).
    pub fn with_enumeration(k: u8) -> GraphletRegistry {
        let mut reg = GraphletRegistry::new(k);
        for g in enumerate::all_graphlets(k) {
            reg.insert_canonical(g);
        }
        reg
    }

    /// The graphlet size `k`.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// The rooted k-treelet family used for `σ*` indexing.
    pub fn family(&self) -> &TreeletFamily {
        &self.family
    }

    /// Number of classes currently known.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether no class has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Classifies an arbitrary (not necessarily canonical) graphlet,
    /// registering its class if new, and returns the dense class index.
    pub fn classify(&mut self, g: &Graphlet) -> usize {
        debug_assert_eq!(g.k(), self.k);
        let canon_code = self.cache.canonical_code(g);
        if let Some(&i) = self.index.get(&canon_code) {
            return i;
        }
        let canon = Graphlet::from_code(canon_code).expect("valid canonical code");
        self.insert_canonical(canon)
    }

    /// Classifies a canonical code that is already known, without mutating.
    pub fn lookup(&self, canon_code: u128) -> Option<usize> {
        self.index.get(&canon_code).copied()
    }

    /// Canonical code of `g` via the memo cache (no class registration).
    pub fn canonical_code(&mut self, g: &Graphlet) -> u128 {
        self.cache.canonical_code(g)
    }

    /// Registers a canonical representative (must be canonical), computing
    /// its derived quantities; returns its index.
    pub fn insert_canonical(&mut self, canon: Graphlet) -> usize {
        debug_assert_eq!(canon.canonical(), canon, "representative must be canonical");
        if let Some(&i) = self.index.get(&canon.code()) {
            return i;
        }
        let info = GraphletInfo {
            spanning_trees: spanning_tree_count(&canon),
            sigma_rooted: sigma_rooted(&canon, &self.family),
            graphlet: canon,
        };
        let i = self.infos.len();
        self.index.insert(canon.code(), i);
        self.infos.push(info);
        i
    }

    /// Class info by dense index.
    pub fn info(&self, i: usize) -> &GraphletInfo {
        &self.infos[i]
    }

    /// Iterates `(index, info)` over all known classes.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &GraphletInfo)> {
        self.infos.iter().enumerate()
    }

    /// Serializes the derived tables (`σ`, `σ*`) for all known classes —
    /// the paper's σ-cache: "motivo caches the σ_ij and stores them to
    /// disk for later reuse. In some cases (e.g. k = 8 on Facebook) this
    /// accelerates sampling by an order of magnitude" (§3.3).
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        let j = self.family.count(self.k as u32);
        let mut buf: Vec<u8> = Vec::with_capacity(24 + self.infos.len() * (32 + j * 8));
        buf.extend_from_slice(b"MTVS");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(self.k);
        buf.extend_from_slice(&(self.infos.len() as u64).to_le_bytes());
        for info in &self.infos {
            buf.extend_from_slice(&info.graphlet.code().to_le_bytes());
            buf.extend_from_slice(&info.spanning_trees.to_le_bytes());
            buf.extend_from_slice(&(info.sigma_rooted.len() as u32).to_le_bytes());
            for &s in &info.sigma_rooted {
                buf.extend_from_slice(&s.to_le_bytes());
            }
        }
        w.write_all(&buf)
    }

    /// Reconstructs a registry from a [`GraphletRegistry::save`] cache,
    /// skipping the σ recomputation (the expensive part for large k).
    pub fn load<R: std::io::Read>(mut r: R) -> std::io::Result<GraphletRegistry> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut raw = Vec::new();
        r.read_to_end(&mut raw)?;
        let take = |raw: &[u8], at: &mut usize, n: usize| -> std::io::Result<Vec<u8>> {
            if raw.len() < *at + n {
                return Err(bad("truncated sigma cache"));
            }
            let out = raw[*at..*at + n].to_vec();
            *at += n;
            Ok(out)
        };
        let mut at = 0usize;
        if take(&raw, &mut at, 4)? != b"MTVS" {
            return Err(bad("bad sigma cache magic"));
        }
        let ver = u32::from_le_bytes(take(&raw, &mut at, 4)?.try_into().unwrap());
        if ver != 1 {
            return Err(bad("unsupported sigma cache version"));
        }
        let k = take(&raw, &mut at, 1)?[0];
        if !(2..=16).contains(&k) {
            return Err(bad("bad k"));
        }
        let count = u64::from_le_bytes(take(&raw, &mut at, 8)?.try_into().unwrap()) as usize;
        let mut reg = GraphletRegistry::new(k);
        let expected_j = reg.family.count(k as u32);
        for _ in 0..count {
            let code = u128::from_le_bytes(take(&raw, &mut at, 16)?.try_into().unwrap());
            let spanning = u128::from_le_bytes(take(&raw, &mut at, 16)?.try_into().unwrap());
            let j = u32::from_le_bytes(take(&raw, &mut at, 4)?.try_into().unwrap()) as usize;
            if j != expected_j {
                return Err(bad("sigma vector arity mismatch"));
            }
            let mut sigma = Vec::with_capacity(j);
            for _ in 0..j {
                sigma.push(u64::from_le_bytes(
                    take(&raw, &mut at, 8)?.try_into().unwrap(),
                ));
            }
            let canon = Graphlet::from_code(code).ok_or_else(|| bad("bad graphlet code"))?;
            if canon.k() != k {
                return Err(bad("graphlet size mismatch"));
            }
            let i = reg.infos.len();
            reg.index.insert(code, i);
            reg.infos.push(GraphletInfo {
                graphlet: canon,
                spanning_trees: spanning,
                sigma_rooted: sigma,
            });
        }
        if at != raw.len() {
            return Err(bad("trailing bytes in sigma cache"));
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clique, cycle, path, star};

    #[test]
    fn enumerated_registry_has_all_classes() {
        let reg = GraphletRegistry::with_enumeration(5);
        assert_eq!(reg.len(), 21);
        for (_, info) in reg.iter() {
            assert!(info.graphlet.is_connected());
            assert!(info.spanning_trees >= 1);
            let total: u128 = info.sigma_rooted.iter().map(|&s| s as u128).sum();
            assert_eq!(total, 5 * info.spanning_trees);
        }
    }

    #[test]
    fn classify_is_isomorphism_stable() {
        let mut reg = GraphletRegistry::new(5);
        let a = reg.classify(&cycle(5));
        let relabeled = cycle(5).relabel(&[2, 4, 0, 3, 1]);
        let b = reg.classify(&relabeled);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        let c = reg.classify(&path(5));
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn sigma_cache_roundtrip() {
        let reg = GraphletRegistry::with_enumeration(5);
        let mut buf = Vec::new();
        reg.save(&mut buf).unwrap();
        let back = GraphletRegistry::load(&buf[..]).unwrap();
        assert_eq!(back.len(), reg.len());
        assert_eq!(back.k(), 5);
        for (i, info) in reg.iter() {
            let b = back.info(i);
            assert_eq!(b.graphlet, info.graphlet);
            assert_eq!(b.spanning_trees, info.spanning_trees);
            assert_eq!(b.sigma_rooted, info.sigma_rooted);
        }
        // Lookups still work after reload.
        let mut back = back;
        assert_eq!(
            back.classify(&cycle(5)),
            reg.lookup(cycle(5).canonical().code()).unwrap()
        );
        // Corruption rejected.
        assert!(GraphletRegistry::load(&buf[..buf.len() - 3]).is_err());
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(GraphletRegistry::load(&bad[..]).is_err());
    }

    #[test]
    fn on_demand_growth() {
        let mut reg = GraphletRegistry::new(6);
        assert!(reg.is_empty());
        reg.classify(&clique(6));
        reg.classify(&star(6));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.info(0).spanning_trees, 6u128.pow(4));
        assert_eq!(reg.info(1).spanning_trees, 1);
    }
}
