//! Enumeration of all connected k-graphlets up to isomorphism.
//!
//! Brute force over the `2^{k(k−1)/2}` upper-triangle masks with a
//! connectivity filter and canonical dedup. Practical for `k ≤ 7`
//! (2^21 masks); for `k = 8` the paper's 11 117 classes are discovered
//! on demand by the sampler's registry instead (the paper itself never
//! materializes them up front either).

use crate::{canonical_form, Graphlet};
use std::collections::BTreeSet;

/// All connected graphlets on exactly `k ≤ 7` nodes, as canonical
/// representatives in ascending code order.
///
/// Class counts (OEIS A001349): k = 1..7 → 1, 1, 2, 6, 21, 112, 853.
pub fn all_graphlets(k: u8) -> Vec<Graphlet> {
    assert!(
        (1..=7).contains(&k),
        "exhaustive enumeration supported for k ≤ 7"
    );
    if k == 1 {
        return vec![Graphlet::empty(1)];
    }
    let pairs = (k as u32) * (k as u32 - 1) / 2;
    let mut seen: BTreeSet<u128> = BTreeSet::new();
    for bits in 0u128..1u128 << pairs {
        // Connected graphs need at least k−1 edges; vertex 0 needs a neighbor.
        if bits.count_ones() < k as u32 - 1 {
            continue;
        }
        let g = Graphlet::from_parts(k, bits).expect("mask within triangle");
        if g.degree(0) == 0 || !g.is_connected() {
            continue;
        }
        let (canon, _) = canonical_form(&g);
        seen.insert(canon.code());
    }
    seen.into_iter()
        .map(|c| Graphlet::from_code(c).expect("valid canonical code"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_oeis() {
        assert_eq!(all_graphlets(1).len(), 1);
        assert_eq!(all_graphlets(2).len(), 1);
        assert_eq!(all_graphlets(3).len(), 2);
        assert_eq!(all_graphlets(4).len(), 6);
        assert_eq!(all_graphlets(5).len(), 21);
        assert_eq!(all_graphlets(6).len(), 112);
    }

    #[test]
    fn representatives_are_canonical_and_connected() {
        for g in all_graphlets(5) {
            assert!(g.is_connected());
            assert_eq!(g.canonical(), g);
        }
    }

    #[test]
    fn known_shapes_present() {
        let g5 = all_graphlets(5);
        for shape in [
            crate::clique(5),
            crate::path(5),
            crate::star(5),
            crate::cycle(5),
        ] {
            assert!(g5.contains(&shape.canonical()), "missing {shape:?}");
        }
    }
}
