//! Spanning-tree counting via Kirchhoff's matrix-tree theorem (§3.3).
//!
//! The number of spanning trees `σ` of a connected graph on `k` vertices is
//! the determinant of any `(k−1) × (k−1)` principal minor of its Laplacian.
//! We evaluate the determinant exactly over the integers with the Bareiss
//! fraction-free elimination (all intermediate divisions are exact), in
//! `O(k³)` as in the paper. For `k ≤ 16` the result is at most
//! `16^14 < 2^57`, comfortably inside `i128` at every step.

use crate::Graphlet;

/// Exact integer determinant by Bareiss fraction-free Gaussian elimination.
pub fn det_bareiss(mut m: Vec<Vec<i128>>) -> i128 {
    let n = m.len();
    if n == 0 {
        return 1;
    }
    let mut sign = 1i128;
    let mut prev = 1i128;
    for p in 0..n - 1 {
        if m[p][p] == 0 {
            // Pivot: find a row below with a nonzero entry in column p.
            match (p + 1..n).find(|&r| m[r][p] != 0) {
                Some(r) => {
                    m.swap(p, r);
                    sign = -sign;
                }
                None => return 0,
            }
        }
        for i in p + 1..n {
            for j in p + 1..n {
                // Exact by the Bareiss identity.
                m[i][j] = (m[i][j] * m[p][p] - m[i][p] * m[p][j]) / prev;
            }
            m[i][p] = 0;
        }
        prev = m[p][p];
    }
    sign * m[n - 1][n - 1]
}

/// Number of spanning trees of `g` (0 if disconnected, 1 for `k = 1`).
#[allow(clippy::needless_range_loop)] // index symmetry mirrors the matrix definition
pub fn spanning_tree_count(g: &Graphlet) -> u128 {
    let k = g.k() as usize;
    if k == 1 {
        return 1;
    }
    // Laplacian minor: drop the last row/column.
    let mut m = vec![vec![0i128; k - 1]; k - 1];
    for i in 0..k - 1 {
        m[i][i] = g.degree(i as u8) as i128;
        for j in 0..k - 1 {
            if i != j && g.edge(i as u8, j as u8) {
                m[i][j] = -1;
            }
        }
    }
    let d = det_bareiss(m);
    debug_assert!(d >= 0, "Laplacian minors are positive semidefinite");
    d as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clique, cycle, path, star, Graphlet};

    #[test]
    fn classic_counts() {
        // Cayley: sigma(K_k) = k^(k-2).
        assert_eq!(spanning_tree_count(&clique(3)), 3);
        assert_eq!(spanning_tree_count(&clique(4)), 16);
        assert_eq!(spanning_tree_count(&clique(5)), 125);
        assert_eq!(spanning_tree_count(&clique(7)), 16807);
        // Trees have exactly one spanning tree.
        assert_eq!(spanning_tree_count(&path(6)), 1);
        assert_eq!(spanning_tree_count(&star(9)), 1);
        // Cycles have k.
        assert_eq!(spanning_tree_count(&cycle(5)), 5);
        assert_eq!(spanning_tree_count(&cycle(12)), 12);
        // Singleton.
        assert_eq!(spanning_tree_count(&Graphlet::empty(1)), 1);
        // Disconnected graphs have none.
        assert_eq!(spanning_tree_count(&Graphlet::empty(3)), 0);
    }

    #[test]
    fn complete_bipartite_formula() {
        // sigma(K_{a,b}) = a^(b-1) * b^(a-1).
        let mut k23 = Graphlet::empty(5);
        for x in 0..2u8 {
            for y in 2..5u8 {
                k23.set_edge(x, y);
            }
        }
        assert_eq!(spanning_tree_count(&k23), 2u128.pow(2) * 3u128.pow(1));
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        for _ in 0..30 {
            let k = rng.gen_range(2..=6u8);
            let mut g = Graphlet::empty(k);
            for i in 0..k {
                for j in i + 1..k {
                    if rng.gen_bool(0.5) {
                        g.set_edge(i, j);
                    }
                }
            }
            assert_eq!(
                spanning_tree_count(&g),
                brute_force_spanning(&g),
                "mismatch on {g:?}"
            );
        }
    }

    /// Counts spanning trees by iterating every (k−1)-subset of edges.
    fn brute_force_spanning(g: &Graphlet) -> u128 {
        let k = g.k();
        let edges: Vec<(u8, u8)> = {
            let mut v = Vec::new();
            for i in 0..k {
                for j in i + 1..k {
                    if g.edge(i, j) {
                        v.push((i, j));
                    }
                }
            }
            v
        };
        if k == 1 {
            return 1;
        }
        let need = (k - 1) as u32;
        let mut count = 0u128;
        for mask in 0u32..1 << edges.len() {
            if mask.count_ones() != need {
                continue;
            }
            let sel: Vec<(u8, u8)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            if Graphlet::from_edges(k, &sel).is_connected() {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn bareiss_handles_pivoting() {
        // A matrix that needs a row swap at the first pivot.
        let m = vec![vec![0, 2, 1], vec![1, 0, 0], vec![3, 1, 1]];
        let m: Vec<Vec<i128>> = m.into_iter().map(|r| r.into_iter().collect()).collect();
        // Cofactor expansion along the first row: 0 − 2·(1·1−0·3) + 1·(1·1−0·3) = −1.
        assert_eq!(det_bareiss(m), -1);
    }
}
