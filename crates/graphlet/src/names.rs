//! Human-readable graphlet names.
//!
//! Small graphlets have established names in the motif literature (the
//! k ≤ 5 atlas); larger ones get a systematic description. Used by the CLI
//! and the examples so output reads "diamond" instead of a 120-bit hex
//! code.

use crate::{canonical_form, clique, cycle, path, star, Graphlet};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A name for the graphlet: an atlas name for the well-known classes, else
/// a systematic `k<k>-e<edges>-d<degree sequence>` descriptor.
pub fn name(g: &Graphlet) -> String {
    let canon = g.canonical();
    if let Some(n) = atlas().get(&canon.code()) {
        return (*n).to_string();
    }
    let degs: Vec<String> = canon.degree_sequence().iter().map(u32::to_string).collect();
    format!("k{}-e{}-d{}", canon.k(), canon.num_edges(), degs.join(""))
}

fn atlas() -> &'static HashMap<u128, &'static str> {
    static ATLAS: OnceLock<HashMap<u128, &'static str>> = OnceLock::new();
    ATLAS.get_or_init(|| {
        let mut m: HashMap<u128, &'static str> = HashMap::new();
        let mut put = |g: Graphlet, n: &'static str| {
            m.insert(canonical_form(&g).0.code(), n);
        };
        // k = 2, 3.
        put(path(2), "edge");
        put(path(3), "path-3");
        put(clique(3), "triangle");
        // k = 4.
        put(path(4), "path-4");
        put(star(4), "star-4");
        put(cycle(4), "4-cycle");
        put(clique(4), "4-clique");
        put(
            Graphlet::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]),
            "paw",
        );
        put(
            Graphlet::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)]),
            "diamond",
        );
        // k = 5 (the 21-graphlet atlas; common names).
        put(path(5), "path-5");
        put(star(5), "star-5");
        put(cycle(5), "5-cycle");
        put(clique(5), "5-clique");
        put(
            Graphlet::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]),
            "fork", // a.k.a. chair without the seat edge
        );
        put(
            Graphlet::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]),
            "house",
        );
        put(
            Graphlet::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (4, 0)]),
            "cricket",
        );
        put(
            Graphlet::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)]),
            "tadpole",
        );
        put(
            Graphlet::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (0, 4), (3, 4)]),
            "butterfly",
        );
        put(
            Graphlet::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 4), (2, 4)]),
            "gem",
        );
        put(
            Graphlet::from_edges(5, &[(0, 1), (1, 2), (2, 0), (1, 3), (2, 3), (0, 4)]),
            "bull",
        );
        m
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_names_are_isomorphism_invariant() {
        let tri = clique(3);
        assert_eq!(name(&tri), "triangle");
        assert_eq!(name(&tri.relabel(&[2, 0, 1])), "triangle");
        assert_eq!(name(&path(4)), "path-4");
        assert_eq!(name(&star(5)), "star-5");
        assert_eq!(name(&cycle(4)), "4-cycle");
        assert_eq!(name(&clique(5)), "5-clique");
        let paw = Graphlet::from_edges(4, &[(1, 2), (2, 3), (3, 1), (1, 0)]);
        assert_eq!(name(&paw), "paw");
    }

    #[test]
    fn systematic_fallback() {
        // A 6-node shape without an atlas name.
        let g = Graphlet::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let n = name(&g);
        assert!(n.starts_with("k6-e7-d"), "{n}");
        // Deterministic under relabeling.
        assert_eq!(n, name(&g.relabel(&[3, 1, 5, 0, 2, 4])));
    }

    #[test]
    fn named_classes_are_distinct() {
        let names: Vec<String> = [
            name(&path(5)),
            name(&star(5)),
            name(&cycle(5)),
            name(&clique(5)),
            name(&Graphlet::from_edges(
                5,
                &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)],
            )),
            name(&Graphlet::from_edges(
                5,
                &[(0, 1), (1, 2), (2, 0), (1, 3), (2, 3), (0, 4)],
            )),
        ]
        .to_vec();
        let mut uniq = names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len(), "{names:?}");
    }
}
