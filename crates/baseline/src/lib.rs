//! `cc-baseline` — a faithful Rust port of the internals of **CC**, the
//! color-coding counter of Bressan et al. (WSDM'17 / TKDD'18) that Motivo
//! §3.1 describes and measures against:
//!
//! * every colored treelet has a **unique representative instance**, a
//!   pointer-based tree structure plus a color set; the "pointer" (here an
//!   arena id) is its identifier;
//! * per-vertex counts live in **hash tables keyed by that pointer**, so
//!   every check-and-merge dereferences representatives and recurses over
//!   heap nodes;
//! * counts are **64-bit** (the overflow-prone choice the paper calls out);
//! * no 0-rooting: size-k treelets are counted at *every* rooting;
//! * sampling selects treelets by iterating the hash table (no cumulative
//!   records, no alias per shape, no neighbor buffering).
//!
//! This is the "original" series in Figs. 2–4 and the CC column of the
//! §5.1 tables. It intentionally allocates and recurses where motivo does
//! bit arithmetic — that contrast *is* the experiment. The port is
//! validated against motivo's engine record-for-record (with motivo's
//! optimizations disabled) in this crate's tests.

pub mod build;
pub mod sample;
pub mod treelet;

pub use build::{cc_build, CcBuild, CcStats};
pub use sample::CcSampler;
pub use treelet::{Arena, CcTreelet, TreeNode};
