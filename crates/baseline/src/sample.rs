//! CC's sampling phase: the same multi-stage sampling as §2.2, implemented
//! the way CC stores its state — hash-table iteration to select treelets,
//! recursive representative comparisons during embedding, no cumulative
//! records, no per-shape alias tables, no neighbor buffering.

use crate::build::CcBuild;
use crate::treelet::TreeNode;
use motivo_graph::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Draws colorful treelet copies from CC's tables.
pub struct CcSampler<'a> {
    build: &'a CcBuild,
    g: &'a Graph,
    /// Cumulative rooted totals per vertex for the root draw (binary
    /// search; CC has no alias table here).
    root_cum: Vec<u64>,
    total: u64,
    rng: SmallRng,
}

impl<'a> CcSampler<'a> {
    /// Prepares a sampler (O(n) cumulative scan).
    pub fn new(build: &'a CcBuild, g: &'a Graph, seed: u64) -> CcSampler<'a> {
        let mut root_cum = Vec::with_capacity(g.num_nodes() as usize);
        let mut acc = 0u64;
        for v in 0..g.num_nodes() {
            acc += build.occ(v);
            root_cum.push(acc);
        }
        assert!(acc > 0, "empty urn");
        CcSampler {
            build,
            g,
            root_cum,
            total: acc,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Total rooted colorful k-treelets (k × the copy count).
    pub fn total_rooted(&self) -> u64 {
        self.total
    }

    /// Draws one colorful k-treelet copy uniformly at random; returns its
    /// vertex set.
    pub fn sample_copy(&mut self) -> Vec<u32> {
        // Root: binary search in the cumulative array.
        let r = self.rng.gen_range(1..=self.total);
        let v = self.root_cum.partition_point(|&c| c < r) as u32;
        // Treelet: linear hash-table iteration, as CC must.
        let table = &self.build.tables[self.build.k as usize - 1][v as usize];
        let occ: u64 = self.build.occ(v);
        let mut r2 = self.rng.gen_range(1..=occ);
        let mut chosen = None;
        for (&id, &c) in table {
            if r2 <= c {
                chosen = Some(id);
                break;
            }
            r2 -= c;
        }
        let id = chosen.expect("r2 within occ");
        let mut out = Vec::with_capacity(self.build.k as usize);
        self.embed(v, id, &mut out);
        debug_assert_eq!(out.len(), self.build.k as usize);
        out
    }

    fn embed(&mut self, v: u32, id: u32, out: &mut Vec<u32>) {
        if self.build.arena.size(id) == 1 {
            out.push(v);
            return;
        }
        let (rest_shape, first_shape) = self
            .build
            .arena
            .decomp_shape(id)
            .expect("non-singleton decomposes");
        let colors = self.build.arena.get(id).colors;
        let h1 = rest_shape.size();
        let h2 = first_shape.size();

        // Sweep 1: totals per C'' over neighbors (recursive shape compares
        // on every entry — the cost motivo's sorted records avoid).
        let mut second_totals: HashMap<u16, u64> = HashMap::new();
        for &u in self.g.neighbors(v) {
            for (&id2, &c2) in &self.build.tables[h2 as usize - 1][u as usize] {
                let t2 = self.build.arena.get(id2);
                if t2.colors & !colors == 0 && shape_eq(&t2.tree, &first_shape) {
                    *second_totals.entry(t2.colors).or_insert(0) += c2;
                }
            }
        }
        // Candidates (C', id1) from v's table.
        let mut cands: Vec<(u32, u16, u64)> = Vec::new();
        let mut total = 0u64;
        for (&id1, &c1) in &self.build.tables[h1 as usize - 1][v as usize] {
            let t1 = self.build.arena.get(id1);
            if t1.colors & !colors != 0 || !shape_eq(&t1.tree, &rest_shape) {
                continue;
            }
            let c_second = colors & !t1.colors;
            if let Some(&su) = second_totals.get(&c_second) {
                if su > 0 {
                    let w = c1 * su;
                    total += w;
                    cands.push((id1, c_second, w));
                }
            }
        }
        assert!(total > 0, "consistency: positive counts have a split");
        let mut r = self.rng.gen_range(1..=total);
        let &(id1, c_second, _) = cands
            .iter()
            .find(|&&(_, _, w)| {
                if r <= w {
                    true
                } else {
                    r -= w;
                    false
                }
            })
            .expect("r within total");

        // Sweep 2: pick u (and its entry) by prefix sums over c''-matching
        // entries.
        let su = second_totals[&c_second];
        let mut r2 = self.rng.gen_range(1..=su);
        let mut chosen: Option<(u32, u32)> = None;
        'outer: for &u in self.g.neighbors(v) {
            for (&id2, &c2) in &self.build.tables[h2 as usize - 1][u as usize] {
                let t2 = self.build.arena.get(id2);
                if t2.colors == c_second && shape_eq(&t2.tree, &first_shape) {
                    if r2 <= c2 {
                        chosen = Some((u, id2));
                        break 'outer;
                    }
                    r2 -= c2;
                }
            }
        }
        let (u, id2) = chosen.expect("r2 within su");
        self.embed(v, id1, out);
        self.embed(u, id2, out);
    }
}

fn shape_eq(a: &TreeNode, b: &TreeNode) -> bool {
    a.cmp_euler(b) == std::cmp::Ordering::Equal
}

/// CC's count estimator: with `S` samples of which `χ_i` hit graphlet `i`
/// (σ_i spanning trees), total rooted treelets `t_rooted`, and colorful
/// probability `p_k`: `ĝ_i = (χ_i/S) · t_rooted/(k σ_i) / p_k`.
pub fn cc_estimate(
    occurrences: u64,
    samples: u64,
    t_rooted: u64,
    k: u32,
    sigma: u128,
    p_k: f64,
) -> f64 {
    occurrences as f64 / samples as f64 * t_rooted as f64 / (k as f64 * sigma as f64) / p_k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::cc_build;
    use motivo_graph::{generators, Coloring};

    #[test]
    fn samples_are_valid() {
        let g = generators::complete_graph(6);
        let coloring = Coloring::uniform(&g, 4, 3);
        let cc = cc_build(&g, &coloring, 4);
        let mut s = CcSampler::new(&cc, &g, 9);
        for _ in 0..100 {
            let verts = s.sample_copy();
            assert_eq!(verts.len(), 4);
            let mut sorted = verts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "vertices must be distinct");
        }
    }

    #[test]
    fn estimator_recovers_triangles_on_k5() {
        // Average over colorings; every sample is a triangle on K5 at k=3.
        let g = generators::complete_graph(5);
        let mut acc = 0.0;
        let runs = 100;
        let mut ok_runs = 0;
        for seed in 0..runs {
            let coloring = Coloring::uniform(&g, 3, seed);
            let cc = cc_build(&g, &coloring, 3);
            if cc.total_rooted() == 0 {
                ok_runs += 1; // zero estimate, still unbiased
                continue;
            }
            let s = CcSampler::new(&cc, &g, seed + 7);
            // Single class: χ/S = 1 exactly.
            acc += cc_estimate(100, 100, s.total_rooted(), 3, 3, coloring.p_colorful());
            ok_runs += 1;
        }
        let avg = acc / ok_runs as f64;
        assert!(
            (avg - 10.0).abs() < 1.5,
            "CC triangle estimate {avg}, want 10"
        );
    }

    #[test]
    fn distribution_matches_motivo_sampler() {
        // Tally sampled vertex sets from both implementations on the same
        // coloring; the empirical distributions must agree.
        let g = generators::erdos_renyi(30, 70, 3);
        let coloring = Coloring::uniform(&g, 3, 5);
        let cc = cc_build(&g, &coloring, 3);
        let mut cs = CcSampler::new(&cc, &g, 1);

        let cfg = motivo_core::BuildConfig {
            threads: 1,
            zero_rooting: true,
            coloring: motivo_core::ColoringSpec::Fixed(
                (0..g.num_nodes()).map(|v| coloring.color(v)).collect(),
            ),
            ..motivo_core::BuildConfig::new(3)
        };
        let urn = motivo_core::build_urn(&g, &cfg).unwrap();
        let mut ms = motivo_core::Sampler::new(&urn, motivo_core::SampleConfig::seeded(2));

        let trials = 40_000;
        let mut tally_cc: HashMap<Vec<u32>, u64> = HashMap::new();
        let mut tally_mt: HashMap<Vec<u32>, u64> = HashMap::new();
        for _ in 0..trials {
            let mut a = cs.sample_copy();
            a.sort_unstable();
            *tally_cc.entry(a).or_insert(0) += 1;
            let mut b = ms.sample_copy();
            b.sort_unstable();
            *tally_mt.entry(b).or_insert(0) += 1;
        }
        // Same support…
        let mut keys: Vec<&Vec<u32>> = tally_cc.keys().collect();
        keys.extend(tally_mt.keys());
        keys.sort();
        keys.dedup();
        // …and similar masses.
        for key in keys {
            let fa = tally_cc.get(key).copied().unwrap_or(0) as f64 / trials as f64;
            let fb = tally_mt.get(key).copied().unwrap_or(0) as f64 / trials as f64;
            assert!(
                (fa - fb).abs() < 0.02,
                "copy {key:?}: CC {fa:.4} vs motivo {fb:.4}"
            );
        }
    }
}
