//! CC's pointer-based treelet representatives (§3.1, "The internals of CC").

use motivo_treelet::{ColorSet, ColoredTreelet, Treelet};
use std::collections::HashMap;

/// A heap-allocated rooted tree; children are kept sorted ascending in the
/// treelet order (compared through their DFS strings, recursively
/// materialized — the expensive part CC pays on every comparison).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TreeNode {
    /// Child subtrees in canonical (ascending) order.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// A single node.
    pub fn leaf() -> TreeNode {
        TreeNode {
            children: Vec::new(),
        }
    }

    /// Number of nodes (recursive walk — no O(1) popcount here).
    pub fn size(&self) -> u32 {
        1 + self.children.iter().map(TreeNode::size).sum::<u32>()
    }

    /// The DFS (Euler) bitstring, materialized as bytes; this is what CC
    /// effectively recomputes when it orders or compares representatives.
    pub fn euler(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.fill_euler(&mut out);
        out
    }

    fn fill_euler(&self, out: &mut Vec<u8>) {
        for c in &self.children {
            out.push(1);
            c.fill_euler(out);
            out.push(0);
        }
    }

    /// Treelet-order comparison via materialized strings.
    pub fn cmp_euler(&self, other: &TreeNode) -> std::cmp::Ordering {
        // Zero-padded lexicographic comparison = the succinct integer order.
        let (a, b) = (self.euler(), other.euler());
        let n = a.len().max(b.len());
        for i in 0..n {
            let x = a.get(i).copied().unwrap_or(0);
            let y = b.get(i).copied().unwrap_or(0);
            match x.cmp(&y) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// `β_T`: leading children isomorphic to the first.
    pub fn beta(&self) -> u64 {
        let first = match self.children.first() {
            Some(f) => f,
            None => return 1,
        };
        let mut b = 0;
        for c in &self.children {
            if c.cmp_euler(first) == std::cmp::Ordering::Equal {
                b += 1;
            } else {
                break;
            }
        }
        b
    }
}

/// A colored treelet representative: tree structure plus color set.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CcTreelet {
    /// The pointer-based shape.
    pub tree: TreeNode,
    /// The color set (characteristic vector, as CC stores alongside).
    pub colors: u16,
}

/// Interning arena: every distinct colored treelet gets one representative
/// instance; ids play the role of CC's pointers.
#[derive(Default)]
pub struct Arena {
    items: Vec<CcTreelet>,
    intern: HashMap<(Vec<u8>, u16), u32>,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Number of distinct representatives.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The representative behind an id.
    pub fn get(&self, id: u32) -> &CcTreelet {
        &self.items[id as usize]
    }

    /// Number of nodes of a representative.
    pub fn size(&self, id: u32) -> u32 {
        self.get(id).tree.size()
    }

    /// Interns (or finds) the singleton of one color.
    pub fn singleton(&mut self, color: u8) -> u32 {
        self.intern_treelet(CcTreelet {
            tree: TreeNode::leaf(),
            colors: 1 << color,
        })
    }

    fn intern_treelet(&mut self, t: CcTreelet) -> u32 {
        let key = (t.tree.euler(), t.colors);
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = self.items.len() as u32;
        self.intern.insert(key, id);
        self.items.push(t);
        id
    }

    /// CC's check-and-merge: try to extend `t1` (the `T'` rooted at `v`)
    /// with `t2` (the `T''` at a neighbor) into a treelet on at most
    /// `max_k` nodes whose unique decomposition is `(t1, t2)`. Recursive
    /// pointer-chasing on the representative structures; returns the merged
    /// id on success.
    pub fn check_and_merge(&mut self, t1: u32, t2: u32, max_k: u32) -> Option<u32> {
        let a = self.get(t1);
        let b = self.get(t2);
        // Color check.
        if a.colors & b.colors != 0 {
            return None;
        }
        // Size check.
        if a.tree.size() + b.tree.size() > max_k {
            return None;
        }
        // Canonicality: T'' must come no later than T''s future sibling,
        // the first child of T'.
        if let Some(first) = a.tree.children.first() {
            if b.tree.cmp_euler(first) == std::cmp::Ordering::Greater {
                return None;
            }
        }
        let mut merged = a.tree.clone();
        merged.children.insert(0, b.tree.clone());
        let colors = a.colors | b.colors;
        Some(self.intern_treelet(CcTreelet {
            tree: merged,
            colors,
        }))
    }

    /// Unique decomposition of a non-singleton shape: `(T', T'')` with
    /// `T''` the first child. Colors are *not* split here (the split is a
    /// sampling-time choice); both halves are returned as bare shapes with
    /// empty color sets interned on demand by the sampler.
    pub fn decomp_shape(&self, id: u32) -> Option<(TreeNode, TreeNode)> {
        let t = &self.get(id).tree;
        let first = t.children.first()?.clone();
        let mut rest = t.clone();
        rest.children.remove(0);
        Some((rest, first))
    }

    /// Converts a representative to motivo's succinct encoding — used only
    /// by the cross-validation tests, never by CC's own hot path.
    pub fn to_succinct(&self, id: u32) -> ColoredTreelet {
        let t = self.get(id);
        ColoredTreelet::new(tree_to_succinct(&t.tree), ColorSet(t.colors))
    }

    /// Approximate heap bytes held by representatives and the intern map —
    /// the table-size accounting of the §5.1 comparison.
    pub fn byte_size(&self) -> usize {
        self.items
            .iter()
            .map(|t| tree_bytes(&t.tree) + 2)
            .sum::<usize>()
            + self.intern.len() * (std::mem::size_of::<(Vec<u8>, u16)>() + 8)
    }
}

fn tree_bytes(t: &TreeNode) -> usize {
    std::mem::size_of::<TreeNode>() + t.children.iter().map(tree_bytes).sum::<usize>()
}

fn tree_to_succinct(t: &TreeNode) -> Treelet {
    // Children are sorted ascending; merge wants largest first.
    let mut acc = Treelet::SINGLETON;
    for c in t.children.iter().rev() {
        let ct = tree_to_succinct(c);
        acc = acc.merge(ct).expect("sorted children are canonical");
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_merge() {
        let mut a = Arena::new();
        let s0 = a.singleton(0);
        let s1 = a.singleton(1);
        let s0_again = a.singleton(0);
        assert_eq!(s0, s0_again);
        let edge = a.check_and_merge(s0, s1, 4).unwrap();
        assert_eq!(a.size(edge), 2);
        // Color clash rejected.
        assert!(a.check_and_merge(s0, s0, 4).is_none());
    }

    #[test]
    fn canonicality_enforced_like_succinct() {
        let mut a = Arena::new();
        let s0 = a.singleton(0);
        let s1 = a.singleton(1);
        let s2 = a.singleton(2);
        let edge01 = a.check_and_merge(s0, s1, 4).unwrap();
        let edge12 = a.check_and_merge(s1, s2, 4).unwrap();
        // Attaching a chain as first child of an edge-rooted tree is not
        // canonical (chain > leaf), exactly like the succinct encoding.
        assert!(a.check_and_merge(edge01, edge12, 4).is_none());
        // But leaf onto chain works.
        let s3 = a.singleton(3);
        let p3 = a.check_and_merge(s3, edge01, 4).unwrap();
        assert_eq!(a.size(p3), 3);
    }

    #[test]
    fn succinct_conversion_matches() {
        let mut a = Arena::new();
        let s0 = a.singleton(0);
        let s1 = a.singleton(1);
        let s2 = a.singleton(2);
        let edge = a.check_and_merge(s0, s1, 4).unwrap();
        let star3 = a.check_and_merge(edge, s2, 4).unwrap();
        let ct = a.to_succinct(star3);
        assert_eq!(ct.tree(), motivo_treelet::star_treelet(3));
        assert_eq!(ct.colors().0, 0b0111);
    }

    #[test]
    fn beta_matches_succinct() {
        let mut a = Arena::new();
        let ids: Vec<u32> = (0..4).map(|c| a.singleton(c)).collect();
        let mut star = ids[0];
        for &leaf in &ids[1..] {
            star = a.check_and_merge(star, leaf, 5).unwrap();
        }
        assert_eq!(a.get(star).tree.beta(), 3);
        assert_eq!(a.to_succinct(star).tree().beta(), 3);
    }

    #[test]
    fn euler_order_is_zero_padded() {
        // leaf < edge-subtree, and prefix handling matches integer order.
        let leaf = TreeNode::leaf();
        let chain = TreeNode {
            children: vec![TreeNode::leaf()],
        };
        assert_eq!(leaf.cmp_euler(&chain), std::cmp::Ordering::Less);
        assert_eq!(chain.cmp_euler(&chain), std::cmp::Ordering::Equal);
    }
}
