//! CC's build-up phase: the same dynamic program as motivo's engine, but
//! over pointer representatives and per-vertex hash tables, with 64-bit
//! counts and no 0-rooting — the baseline configuration of Figs. 2–4.

use crate::treelet::Arena;
use motivo_graph::{Coloring, Graph};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Build metrics mirroring `motivo_core::BuildStats` for the comparisons.
#[derive(Clone, Debug, Default)]
pub struct CcStats {
    /// Total wall-clock of the DP.
    pub total: Duration,
    /// Wall-clock spent inside check-and-merge pair iteration (Fig. 2).
    pub merge_time: Duration,
    /// Check-and-merge operations performed.
    pub merge_ops: u64,
    /// Approximate heap bytes of the tables plus representatives — the
    /// memory-footprint side of the §5.1 size table (CC's footprint was
    /// measured as JVM heap; we count hash-table entries at 128 bits/pair
    /// plus overhead, as the paper describes).
    pub table_bytes: usize,
}

/// The finished CC tables: `tables[h-1][v]` maps treelet id → 64-bit count.
pub struct CcBuild {
    /// Representative arena ("pointers").
    pub arena: Arena,
    /// Per-size, per-vertex hash tables.
    pub tables: Vec<Vec<HashMap<u32, u64>>>,
    /// Graphlet size.
    pub k: u32,
    /// Metrics.
    pub stats: CcStats,
}

/// Runs CC's build-up phase (single-threaded; experiments compare against
/// motivo configured with one thread, see EXPERIMENTS.md).
pub fn cc_build(g: &Graph, coloring: &Coloring, k: u32) -> CcBuild {
    assert!((2..=16).contains(&k));
    let n = g.num_nodes() as usize;
    let start = Instant::now();
    let mut arena = Arena::new();
    let mut tables: Vec<Vec<HashMap<u32, u64>>> = Vec::with_capacity(k as usize);
    let mut merge_time = Duration::ZERO;
    let mut merge_ops = 0u64;

    // Level 1.
    let mut level1: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
    for (v, map) in level1.iter_mut().enumerate() {
        let id = arena.singleton(coloring.color(v as u32));
        map.insert(id, 1);
    }
    tables.push(level1);

    for h in 2..=k {
        let mut level: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        for v in 0..n as u32 {
            let mut acc: HashMap<u32, u64> = HashMap::new();
            let m_start = Instant::now();
            for &u in g.neighbors(v) {
                for h1 in 1..h {
                    let h2 = h - h1;
                    // Hash-table iteration with pointer dereferencing on
                    // every pair — CC's hot loop.
                    let vt: Vec<(u32, u64)> = tables[h1 as usize - 1][v as usize]
                        .iter()
                        .map(|(&id, &c)| (id, c))
                        .collect();
                    for (id1, c1) in vt {
                        let ut: Vec<(u32, u64)> = tables[h2 as usize - 1][u as usize]
                            .iter()
                            .map(|(&id, &c)| (id, c))
                            .collect();
                        for (id2, c2) in ut {
                            merge_ops += 1;
                            if let Some(merged) = arena.check_and_merge(id1, id2, k) {
                                // 64-bit counts, wrapping like CC's
                                // overflow behaviour.
                                *acc.entry(merged).or_insert(0) = acc
                                    .get(&merged)
                                    .copied()
                                    .unwrap_or(0)
                                    .wrapping_add(c1.wrapping_mul(c2));
                            }
                        }
                    }
                }
            }
            merge_time += m_start.elapsed();
            // Divide by β (Eq. 1).
            for (&id, count) in acc.iter_mut() {
                let beta = arena.get(id).tree.beta();
                debug_assert_eq!(*count % beta, 0);
                *count /= beta;
            }
            acc.retain(|_, c| *c > 0);
            level[v as usize] = acc;
        }
        tables.push(level);
    }

    // 128 bits per pair (64-bit pointer key + 64-bit count) plus hash
    // overhead, as §3.1 accounts for CC.
    let pairs: usize = tables.iter().flatten().map(HashMap::len).sum();
    let table_bytes = pairs * 16 * 2 + arena.byte_size();
    CcBuild {
        arena,
        tables,
        k,
        stats: CcStats {
            total: start.elapsed(),
            merge_time,
            merge_ops,
            table_bytes,
        },
    }
}

impl CcBuild {
    /// Total rooted colorful k-treelet count at `v` (no 0-rooting: every
    /// copy appears at each of its k rootings).
    pub fn occ(&self, v: u32) -> u64 {
        self.tables[self.k as usize - 1][v as usize].values().sum()
    }

    /// Sum of `occ(v)` over all vertices (`k ×` the number of copies).
    pub fn total_rooted(&self) -> u64 {
        (0..self.tables[0].len() as u32).map(|v| self.occ(v)).sum()
    }

    /// Count-table pairs stored.
    pub fn num_pairs(&self) -> usize {
        self.tables.iter().flatten().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_core::build::{build_table, BuildConfig};
    use motivo_graph::generators;
    use motivo_table::storage::StorageKind;

    /// The CC port and motivo's engine must produce identical tables when
    /// motivo's optimizations are disabled (no 0-rooting) — strong mutual
    /// validation of two independent implementations.
    fn assert_equivalent(g: &Graph, k: u32, seed: u64) {
        let coloring = Coloring::uniform(g, k, seed);
        let cc = cc_build(g, &coloring, k);
        let cfg = BuildConfig {
            zero_rooting: false,
            threads: 1,
            storage: StorageKind::Memory,
            ..BuildConfig::new(k)
        };
        let (mt, _) = build_table(g, &coloring, &cfg).unwrap();
        for v in 0..g.num_nodes() {
            for h in 1..=k {
                let mut cc_pairs: Vec<(u64, u128)> = cc.tables[h as usize - 1][v as usize]
                    .iter()
                    .map(|(&id, &c)| (cc.arena.to_succinct(id).code(), c as u128))
                    .collect();
                cc_pairs.sort_unstable();
                let mt_pairs: Vec<(u64, u128)> = mt
                    .get(h, v)
                    .unwrap()
                    .iter()
                    .map(|(ct, c)| (ct.code(), c))
                    .collect();
                assert_eq!(cc_pairs, mt_pairs, "vertex {v} size {h}");
            }
        }
    }

    #[test]
    fn equivalent_on_cliques_and_paths() {
        assert_equivalent(&generators::complete_graph(6), 4, 0);
        assert_equivalent(&generators::path_graph(10), 3, 1);
        assert_equivalent(&generators::cycle_graph(9), 4, 2);
    }

    #[test]
    fn equivalent_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(40, 100, seed);
            assert_equivalent(&g, 4, seed);
        }
        assert_equivalent(&generators::barabasi_albert(60, 3, 7), 5, 3);
    }

    #[test]
    fn stats_populated() {
        // A rainbow-guaranteed coloring avoids the (quite likely on 7
        // vertices) event that a uniform coloring misses a color entirely.
        let g = generators::complete_graph(8);
        let coloring = Coloring::fixed(vec![0, 1, 2, 3, 0, 1, 2, 3], 4);
        let cc = cc_build(&g, &coloring, 4);
        assert!(cc.stats.merge_ops > 0);
        assert!(cc.stats.table_bytes > 0);
        assert!(cc.num_pairs() > 0);
        assert!(cc.total_rooted() > 0);
    }

    #[test]
    fn no_zero_rooting_means_k_rootings() {
        // On K4 with a rainbow coloring: 16 spanning trees of K4, each a
        // colorful 4-treelet; rooted at each of the 4 vertices → 64 rooted
        // counts.
        let g = generators::complete_graph(4);
        let coloring = Coloring::fixed(vec![0, 1, 2, 3], 4);
        let cc = cc_build(&g, &coloring, 4);
        assert_eq!(cc.total_rooted(), 64);
    }
}
