//! Criterion benchmark of the build-up phase (Figs. 3/4/7 time series):
//! motivo vs the CC port, plus the 0-rooting ablation.
//!
//! ```sh
//! cargo bench -p motivo-bench --bench build
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motivo_core::{build_urn, BuildConfig};
use motivo_graph::{generators, Coloring};

fn bench_build(c: &mut Criterion) {
    let g = generators::barabasi_albert(1_000, 3, 1);
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for k in [4u32, 5] {
        group.bench_with_input(BenchmarkId::new("motivo", k), &k, |b, &k| {
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(k)
            }
            .seed(3);
            b.iter(|| build_urn(&g, &cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("motivo-no-0root", k), &k, |b, &k| {
            let cfg = BuildConfig {
                threads: 1,
                zero_rooting: false,
                ..BuildConfig::new(k)
            }
            .seed(3);
            b.iter(|| build_urn(&g, &cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cc-port", k), &k, |b, &k| {
            let coloring = Coloring::uniform(&g, k, 3);
            b.iter(|| cc_baseline::cc_build(&g, &coloring, k))
        });
    }
    group.finish();
}

fn bench_build_parallel(c: &mut Criterion) {
    let g = generators::barabasi_albert(4_000, 4, 2);
    let k = 5;
    let mut group = c.benchmark_group("build-parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let cfg = BuildConfig {
                threads: t,
                ..BuildConfig::new(k)
            }
            .seed(3);
            b.iter(|| build_urn(&g, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_build_parallel);
criterion_main!(benches);
