//! Criterion micro-benchmark behind Fig. 2: one check-and-merge replay per
//! suite graph, succinct vs pointer representatives.
//!
//! ```sh
//! cargo bench -p motivo-bench --bench checkmerge
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motivo_bench::checkmerge::{cc_checkmerge, succinct_checkmerge};
use motivo_graph::{generators, Coloring};

fn bench_checkmerge(c: &mut Criterion) {
    let graphs = vec![
        ("ba-small", generators::barabasi_albert(400, 3, 1)),
        ("er-small", generators::erdos_renyi(500, 1500, 2)),
    ];
    let k = 4;
    let mut group = c.benchmark_group("checkmerge");
    group.sample_size(10);
    for (name, g) in &graphs {
        let coloring = Coloring::uniform(g, k, 7);
        group.bench_with_input(BenchmarkId::new("succinct", name), g, |b, g| {
            b.iter(|| succinct_checkmerge(g, &coloring, k))
        });
        group.bench_with_input(BenchmarkId::new("pointer", name), g, |b, g| {
            b.iter(|| cc_checkmerge(g, &coloring, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkmerge);
criterion_main!(benches);
