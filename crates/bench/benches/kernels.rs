//! Criterion microbenchmarks of the two sampling-phase kernels the perf
//! gate watches in isolation (DESIGN.md §5.5): the batched succinct
//! block decoder (entries/s through shape sweeps, which refill a
//! decoded-block arena one anchor block at a time) and the branchless
//! alias walk (draws/s via `sample_many`).
//!
//! The workloads are the shared [`motivo_bench::kernels`] fixtures, so
//! these numbers are directly comparable to the
//! `decode_entries_per_sec` / `alias_draws_per_sec` fields the `ci`
//! experiment writes into `BENCH_ci.json`.
//!
//! ```sh
//! cargo bench -p motivo-bench --bench kernels
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use motivo_bench::kernels::{alias_workload, decode_workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_block_decode(c: &mut Criterion) {
    let (record, trees) = decode_workload(4);
    let mut group = c.benchmark_group("block-decode");
    // Streaming: the split-draw sweep — every shape's run of the record.
    group.bench_function(BenchmarkId::new("iter_tree", record.len()), |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for &tree in &trees {
                for (colors, count) in record.iter_tree(tree) {
                    acc = acc.wrapping_add(colors.0 as u128).wrapping_add(count);
                }
            }
            black_box(acc)
        })
    });
    // Random access: anchor seek + partial block decode per select.
    group.bench_function(BenchmarkId::new("select", record.len()), |b| {
        let total = record.total();
        let mut r = 1u128;
        b.iter(|| {
            let ct = record.select(r);
            r = r.wrapping_mul(6_364_136_223_846_793_005) % total + 1;
            black_box(ct)
        })
    });
    group.finish();
}

fn bench_alias_draws(c: &mut Criterion) {
    let table = alias_workload();
    let mut group = c.benchmark_group("alias");
    group.bench_function(BenchmarkId::new("sample_many", table.len()), |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut out = vec![0u32; 1024];
        b.iter(|| {
            table.sample_many(&mut rng, &mut out);
            black_box(out[0])
        })
    });
    group.bench_function(BenchmarkId::new("sample", table.len()), |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| black_box(table.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_block_decode, bench_alias_draws);
criterion_main!(benches);
