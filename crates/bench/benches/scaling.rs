//! Criterion benchmark of the parallel sampling engine: naive estimation
//! wall-clock at 1/2/4/8 workers on the benchmark graph. The per-thread
//! results are bit-identical (seed-split shards), so this measures pure
//! scaling, not different work.
//!
//! ```sh
//! cargo bench -p motivo-bench --bench scaling
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motivo_core::{build_urn, sample_tally, BuildConfig, SampleConfig};
use motivo_graph::generators;

fn bench_scaling(c: &mut Criterion) {
    let g = generators::barabasi_albert(20_000, 4, 11);
    let urn = build_urn(&g, &BuildConfig::new(5).seed(3)).expect("build");
    let samples = 100_000u64;

    let mut group = c.benchmark_group("parallel-naive");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let cfg = SampleConfig::seeded(1).threads(threads);
            b.iter(|| sample_tally(&urn, samples, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
