//! Criterion benchmark of the sampling phase (T4/Fig. 5 series): motivo's
//! sampler (buffered and not) vs the CC port's sampler.
//!
//! ```sh
//! cargo bench -p motivo-bench --bench sampling
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motivo_core::{build_urn, BuildConfig, SampleConfig, Sampler};
use motivo_graph::{generators, Coloring};

fn bench_sampling(c: &mut Criterion) {
    let g = generators::star_heavy(2_000, 3, 0.5, 3);
    let k = 4;
    let seed = 7;
    let urn = build_urn(
        &g,
        &BuildConfig {
            threads: 1,
            ..BuildConfig::new(k)
        }
        .seed(seed),
    )
    .expect("build");
    let coloring = Coloring::uniform(&g, k, seed);
    let cc = cc_baseline::cc_build(&g, &coloring, k);

    let mut group = c.benchmark_group("sampling");
    group.bench_function(BenchmarkId::new("motivo", "buffered"), |b| {
        let sc = SampleConfig {
            buffer_threshold: 512,
            ..SampleConfig::seeded(1)
        };
        let mut s = Sampler::new(&urn, sc);
        b.iter(|| s.sample_copy())
    });
    group.bench_function(BenchmarkId::new("motivo", "unbuffered"), |b| {
        let sc = SampleConfig {
            buffering: false,
            ..SampleConfig::seeded(1)
        };
        let mut s = Sampler::new(&urn, sc);
        b.iter(|| s.sample_copy())
    });
    group.bench_function(BenchmarkId::new("cc-port", "plain"), |b| {
        let mut s = cc_baseline::CcSampler::new(&cc, &g, 1);
        b.iter(|| s.sample_copy())
    });
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    // The per-sample classification path: induce + canonicalize (cached).
    let g = generators::barabasi_albert(2_000, 4, 5);
    let k = 5;
    let urn = build_urn(&g, &BuildConfig::new(k).seed(2)).expect("build");
    let mut group = c.benchmark_group("classification");
    group.bench_function("sample+classify", |b| {
        let mut s = Sampler::new(&urn, SampleConfig::seeded(4));
        let mut cache = motivo_graphlet::CanonicalCache::new();
        b.iter(|| {
            let verts = s.sample_copy();
            let raw = motivo_graphlet::Graphlet::from_rows(&g.induced_rows(&verts));
            cache.canonical_code(&raw)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_classification);
criterion_main!(benches);
