//! The Fig. 2 measurement: time spent in check-and-merge operations, for
//! succinct treelets (motivo) versus pointer representatives (CC).
//!
//! Both sides replay exactly the same work: given tables built up to size
//! `k − 1`, iterate every `(v, u ∼ v, h1 + h2 = k)` count pair and perform
//! the check-and-merge — color disjointness, canonical-shape admissibility,
//! and the merge itself. The succinct side is a handful of bit operations
//! on `u64`s; the pointer side dereferences arena representatives, compares
//! recursively materialized DFS strings, and interns cloned trees. A
//! checksum of merged counts is returned so the compiler cannot elide
//! either loop, and so both sides can be asserted identical.

use cc_baseline::cc_build;
use motivo_core::build::{build_table, BuildConfig};
use motivo_graph::{Coloring, Graph};
use motivo_treelet::ColoredTreelet;
use std::time::{Duration, Instant};

/// Result of one check-and-merge replay.
pub struct CheckMergeRun {
    /// Wall-clock of the pair loop.
    pub elapsed: Duration,
    /// Pairs examined.
    pub ops: u64,
    /// Sum of `c1·c2` over successful merges (keeps the loops honest
    /// and lets the test assert both sides do identical work).
    pub checksum: u128,
}

/// Succinct side: motivo records and bit-twiddled merges.
pub fn succinct_checkmerge(g: &Graph, coloring: &Coloring, k: u32) -> CheckMergeRun {
    assert!(k >= 3);
    let cfg = BuildConfig {
        threads: 1,
        zero_rooting: false,
        ..BuildConfig::new(k - 1)
    };
    let (table, _) = build_table(g, coloring, &cfg).expect("build to k-1");
    let start = Instant::now();
    let mut ops = 0u64;
    let mut checksum = 0u128;
    for v in 0..g.num_nodes() {
        let v_pairs: Vec<Vec<(ColoredTreelet, u128)>> = (1..k)
            .map(|h1| table.get(h1, v).expect("in-memory table").iter().collect())
            .collect();
        for &u in g.neighbors(v) {
            for h1 in 1..k {
                let h2 = k - h1;
                let vp = &v_pairs[h1 as usize - 1];
                if vp.is_empty() {
                    continue;
                }
                let ru = table.get(h2, u).expect("in-memory table");
                for (ct2, c2) in ru.iter() {
                    for &(ct1, c1) in vp {
                        ops += 1;
                        if ct1.colors().is_disjoint(ct2.colors())
                            && ct1.tree().can_merge(ct2.tree())
                        {
                            let merged = ct1.tree().merge_unchecked(ct2.tree());
                            // Keep the merge observable without adding
                            // asymmetric work to either side.
                            std::hint::black_box(merged);
                            checksum = checksum.wrapping_add(c1.wrapping_mul(c2));
                        }
                    }
                }
            }
        }
    }
    CheckMergeRun {
        elapsed: start.elapsed(),
        ops,
        checksum,
    }
}

/// Pointer side: CC arena representatives and recursive comparisons.
pub fn cc_checkmerge(g: &Graph, coloring: &Coloring, k: u32) -> CheckMergeRun {
    assert!(k >= 3);
    let mut cc = cc_build(g, coloring, k - 1);
    let start = Instant::now();
    let mut ops = 0u64;
    let mut checksum = 0u128;
    for v in 0..g.num_nodes() {
        for &u in g.neighbors(v) {
            for h1 in 1..k {
                let h2 = k - h1;
                let vt: Vec<(u32, u64)> = cc.tables[h1 as usize - 1][v as usize]
                    .iter()
                    .map(|(&i, &c)| (i, c))
                    .collect();
                for (id1, c1) in vt {
                    let ut: Vec<(u32, u64)> = cc.tables[h2 as usize - 1][u as usize]
                        .iter()
                        .map(|(&i, &c)| (i, c))
                        .collect();
                    for (id2, c2) in ut {
                        ops += 1;
                        if let Some(merged) = cc.arena.check_and_merge(id1, id2, k) {
                            std::hint::black_box(merged);
                            checksum = checksum.wrapping_add(c1 as u128 * c2 as u128);
                        }
                    }
                }
            }
        }
    }
    CheckMergeRun {
        elapsed: start.elapsed(),
        ops,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_graph::generators;

    #[test]
    fn both_sides_do_identical_work() {
        let g = generators::erdos_renyi(60, 150, 4);
        let coloring = Coloring::uniform(&g, 4, 9);
        let s = succinct_checkmerge(&g, &coloring, 4);
        let c = cc_checkmerge(&g, &coloring, 4);
        assert_eq!(s.ops, c.ops, "identical pair iteration");
        assert_eq!(s.checksum, c.checksum, "identical merge outcomes");
        assert!(s.ops > 0);
    }
}
