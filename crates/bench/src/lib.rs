//! Shared harness for regenerating every table and figure of the paper's
//! §5 (see DESIGN.md for the experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record).
//!
//! The binary `experiments` drives everything:
//!
//! ```sh
//! cargo run --release -p motivo-bench --bin experiments -- all
//! cargo run --release -p motivo-bench --bin experiments -- f8 --scale 2
//! ```
//!
//! Results are printed as text tables/histograms and mirrored as JSON under
//! `results/`.

pub mod checkmerge;
pub mod gate;
pub mod ground;
pub mod kernels;
pub mod runs;

use serde::Serialize;
use std::path::PathBuf;

/// Execution context shared by all experiments.
pub struct Ctx {
    /// Multiplies workload sizes (1 = laptop defaults).
    pub scale: u32,
    /// Where JSON artifacts land.
    pub out_dir: PathBuf,
    /// Quick mode trims the slowest corners (large k, CC on big graphs).
    pub quick: bool,
    /// Worker threads for motivo runs (0 = all cores).
    pub threads: usize,
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx {
            scale: 1,
            out_dir: PathBuf::from("results"),
            quick: false,
            threads: 0,
        }
    }
}

impl Ctx {
    /// Writes a JSON artifact under the results directory.
    pub fn save_json<T: Serialize>(&self, name: &str, value: &T) {
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(format!("{name}.json"));
        let data = serde_json::to_string_pretty(value).expect("serialize");
        std::fs::write(&path, data).expect("write artifact");
        println!("  [saved {}]", path.display());
    }
}

/// The graphs used by the accuracy experiments (small enough for exact or
/// averaged ground truth), distinct from the performance suite.
pub struct AccuracyGraph {
    /// Dataset label.
    pub name: &'static str,
    /// The graph.
    pub graph: motivo_graph::Graph,
    /// k values to run.
    pub ks: Vec<u32>,
}

/// Accuracy suite: one skewed, one flat, one star-dominated instance.
pub fn accuracy_suite(scale: u32) -> Vec<AccuracyGraph> {
    use motivo_graph::generators as gen;
    let s = scale.max(1);
    vec![
        AccuracyGraph {
            name: "ba-social",
            graph: gen::barabasi_albert(600 * s, 3, 1),
            ks: vec![4, 5],
        },
        AccuracyGraph {
            name: "er-flat",
            graph: gen::erdos_renyi(800 * s, 1_600 * s as usize, 2),
            ks: vec![4, 5],
        },
        AccuracyGraph {
            name: "yelp-stars",
            graph: gen::yelp_like(25 * s, 80, 40 * s as usize, 4),
            ks: vec![4, 5],
        },
    ]
}

/// Pretty-prints a text table: header + rows of equal arity.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// `Duration` as fractional seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
