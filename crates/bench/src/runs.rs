//! Estimation runners shared by the figure experiments: one naive run and
//! one AGS run with a common time-or-sample budget, returning per-class
//! maps keyed by canonical code (registry indices are run-local).

use motivo_core::{ags, AgsConfig, Estimates, SampleConfig, Urn};
use motivo_graphlet::GraphletRegistry;
use std::collections::HashMap;

/// One estimator's output, keyed by canonical code.
pub struct RunOutput {
    /// code → estimated total count.
    pub counts: HashMap<u128, f64>,
    /// code → samples that hit the class.
    pub occurrences: HashMap<u128, u64>,
    /// Samples taken.
    pub samples: u64,
    /// Wall-clock of the sampling phase.
    pub elapsed: std::time::Duration,
}

impl RunOutput {
    fn from_estimates(est: &Estimates, registry: &GraphletRegistry) -> RunOutput {
        let mut counts = HashMap::new();
        let mut occurrences = HashMap::new();
        for e in &est.per_graphlet {
            let code = registry.info(e.index).graphlet.code();
            counts.insert(code, e.count);
            occurrences.insert(code, e.occurrences);
        }
        RunOutput {
            counts,
            occurrences,
            samples: est.samples,
            elapsed: est.elapsed,
        }
    }

    /// Relative frequencies of the estimated counts.
    pub fn frequencies(&self) -> HashMap<u128, f64> {
        let t: f64 = self.counts.values().sum();
        self.counts.iter().map(|(&c, &n)| (c, n / t)).collect()
    }

    /// Smallest frequency among classes with ≥ `min_occ` samples (Fig. 10).
    pub fn rarest_frequency(&self, min_occ: u64) -> f64 {
        let freqs = self.frequencies();
        self.occurrences
            .iter()
            .filter(|&(_, &o)| o >= min_occ)
            .map(|(c, _)| freqs[c])
            .fold(f64::INFINITY, f64::min)
    }
}

/// Runs the naive estimator for `samples` draws.
pub fn naive_run(urn: &Urn<'_>, samples: u64, threads: usize, seed: u64) -> RunOutput {
    let mut registry = GraphletRegistry::new(urn.k() as u8);
    let est = motivo_core::naive_estimates(
        urn,
        &mut registry,
        samples,
        &SampleConfig::seeded(seed).threads(threads),
    );
    RunOutput::from_estimates(&est, &registry)
}

/// Runs AGS with a budget of `samples` draws.
pub fn ags_run(urn: &Urn<'_>, samples: u64, c_bar: u64, seed: u64) -> RunOutput {
    let mut registry = GraphletRegistry::new(urn.k() as u8);
    let cfg = AgsConfig {
        c_bar,
        max_samples: samples,
        idle_limit: (samples / 4).max(10_000),
        sample: SampleConfig::seeded(seed),
        ..AgsConfig::default()
    };
    let res = ags(urn, &mut registry, &cfg);
    RunOutput::from_estimates(&res.estimates, &registry)
}

/// Runs an estimator over several colorings and averages the per-class
/// counts — the paper's §5 protocol ("the average over 10 runs"). This is
/// what makes the per-shape AGS estimator's coloring-position variance
/// (hub vertices drawing color 0 skew `r_j` within one coloring) wash out:
/// the estimator is unbiased *across* colorings.
pub fn averaged_run(
    g: &motivo_graph::Graph,
    k: u32,
    colorings: u64,
    base_seed: u64,
    threads: usize,
    f: impl Fn(&Urn<'_>, u64) -> RunOutput,
) -> RunOutput {
    use motivo_core::{build_urn, BuildConfig};
    let mut counts: HashMap<u128, f64> = HashMap::new();
    let mut occurrences: HashMap<u128, u64> = HashMap::new();
    let mut samples = 0u64;
    let mut elapsed = std::time::Duration::ZERO;
    for c in 0..colorings {
        let cfg = BuildConfig {
            threads,
            ..BuildConfig::new(k)
        }
        .seed(base_seed + c);
        let urn = match build_urn(g, &cfg) {
            Ok(u) => u,
            Err(_) => continue, // empty urn: a zero contribution
        };
        let run = f(&urn, base_seed + 1000 + c);
        for (code, n) in run.counts {
            *counts.entry(code).or_insert(0.0) += n;
        }
        for (code, o) in run.occurrences {
            *occurrences.entry(code).or_insert(0) += o;
        }
        samples += run.samples;
        elapsed += run.elapsed;
    }
    for n in counts.values_mut() {
        *n /= colorings as f64;
    }
    RunOutput {
        counts,
        occurrences,
        samples,
        elapsed,
    }
}

/// Count errors vs a truth map: `(ĉ − c)/c` per class in the truth
/// (missed classes → −1). Returns `(code, error)` pairs.
pub fn errors_vs_truth(run: &HashMap<u128, f64>, truth: &HashMap<u128, f64>) -> Vec<(u128, f64)> {
    truth
        .iter()
        .filter(|&(_, &t)| t > 0.0)
        .map(|(&code, &t)| (code, (run.get(&code).copied().unwrap_or(0.0) - t) / t))
        .collect()
}

/// ℓ1 distance between two frequency maps over the union of classes.
pub fn l1(a: &HashMap<u128, f64>, b: &HashMap<u128, f64>) -> f64 {
    let keys: std::collections::BTreeSet<u128> = a.keys().chain(b.keys()).copied().collect();
    keys.into_iter()
        .map(|k| (a.get(&k).copied().unwrap_or(0.0) - b.get(&k).copied().unwrap_or(0.0)).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_core::{build_urn, BuildConfig};
    use motivo_graph::generators;

    #[test]
    fn runners_produce_consistent_outputs() {
        let g = generators::barabasi_albert(300, 3, 3);
        let urn = build_urn(&g, &BuildConfig::new(4).seed(1)).unwrap();
        let naive = naive_run(&urn, 20_000, 1, 2);
        assert_eq!(naive.samples, 20_000);
        assert!((naive.frequencies().values().sum::<f64>() - 1.0).abs() < 1e-9);
        let a = ags_run(&urn, 20_000, 500, 3);
        assert!(a.samples <= 20_000);
        assert!(!a.counts.is_empty());
        // Both see the dominant classes.
        let top_naive = naive
            .counts
            .iter()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .unwrap()
            .0;
        assert!(a.counts.contains_key(top_naive));
    }

    #[test]
    fn error_and_l1_helpers() {
        let truth: HashMap<u128, f64> = [(1u128, 10.0), (2, 5.0)].into();
        let run: HashMap<u128, f64> = [(1u128, 12.0)].into();
        let errs = errors_vs_truth(&run, &truth);
        let get = |c: u128| errs.iter().find(|&&(x, _)| x == c).unwrap().1;
        assert!((get(1) - 0.2).abs() < 1e-12);
        assert!((get(2) + 1.0).abs() < 1e-12);
        let fa: HashMap<u128, f64> = [(1u128, 1.0)].into();
        let fb: HashMap<u128, f64> = [(2u128, 1.0)].into();
        assert!((l1(&fa, &fb) - 2.0).abs() < 1e-12);
    }
}
