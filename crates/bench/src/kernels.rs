//! Isolated sampling-kernel workloads for the perf gate (DESIGN.md §5.5).
//!
//! The end-to-end `samples_per_sec` metric mixes the succinct block
//! decoder, the alias walk, graph access, and tallying; a regression in
//! one kernel can hide there behind an improvement in another. These
//! fixed synthetic workloads pin each kernel alone, and are shared by
//! the `kernels` criterion bench and the `ci` experiment (which reports
//! `decode_entries_per_sec` / `alias_draws_per_sec` into `BENCH_ci.json`
//! for the gate).

use motivo_table::{AliasTable, Record, RecordCodec};
use motivo_treelet::{all_treelets, ColorSet, ColoredTreelet, Treelet};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// A record shaped like a dense top-level treelet row: every colored
/// k-treelet over 16 colors (all shapes × all `C(16, k)` color sets),
/// with deterministic skewed counts spanning several LEB128 widths. At
/// `k = 4` that is 7280 entries — hundreds of anchor blocks.
pub fn decode_workload(k: u32) -> (Record, Vec<Treelet>) {
    let trees = all_treelets(k);
    let mut pairs: Vec<(u64, u128)> = Vec::new();
    for &tree in &trees {
        for mask in 0u32..1 << 16 {
            if mask.count_ones() == k {
                let i = pairs.len() as u128;
                let bump = if pairs.len().is_multiple_of(31) {
                    100_000
                } else {
                    1
                };
                let ct = ColoredTreelet::new(tree, ColorSet(mask as u16));
                pairs.push((ct.code(), 1 + (i % 13) * bump));
            }
        }
    }
    (Record::from_counts_in(RecordCodec::Succinct, pairs), trees)
}

/// Entries/s streamed through the batched succinct block decoder:
/// full-shape sweeps via [`Record::iter_tree`], the exact call the
/// sampler's split draw makes (no per-entry key validation, block-arena
/// refills amortized across each anchor block).
pub fn decode_entries_per_sec() -> f64 {
    let (record, trees) = decode_workload(4);
    let entries = record.len() as f64;
    timed_rate(|| {
        let mut acc = 0u128;
        for &tree in &trees {
            for (colors, count) in record.iter_tree(tree) {
                acc = acc.wrapping_add(colors.0 as u128).wrapping_add(count);
            }
        }
        std::hint::black_box(acc);
    }) * entries
}

/// A skewed 65 536-way categorical — root-vertex-weight shaped.
pub fn alias_workload() -> AliasTable {
    let weights: Vec<u128> = (0..65_536u128).map(|i| 1 + i * i % 997).collect();
    AliasTable::from_u128(&weights)
}

/// Draws/s through the branchless alias walk, batched 1024 at a time
/// ([`AliasTable::sample_many`]).
pub fn alias_draws_per_sec() -> f64 {
    let table = alias_workload();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut out = vec![0u32; 1024];
    let batch = out.len() as f64;
    timed_rate(|| {
        table.sample_many(&mut rng, &mut out);
        std::hint::black_box(out[0]);
    }) * batch
}

/// Runs `f` repeatedly for ~1.5 s and returns calls per second.
fn timed_rate(mut f: impl FnMut()) -> f64 {
    let budget = Duration::from_millis(1500);
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < budget {
        f();
        calls += 1;
    }
    calls as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_workload_is_dense_and_sorted() {
        let (record, trees) = decode_workload(4);
        assert_eq!(trees.len(), 4, "rooted trees on 4 nodes");
        // 1820 = C(16, 4) color sets per shape; the shape sweeps must
        // cover every entry exactly once.
        assert_eq!(record.len(), trees.len() * 1820);
        let swept: usize = trees.iter().map(|&t| record.iter_tree(t).count()).sum();
        assert_eq!(swept, record.len());
    }

    #[test]
    fn alias_workload_draws_in_range() {
        let table = alias_workload();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = vec![0u32; 64];
        table.sample_many(&mut rng, &mut out);
        assert!(out.iter().all(|&v| (v as usize) < table.len()));
    }
}
