//! Ground truth for the accuracy experiments, following the paper's §5
//! protocol: exact counts (ESU, our ESCAPE substitute) where feasible, and
//! otherwise "the counts given by motivo averaged over 20 runs, 10 using
//! naive sampling and 10 using AGS".

use motivo_core::{ags, build_urn, naive_estimates, AgsConfig, BuildConfig, SampleConfig};
use motivo_graph::Graph;
use motivo_graphlet::GraphletRegistry;
use std::collections::HashMap;

/// Per-class ground-truth counts, keyed by canonical graphlet code.
pub struct GroundTruth {
    /// Canonical code → count (exact integer or averaged estimate).
    pub counts: HashMap<u128, f64>,
    /// Whether the counts are exact (ESU) or averaged motivo runs.
    pub exact: bool,
}

impl GroundTruth {
    /// Total k-graphlet copies.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Relative frequencies.
    pub fn frequencies(&self) -> HashMap<u128, f64> {
        let t = self.total();
        self.counts.iter().map(|(&c, &n)| (c, n / t)).collect()
    }
}

/// Cost heuristic: ESU touches every connected induced k-subgraph, so cap
/// by an estimated subgraph count (edges × avg-degreeᵏ⁻²-ish).
fn esu_feasible(g: &Graph, k: u32) -> bool {
    if k > 5 {
        return false;
    }
    let m = g.num_edges() as f64;
    let avg_d = 2.0 * m / g.num_nodes() as f64;
    let max_d = g.max_degree() as f64;
    // Stars at the max-degree vertex alone give C(Δ, k−1) subgraphs.
    let hub = (0..k - 1)
        .map(|i| (max_d - i as f64) / (i as f64 + 1.0))
        .product::<f64>();
    let rough = m * avg_d.powi(k as i32 - 2) + hub;
    rough < 5e7
}

/// Ground truth per the paper's protocol.
pub fn ground_truth(g: &Graph, k: u32, base_seed: u64) -> GroundTruth {
    if esu_feasible(g, k) {
        let exact = motivo_exact::count_exact(g, k as u8);
        return GroundTruth {
            counts: exact.counts.iter().map(|(&c, &n)| (c, n as f64)).collect(),
            exact: true,
        };
    }
    // Averaged motivo runs: 10 naive + 10 AGS over distinct colorings.
    let mut registry = GraphletRegistry::new(k as u8);
    let mut acc: HashMap<usize, f64> = HashMap::new();
    let runs = 20u64;
    let budget = 200_000u64;
    for r in 0..runs {
        let urn = match build_urn(g, &BuildConfig::new(k).seed(base_seed + r)) {
            Ok(u) => u,
            Err(_) => continue,
        };
        let est = if r % 2 == 0 {
            naive_estimates(&urn, &mut registry, budget, &SampleConfig::seeded(r))
        } else {
            ags(
                &urn,
                &mut registry,
                &AgsConfig {
                    c_bar: 1000,
                    max_samples: budget,
                    sample: SampleConfig::seeded(r),
                    ..AgsConfig::default()
                },
            )
            .estimates
        };
        for e in &est.per_graphlet {
            *acc.entry(e.index).or_insert(0.0) += e.count;
        }
    }
    let counts = acc
        .into_iter()
        .map(|(i, c)| (registry.info(i).graphlet.code(), c / runs as f64))
        .collect();
    GroundTruth {
        counts,
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_graph::generators;

    #[test]
    fn exact_path_taken_for_small_graphs() {
        let g = generators::barabasi_albert(200, 3, 1);
        let gt = ground_truth(&g, 4, 0);
        assert!(gt.exact);
        assert!(gt.total() > 0.0);
        let fsum: f64 = gt.frequencies().values().sum();
        assert!((fsum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility_heuristic_rejects_hubs() {
        let g = generators::star_graph(200_000);
        assert!(!esu_feasible(&g, 5), "C(2e5, 4) subgraphs is not feasible");
        assert!(esu_feasible(&generators::path_graph(1000), 5));
    }
}
