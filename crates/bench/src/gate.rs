//! The CI perf-regression gate: compares a fresh `BENCH_ci.json` against
//! the committed `BENCH_baseline.json` (repo root) and decides whether
//! the commit may merge.
//!
//! Two field classes, two rules:
//!
//! - **Deterministic fields** ([`EXACT_FIELDS`]) are pure functions of
//!   the seeded workload — table bytes, bits/node, the tally checksum.
//!   They must match the baseline *exactly*; any drift means the build or
//!   sampling pipeline changed its observable behaviour and the baseline
//!   must be refreshed deliberately (see README "Refreshing the perf
//!   baseline"), never absorbed silently.
//! - **Timing fields** ([`TIMING_FIELDS`]) are machine-dependent — build
//!   seconds, samples/s, serving QPS. They fail only beyond a generous
//!   ratio tolerance ([`DEFAULT_TOLERANCE`]×, either direction), wide
//!   enough to absorb runner noise but not a 5× serving regression.
//!   Latency quantiles ([`QUANTILE_FIELDS`], microseconds) follow the
//!   same ratio rule with their own noise floor ([`US_NOISE_FLOOR`]):
//!   sub-50ms quantiles on the smoke workload measure scheduler jitter,
//!   not the code, so both sides are clamped up to the floor first —
//!   tail latencies only gate once they are big enough to mean something.
//!
//! A field missing from either side is a failure: the baseline and the
//! experiment must agree on the schema, so adding a metric forces a
//! baseline refresh in the same commit.

use serde_json::Value;

/// Fields that must match the baseline byte-for-byte (compared on their
/// canonical serialization, so `2` and `2.0` stay distinct, as they are
/// to a JSON reader).
pub const EXACT_FIELDS: &[&str] = &[
    "graph_nodes",
    "graph_edges",
    "k",
    "samples",
    "table_bytes_plain",
    "table_bytes_succinct",
    "bits_per_node_plain",
    "bits_per_node_succinct",
    "tally_checksum",
    "build_spill_runs",
    "idle_conns_held",
    "determinism",
];

/// Fields compared as ratios under the tolerance.
pub const TIMING_FIELDS: &[&str] = &[
    "peak_rss_bytes_per_edge",
    "build_secs",
    "sample_secs",
    "samples_per_sec",
    "decode_entries_per_sec",
    "alias_draws_per_sec",
    "serve_qps",
    "cache_hit_qps",
    "replica_catchup_secs",
    "replicated_read_qps",
    "concurrent_active_qps",
];

/// Serving latency quantiles, in microseconds, compared as ratios under
/// the tolerance after clamping both sides up to [`US_NOISE_FLOOR`].
/// Unlike [`TIMING_FIELDS`], zero is a legal value here (a cache hit can
/// serve in under a microsecond) — the clamp makes it a pass, not an
/// error.
pub const QUANTILE_FIELDS: &[&str] = &[
    "serve_p50_us",
    "serve_p99_us",
    "cache_hit_p50_us",
    "cache_hit_p99_us",
];

/// Default timing tolerance: a fresh value may be up to this factor
/// slower *or* faster than the baseline.
pub const DEFAULT_TOLERANCE: f64 = 3.0;

/// Noise floor for duration fields (`*_secs`): on the tiny smoke
/// workload a build takes ~tens of milliseconds, where the ratio of two
/// samples measures scheduler noise, not the code. Durations are clamped
/// up to this floor before the ratio test, so the gate only engages once
/// a duration is large enough to mean something (a real regression blows
/// far past the floor).
pub const SECS_NOISE_FLOOR: f64 = 0.05;

/// Noise floor for latency quantile fields (`*_us`): 50ms. Below it a
/// quantile ratio measures runner jitter; a real tail regression (the
/// kind worth gating) lands far beyond it.
pub const US_NOISE_FLOOR: f64 = 50_000.0;

/// The comparison verdict: human-readable per-field lines plus the
/// failures that should gate the merge (empty = pass).
#[derive(Debug, Default)]
pub struct GateReport {
    /// One line per compared field, pass or fail.
    pub lines: Vec<String>,
    /// The subset describing failures.
    pub failures: Vec<String>,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn fail(&mut self, line: String) {
        self.lines.push(format!("FAIL  {line}"));
        self.failures.push(line);
    }

    fn ok(&mut self, line: String) {
        self.lines.push(format!("  ok  {line}"));
    }
}

fn field_text(doc: &Value, key: &str) -> Option<String> {
    doc.get(key)
        .map(|v| serde_json::to_string(&v).expect("serialize"))
}

/// Compares `fresh` against `baseline`: exact fields must serialize
/// identically, timing fields must stay within `tolerance`× in either
/// direction. Missing fields fail.
pub fn compare(baseline: &Value, fresh: &Value, tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    for &key in EXACT_FIELDS {
        match (field_text(baseline, key), field_text(fresh, key)) {
            (Some(b), Some(f)) if b == f => {
                report.ok(format!("{key:<24} {b} == {f}"));
            }
            (Some(b), Some(f)) => {
                report.fail(format!(
                    "{key:<24} deterministic field drifted: baseline {b}, fresh {f}"
                ));
            }
            (b, _) => {
                report.fail(format!(
                    "{key:<24} missing from {} (refresh the baseline?)",
                    if b.is_none() { "baseline" } else { "fresh run" }
                ));
            }
        }
    }
    for &key in TIMING_FIELDS {
        let b = baseline.get(key).and_then(|v| v.as_f64());
        let f = fresh.get(key).and_then(|v| v.as_f64());
        match (b, f) {
            (Some(b), Some(f)) if b > 0.0 && f > 0.0 => {
                let (b, f) = if key.ends_with("_secs") {
                    (b.max(SECS_NOISE_FLOOR), f.max(SECS_NOISE_FLOOR))
                } else {
                    (b, f)
                };
                let ratio = f / b;
                if ratio <= tolerance && ratio >= 1.0 / tolerance {
                    report.ok(format!(
                        "{key:<24} baseline {b:.4}, fresh {f:.4}, ratio {ratio:.2} (limit {tolerance:.1}x)"
                    ));
                } else {
                    report.fail(format!(
                        "{key:<24} baseline {b:.4}, fresh {f:.4}, ratio {ratio:.2} exceeds {tolerance:.1}x"
                    ));
                }
            }
            (Some(b), Some(f)) => {
                report.fail(format!(
                    "{key:<24} non-positive timing (baseline {b}, fresh {f})"
                ));
            }
            (b, _) => {
                report.fail(format!(
                    "{key:<24} missing from {} (refresh the baseline?)",
                    if b.is_none() { "baseline" } else { "fresh run" }
                ));
            }
        }
    }
    for &key in QUANTILE_FIELDS {
        let b = baseline.get(key).and_then(|v| v.as_f64());
        let f = fresh.get(key).and_then(|v| v.as_f64());
        match (b, f) {
            (Some(b), Some(f)) if b >= 0.0 && f >= 0.0 => {
                let (b, f) = (b.max(US_NOISE_FLOOR), f.max(US_NOISE_FLOOR));
                let ratio = f / b;
                if ratio <= tolerance && ratio >= 1.0 / tolerance {
                    report.ok(format!(
                        "{key:<24} baseline {b:.0}us, fresh {f:.0}us, ratio {ratio:.2} (limit {tolerance:.1}x)"
                    ));
                } else {
                    report.fail(format!(
                        "{key:<24} baseline {b:.0}us, fresh {f:.0}us, ratio {ratio:.2} exceeds {tolerance:.1}x"
                    ));
                }
            }
            (Some(b), Some(f)) => {
                report.fail(format!(
                    "{key:<24} negative quantile (baseline {b}, fresh {f})"
                ));
            }
            (b, _) => {
                report.fail(format!(
                    "{key:<24} missing from {} (refresh the baseline?)",
                    if b.is_none() { "baseline" } else { "fresh run" }
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::{from_str, json};

    fn doc() -> Value {
        json!({
            "graph_nodes": 2000, "graph_edges": 5991, "k": 4, "samples": 50000,
            "table_bytes_plain": 1000000, "table_bytes_succinct": 300000,
            "bits_per_node_plain": 4000.0, "bits_per_node_succinct": 1200.0,
            "tally_checksum": "a1b2c3d4", "build_spill_runs": 6, "determinism": "ok",
            "peak_rss_bytes_per_edge": 9000.0,
            "build_secs": 1.0, "sample_secs": 0.5, "samples_per_sec": 100000.0,
            "decode_entries_per_sec": 50000000.0, "alias_draws_per_sec": 80000000.0,
            "serve_qps": 800.0, "cache_hit_qps": 5000.0,
            "replica_catchup_secs": 0.8, "replicated_read_qps": 700.0,
            "idle_conns_held": 1000, "concurrent_active_qps": 500.0,
            "serve_p50_us": 60000.0, "serve_p99_us": 80000.0,
            "cache_hit_p50_us": 150.0, "cache_hit_p99_us": 900.0,
        })
    }

    /// Rebuilds the document through text, as the gate binary reads files.
    fn reparse(v: &Value) -> Value {
        from_str(&serde_json::to_string(v).unwrap()).unwrap()
    }

    fn with(base: &Value, key: &str, value: Value) -> Value {
        let mut text = serde_json::to_string(base).unwrap();
        let old = format!(
            "\"{key}\":{}",
            serde_json::to_string(&base.get(key).unwrap()).unwrap()
        );
        let new = format!("\"{key}\":{}", serde_json::to_string(&value).unwrap());
        assert!(text.contains(&old), "{old} not in {text}");
        text = text.replace(&old, &new);
        from_str(&text).unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let (b, f) = (reparse(&doc()), reparse(&doc()));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(
            report.lines.len(),
            EXACT_FIELDS.len() + TIMING_FIELDS.len() + QUANTILE_FIELDS.len()
        );
    }

    #[test]
    fn doctored_deterministic_field_fails_with_readable_diff() {
        let b = reparse(&doc());
        let f = with(&b, "bits_per_node_succinct", json!(999.5));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        let msg = &report.failures[0];
        assert!(msg.contains("bits_per_node_succinct"), "{msg}");
        assert!(msg.contains("1200.0") && msg.contains("999.5"), "{msg}");

        // The tally checksum is load-bearing too: a sampling change that
        // altered counts must not merge green.
        let f = with(&b, "tally_checksum", json!("deadbeef"));
        assert!(!compare(&b, &f, DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn timing_within_tolerance_passes_beyond_fails() {
        let b = reparse(&doc());
        // 2.9x slower build: inside the 3x band.
        let f = with(&b, "build_secs", json!(2.9));
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // 2.9x *faster* serving: also fine.
        let f = with(&b, "serve_qps", json!(2300.0));
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // A 5x serving regression fails.
        let f = with(&b, "serve_qps", json!(160.0));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(report.failures[0].contains("serve_qps"));
        assert!(report.failures[0].contains("exceeds"), "{report:?}");
        // Tolerance is a parameter: the same ratio passes at 10x.
        assert!(compare(&b, &f, 10.0).passed());
    }

    /// Millisecond-scale durations (the smoke build on a fast runner)
    /// are noise: the floor keeps two noise samples from failing the
    /// gate, while a real regression past the floor still fails.
    #[test]
    fn tiny_durations_are_clamped_to_the_noise_floor() {
        let b = reparse(&with(&doc(), "build_secs", json!(0.017)));
        // 0.017s → 0.049s is a 2.9x raw ratio of pure noise: passes.
        let f = with(&b, "build_secs", json!(0.049));
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // A genuine blowup past the floor (0.017s → 0.2s) still fails:
        // 0.2 / max(0.017, floor) = 4x.
        let f = with(&b, "build_secs", json!(0.2));
        assert!(!compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // Rates are not clamped: qps fields keep the raw ratio test.
        let f = with(&b, "serve_qps", json!(0.02));
        assert!(!compare(&b, &f, DEFAULT_TOLERANCE).passed());
    }

    /// A doctored 10x p99 regression fails the gate (the acceptance
    /// check behind `bench_gate`'s exit 1), while sub-floor quantile
    /// jitter — including a legal zero — passes.
    #[test]
    fn doctored_p99_regression_fails_subfloor_jitter_passes() {
        let b = reparse(&doc());
        // 80ms → 800ms p99: 10x past the floor, gated.
        let f = with(&b, "serve_p99_us", json!(800000.0));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("serve_p99_us"), "{report:?}");
        assert!(report.failures[0].contains("exceeds"), "{report:?}");
        // p50 regressions gate the same way.
        let f = with(&b, "serve_p50_us", json!(600000.0));
        assert!(!compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // Cache-hit quantiles live under the 50ms floor: a 30x swing
        // there is jitter, and clamping makes it pass.
        let f = with(&b, "cache_hit_p99_us", json!(27000.0));
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // Zero is legal for a quantile (sub-microsecond cache hit).
        let f = with(&b, "cache_hit_p50_us", json!(0.0));
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // But a missing quantile is a schema drift, and fails.
        let text = serde_json::to_string(&b)
            .unwrap()
            .replace("\"serve_p99_us\":80000.0,", "");
        let f: Value = from_str(&text).unwrap();
        assert!(!compare(&b, &f, DEFAULT_TOLERANCE).passed());
    }

    /// The isolated sampling-kernel rates gate like any other timing
    /// field: ratio-tested both directions, and absent means schema
    /// drift (a run predating the kernel metrics cannot pass against a
    /// baseline that has them).
    #[test]
    fn kernel_rate_fields_gate_like_other_timings() {
        let b = reparse(&doc());
        // 5x decode-throughput collapse fails.
        let f = with(&b, "decode_entries_per_sec", json!(10000000.0));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(report.failures[0].contains("decode_entries_per_sec"));
        // 2x alias-draw jitter stays inside the band.
        let f = with(&b, "alias_draws_per_sec", json!(40000000.0));
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // Dropping a kernel field from the fresh run fails the gate.
        let text = serde_json::to_string(&b)
            .unwrap()
            .replace("\"alias_draws_per_sec\":80000000.0,", "");
        let f: Value = from_str(&text).unwrap();
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(report.failures[0].contains("missing from fresh run"));
    }

    /// The out-of-core fields gate with their class: `build_spill_runs`
    /// is deterministic (a single-threaded build under a fixed budget
    /// always spills the same number of runs), `peak_rss_bytes_per_edge`
    /// is machine-dependent and ratio-tested.
    #[test]
    fn oom_fields_gate_exact_spills_and_ratio_rss() {
        let b = reparse(&doc());
        // One extra spill run means the budget accounting changed: exact.
        let f = with(&b, "build_spill_runs", json!(7));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(
            report.failures[0].contains("build_spill_runs"),
            "{report:?}"
        );
        assert!(report.failures[0].contains("drifted"), "{report:?}");
        // A 5x RSS blowup per edge fails; 2x runner variance passes.
        let f = with(&b, "peak_rss_bytes_per_edge", json!(45000.0));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("peak_rss_bytes_per_edge"),
            "{report:?}"
        );
        let f = with(&b, "peak_rss_bytes_per_edge", json!(18000.0));
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // Either field missing from the fresh run is schema drift.
        for strip in [
            "\"build_spill_runs\":6,",
            "\"peak_rss_bytes_per_edge\":9000.0,",
        ] {
            let text = serde_json::to_string(&b).unwrap().replace(strip, "");
            assert_ne!(text, serde_json::to_string(&b).unwrap(), "{strip}");
            let f: Value = from_str(&text).unwrap();
            assert!(!compare(&b, &f, DEFAULT_TOLERANCE).passed(), "{strip}");
        }
    }

    /// The reactor fields gate with their class: `idle_conns_held` is
    /// deterministic (the event loop either holds the full idle set or
    /// the architecture regressed — there is no noise in a count of held
    /// connections), `concurrent_active_qps` is machine-dependent and
    /// ratio-tested like the other rates.
    #[test]
    fn reactor_fields_gate_exact_idle_and_ratio_qps() {
        let b = reparse(&doc());
        // Dropping even one idle connection is an exact-field failure.
        let f = with(&b, "idle_conns_held", json!(999));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("idle_conns_held"), "{report:?}");
        assert!(report.failures[0].contains("drifted"), "{report:?}");
        // A 5x collapse of concurrent throughput fails...
        let f = with(&b, "concurrent_active_qps", json!(100.0));
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("concurrent_active_qps"),
            "{report:?}"
        );
        // ...while 2x runner variance passes.
        let f = with(&b, "concurrent_active_qps", json!(1000.0));
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).passed());
        // Either field missing from the fresh run is schema drift.
        for strip in [
            "\"idle_conns_held\":1000,",
            "\"concurrent_active_qps\":500.0,",
        ] {
            let text = serde_json::to_string(&b).unwrap().replace(strip, "");
            assert_ne!(text, serde_json::to_string(&b).unwrap(), "{strip}");
            let f: Value = from_str(&text).unwrap();
            assert!(!compare(&b, &f, DEFAULT_TOLERANCE).passed(), "{strip}");
        }
    }

    #[test]
    fn missing_fields_fail_both_directions() {
        let b = reparse(&doc());
        let strip = |v: &Value, key: &str| {
            let text = serde_json::to_string(v).unwrap();
            let needle = format!(
                "\"{key}\":{},",
                serde_json::to_string(&v.get(key).unwrap()).unwrap()
            );
            from_str(&text.replace(&needle, "")).unwrap()
        };
        let f = strip(&b, "serve_qps");
        let report = compare(&b, &f, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(report.failures[0].contains("missing from fresh run"));
        let report = compare(&f, &b, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert!(report.failures[0].contains("missing from baseline"));
        // An exact field missing fails too.
        let f = strip(&b, "tally_checksum");
        assert!(!compare(&b, &f, DEFAULT_TOLERANCE).passed());
    }
}
