//! Regenerates every table and figure of Motivo's §5 on the synthetic
//! suite (see DESIGN.md for the experiment index, EXPERIMENTS.md for
//! paper-vs-measured).
//!
//! ```sh
//! cargo run --release -p motivo-bench --bin experiments -- all
//! cargo run --release -p motivo-bench --bin experiments -- t2 f8 --quick
//! cargo run --release -p motivo-bench --bin experiments -- f7 --scale 2
//! ```

use cc_baseline::{cc_build, CcSampler};
use motivo_bench::checkmerge::{cc_checkmerge, succinct_checkmerge};
use motivo_bench::ground::ground_truth;
use motivo_bench::runs::{ags_run, errors_vs_truth, l1, naive_run};
use motivo_bench::{accuracy_suite, print_table, secs, Ctx};
use motivo_core::stats::{histogram, text_histogram};
use motivo_core::{build_urn, BuildConfig, SampleConfig, Sampler};
use motivo_graph::generators::{self, SuiteGraph};
use motivo_graph::Coloring;
use serde_json::json;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = Ctx::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                ctx.scale = it.next().and_then(|s| s.parse().ok()).expect("--scale N");
            }
            "--quick" => ctx.quick = true,
            "--threads" => {
                ctx.threads = it.next().and_then(|s| s.parse().ok()).expect("--threads N");
            }
            "--out" => {
                ctx.out_dir = it.next().expect("--out DIR").into();
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments <ids...|all> [--scale N] [--quick] [--threads N] [--out DIR]\n\
             ids: t1 t2 t3 t4 f2 f3 f4 f5 f6 f7 f8 f9 f10 l1 s1 ci"
        );
        std::process::exit(2);
    }
    let all = [
        "t1", "t2", "t3", "t4", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "l1", "s1",
        "ci",
    ];
    let run: Vec<&str> = if ids.iter().any(|i| i == "all") {
        all.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };
    let started = Instant::now();
    for id in run {
        match id {
            "t1" => t1(&ctx),
            "t2" | "t3" | "f3" => t2_t3_f3(&ctx, id),
            "t4" => t4(&ctx),
            "f2" => f2(&ctx),
            "f4" => f4(&ctx),
            "f5" => f5(&ctx),
            "f6" => f6(&ctx),
            "f7" => f7(&ctx),
            "f8" | "f9" | "f10" | "l1" => accuracy_experiments(&ctx, id),
            "s1" => s1(&ctx),
            "ci" => ci(&ctx),
            other => eprintln!("unknown experiment id: {other}"),
        }
    }
    println!(
        "\nall requested experiments done in {:?}",
        started.elapsed()
    );
}

/// Table 1: the dataset suite standing in for the paper's graphs.
fn t1(ctx: &Ctx) {
    let suite = generators::suite(ctx.scale);
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.graph.num_nodes().to_string(),
                s.graph.num_edges().to_string(),
                s.graph.max_degree().to_string(),
                s.max_k.to_string(),
            ]
        })
        .collect();
    print_table(
        "T1: dataset suite (paper Table 1 substitute)",
        &["graph", "nodes", "edges", "maxdeg", "max k"],
        &rows,
    );
    ctx.save_json(
        "t1_datasets",
        &suite
            .iter()
            .map(|s| {
                json!({
                    "name": s.name,
                    "nodes": s.graph.num_nodes(),
                    "edges": s.graph.num_edges(),
                    "max_degree": s.graph.max_degree(),
                    "max_k": s.max_k,
                })
            })
            .collect::<Vec<_>>(),
    );
}

fn cc_comparison_graphs(ctx: &Ctx) -> Vec<SuiteGraph> {
    // CC (single-threaded, pointer-based) caps the sizes we can afford.
    let mut suite = generators::suite(ctx.scale);
    suite.retain(|s| s.graph.num_edges() <= 40_000 * ctx.scale as usize);
    suite
}

fn cc_ks(ctx: &Ctx) -> Vec<u32> {
    if ctx.quick {
        vec![4]
    } else {
        vec![4, 5]
    }
}

/// §5.1 build-up speedup (t2), count-table size ratio (t3), and the Fig. 3
/// build time/memory comparison (f3) — one set of runs feeds all three.
fn t2_t3_f3(ctx: &Ctx, which: &str) {
    let suite = cc_comparison_graphs(ctx);
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for s in &suite {
        for &k in &cc_ks(ctx) {
            let coloring_seed = 7;
            let coloring = Coloring::uniform(&s.graph, k, coloring_seed);
            let cc_t0 = Instant::now();
            let cc = cc_build(&s.graph, &coloring, k);
            let cc_time = cc_t0.elapsed();
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(k)
            }
            .seed(coloring_seed);
            let urn = match build_urn(&s.graph, &cfg) {
                Ok(u) => u,
                Err(e) => {
                    println!("  {} k={k}: motivo build failed: {e}", s.name);
                    continue;
                }
            };
            let mt = urn.build_stats();
            // The same table sealed under the succinct codec: identical
            // counts, fewer bytes — the memory trajectory the JSON
            // artifacts track. Recoded from the built records, not rebuilt.
            let succinct_bytes = succinct_table_bytes(&urn);
            let speedup = cc_time.as_secs_f64() / mt.total.as_secs_f64();
            let size_ratio = cc.stats.table_bytes as f64 / mt.table_bytes as f64;
            let succinct_saving = 1.0 - succinct_bytes as f64 / mt.table_bytes as f64;
            rows.push(vec![
                s.name.to_string(),
                k.to_string(),
                secs(cc_time),
                secs(mt.total),
                format!("{speedup:.1}x"),
                format!("{:.1}", cc.stats.table_bytes as f64 / (1 << 20) as f64),
                format!("{:.1}", mt.table_bytes as f64 / (1 << 20) as f64),
                format!("{size_ratio:.1}x"),
                format!("{:.2}", succinct_bytes as f64 / (1 << 20) as f64),
                format!("{:.0}%", 100.0 * succinct_saving),
            ]);
            artifacts.push(json!({
                "graph": s.name, "k": k,
                "cc_seconds": cc_time.as_secs_f64(),
                "motivo_seconds": mt.total.as_secs_f64(),
                "speedup": speedup,
                "cc_bytes": cc.stats.table_bytes,
                "motivo_bytes": mt.table_bytes,
                "motivo_bytes_succinct": succinct_bytes,
                "succinct_saving": succinct_saving,
                "size_ratio": size_ratio,
            }));
        }
    }
    let title = match which {
        "t2" => "T2: build-up speedup, motivo vs CC (paper §5.1, 1 thread each)",
        "t3" => "T3: count-table size ratio, CC/motivo (paper §5.1)",
        _ => "F3: build time & memory, original (CC) vs succinct (motivo)",
    };
    print_table(
        title,
        &[
            "graph",
            "k",
            "CC s",
            "motivo s",
            "speedup",
            "CC MiB",
            "motivo MiB",
            "size ratio",
            "succ MiB",
            "succ saved",
        ],
        &rows,
    );
    ctx.save_json(&format!("{which}_build_comparison"), &artifacts);
}

/// §5.1 sampling-speed ratio: motivo samples/s vs CC samples/s.
fn t4(ctx: &Ctx) {
    let suite = cc_comparison_graphs(ctx);
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for s in &suite {
        for &k in &cc_ks(ctx) {
            let seed = 7;
            let coloring = Coloring::uniform(&s.graph, k, seed);
            let cc = cc_build(&s.graph, &coloring, k);
            if cc.total_rooted() == 0 {
                continue;
            }
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(k)
            }
            .seed(seed);
            let urn = match build_urn(&s.graph, &cfg) {
                Ok(u) => u,
                Err(_) => continue,
            };
            let rate_motivo = {
                let mut smp = Sampler::new(&urn, SampleConfig::seeded(3));
                timed_rate(|| {
                    smp.sample_copy();
                })
            };
            let rate_cc = {
                let mut smp = CcSampler::new(&cc, &s.graph, 3);
                timed_rate(|| {
                    smp.sample_copy();
                })
            };
            rows.push(vec![
                s.name.to_string(),
                k.to_string(),
                format!("{rate_cc:.0}"),
                format!("{rate_motivo:.0}"),
                format!("{:.1}x", rate_motivo / rate_cc),
            ]);
            artifacts.push(json!({
                "graph": s.name, "k": k,
                "cc_samples_per_s": rate_cc,
                "motivo_samples_per_s": rate_motivo,
                "ratio": rate_motivo / rate_cc,
            }));
        }
    }
    print_table(
        "T4: sampling speed, motivo vs CC (paper §5.1; samples/s, 1 thread)",
        &["graph", "k", "CC /s", "motivo /s", "ratio"],
        &rows,
    );
    ctx.save_json("t4_sampling_speed", &artifacts);
}

/// Encoded bytes the urn's count table would occupy under the succinct
/// codec, computed by recoding the already-built records — the codec never
/// changes counts, so a second build would only burn wall-clock.
fn succinct_table_bytes(urn: &motivo_core::Urn<'_>) -> u64 {
    let table = urn.table();
    let mut bytes = 0u64;
    for h in 1..=table.k() {
        for item in table.level(h).scan() {
            let (_, rec) = item.expect("in-memory table");
            bytes += rec.recode(motivo_core::RecordCodec::Succinct).byte_size() as u64;
        }
    }
    bytes
}

/// Process-wide resident-set high-water mark (`VmHWM`) in bytes, or 0
/// where `/proc` is unavailable. Monotone over the process lifetime, so
/// it only bounds a phase's peak if that phase runs before anything
/// memory-hungry.
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Runs `f` repeatedly for ~1.5 s and returns calls per second.
fn timed_rate(mut f: impl FnMut()) -> f64 {
    let budget = Duration::from_millis(1500);
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < budget {
        for _ in 0..100 {
            f();
        }
        calls += 100;
    }
    calls as f64 / start.elapsed().as_secs_f64()
}

/// Fig. 2: time spent in check-and-merge, original vs succinct.
fn f2(ctx: &Ctx) {
    let suite = cc_comparison_graphs(ctx);
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for s in &suite {
        for &k in &cc_ks(ctx) {
            let coloring = Coloring::uniform(&s.graph, k, 5);
            let succ = succinct_checkmerge(&s.graph, &coloring, k);
            let cc = cc_checkmerge(&s.graph, &coloring, k);
            assert_eq!(succ.checksum, cc.checksum, "sides must do identical work");
            rows.push(vec![
                s.name.to_string(),
                k.to_string(),
                format!("{}", succ.ops),
                format!("{:.1}", cc.elapsed.as_secs_f64() * 1e3),
                format!("{:.1}", succ.elapsed.as_secs_f64() * 1e3),
                format!(
                    "{:.1}x",
                    cc.elapsed.as_secs_f64() / succ.elapsed.as_secs_f64()
                ),
            ]);
            artifacts.push(json!({
                "graph": s.name, "k": k, "ops": succ.ops,
                "original_ms": cc.elapsed.as_secs_f64() * 1e3,
                "succinct_ms": succ.elapsed.as_secs_f64() * 1e3,
            }));
        }
    }
    print_table(
        "F2: check-and-merge time, original (pointer) vs succinct",
        &["graph", "k", "ops", "original ms", "succinct ms", "speedup"],
        &rows,
    );
    ctx.save_json("f2_checkmerge", &artifacts);
}

/// Fig. 4: impact of 0-rooting on the build.
fn f4(ctx: &Ctx) {
    let suite = generators::suite(ctx.scale);
    let ks = if ctx.quick { vec![5] } else { vec![5, 6] };
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for s in &suite {
        for &k in &ks {
            if k > s.max_k {
                continue;
            }
            let time_for = |zero_rooting: bool| {
                let cfg = BuildConfig {
                    threads: ctx.threads,
                    zero_rooting,
                    ..BuildConfig::new(k)
                }
                .seed(9);
                build_urn(&s.graph, &cfg)
                    .map(|u| (u.build_stats().total, u.build_stats().table_bytes))
                    .ok()
            };
            let (Some((off, off_bytes)), Some((on, on_bytes))) = (time_for(false), time_for(true))
            else {
                continue;
            };
            rows.push(vec![
                s.name.to_string(),
                k.to_string(),
                secs(off),
                secs(on),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - on.as_secs_f64() / off.as_secs_f64())
                ),
                format!("{:.0}%", 100.0 * (1.0 - on_bytes as f64 / off_bytes as f64)),
            ]);
            artifacts.push(json!({
                "graph": s.name, "k": k,
                "original_s": off.as_secs_f64(), "zero_rooting_s": on.as_secs_f64(),
                "original_bytes": off_bytes, "zero_rooting_bytes": on_bytes,
            }));
        }
    }
    print_table(
        "F4: impact of 0-rooting on the build-up phase",
        &[
            "graph",
            "k",
            "original s",
            "0-rooted s",
            "time saved",
            "space saved",
        ],
        &rows,
    );
    ctx.save_json("f4_zero_rooting", &artifacts);
}

/// Fig. 5: impact of neighbor buffering on hub-heavy graphs.
fn f5(ctx: &Ctx) {
    let s = ctx.scale;
    let graphs = vec![
        ("hub-web", generators::star_heavy(3_000 * s, 3, 0.5, 3)),
        (
            "berkstan-like",
            generators::star_heavy(4_000 * s, 2, 0.9, 8),
        ),
        (
            "yelp-stars",
            generators::yelp_like(40 * s, 150, 60 * s as usize, 4),
        ),
    ];
    let k = 5;
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for (name, g) in &graphs {
        let cfg = BuildConfig {
            threads: ctx.threads,
            ..BuildConfig::new(k)
        }
        .seed(2);
        let urn = match build_urn(g, &cfg) {
            Ok(u) => u,
            Err(e) => {
                println!("  {name}: {e}");
                continue;
            }
        };
        let rate = |buffering: bool| {
            let sc = SampleConfig {
                seed: 4,
                buffering,
                buffer_threshold: 512,
                buffer_batch: 100,
                ..SampleConfig::default()
            };
            let mut smp = Sampler::new(&urn, sc);
            timed_rate(|| {
                smp.sample_copy();
            })
        };
        let (plain, buffered) = (rate(false), rate(true));
        rows.push(vec![
            name.to_string(),
            k.to_string(),
            format!("{plain:.0}"),
            format!("{buffered:.0}"),
            format!("{:.1}x", buffered / plain),
        ]);
        artifacts.push(json!({
            "graph": name, "k": k,
            "original_samples_per_s": plain,
            "buffered_samples_per_s": buffered,
        }));
    }
    print_table(
        "F5: impact of neighbor buffering (samples/s)",
        &["graph", "k", "original /s", "buffered /s", "speedup"],
        &rows,
    );
    ctx.save_json("f5_neighbor_buffering", &artifacts);
}

/// Fig. 6 (+ §3.4 impact): biased coloring — error distribution widening
/// and build shrink factors.
fn f6(ctx: &Ctx) {
    let g = generators::barabasi_albert(800 * ctx.scale, 3, 6);
    let ks = if ctx.quick { vec![5] } else { vec![5, 6] };
    let mut artifacts = Vec::new();
    for &k in &ks {
        let gt = ground_truth(&g, k, 100);
        let truth = &gt.counts;
        let lambda = 0.5 / k as f64;
        let mut series = Vec::new();
        for biased in [false, true] {
            // Per-graphlet errors averaged over a handful of colorings.
            let mut errs_all: Vec<f64> = Vec::new();
            let mut build_time = Duration::ZERO;
            let mut bytes = 0usize;
            let colorings = 5;
            for seed in 0..colorings {
                let mut cfg = BuildConfig {
                    threads: ctx.threads,
                    ..BuildConfig::new(k)
                }
                .seed(seed);
                if biased {
                    cfg = cfg.biased(lambda);
                }
                let urn = match build_urn(&g, &cfg) {
                    Ok(u) => u,
                    Err(_) => continue,
                };
                build_time += urn.build_stats().total;
                bytes = urn.build_stats().table_bytes;
                let run = naive_run(&urn, 100_000, ctx.threads, seed + 40);
                errs_all.extend(errors_vs_truth(&run.counts, truth).iter().map(|&(_, e)| e));
            }
            let h = histogram(errs_all.iter().copied(), -1.0, 1.0, 16);
            let label = if biased {
                format!("biased λ={lambda:.3}")
            } else {
                "uniform".into()
            };
            println!(
                "\nF6: k={k} {label} count-error distribution (truth: {} classes{})",
                truth.len(),
                if gt.exact { ", exact" } else { ", averaged" }
            );
            print!("{}", text_histogram(&h, -1.0, 1.0, 40));
            println!(
                "   build {:.2}s  table {:.1} MiB",
                build_time.as_secs_f64() / colorings as f64,
                bytes as f64 / (1 << 20) as f64
            );
            series.push(json!({
                "k": k, "biased": biased, "lambda": if biased { lambda } else { 1.0 / k as f64 },
                "histogram": h, "lo": -1.0, "hi": 1.0,
                "avg_build_s": build_time.as_secs_f64() / colorings as f64,
                "table_bytes": bytes,
            }));
        }
        artifacts.push(json!({ "k": k, "series": series }));
    }
    ctx.save_json("f6_biased_coloring", &artifacts);
}

/// Fig. 7: build time per million edges and table bits per node, vs k.
fn f7(ctx: &Ctx) {
    let suite = generators::suite(ctx.scale);
    let max_k = if ctx.quick { 5 } else { 6 };
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for s in &suite {
        for k in 4..=max_k.min(s.max_k) {
            let cfg = BuildConfig {
                threads: ctx.threads,
                ..BuildConfig::new(k)
            }
            .seed(3);
            let urn = match build_urn(&s.graph, &cfg) {
                Ok(u) => u,
                Err(_) => continue,
            };
            let st = urn.build_stats();
            let s_per_medge = st.total.as_secs_f64() / (s.graph.num_edges() as f64 / 1e6);
            let bits_per_node = st.table_bytes as f64 * 8.0 / s.graph.num_nodes() as f64;
            let succ_bits_per_node =
                succinct_table_bytes(&urn) as f64 * 8.0 / s.graph.num_nodes() as f64;
            rows.push(vec![
                s.name.to_string(),
                k.to_string(),
                format!("{s_per_medge:.2}"),
                format!("{bits_per_node:.0}"),
                format!("{succ_bits_per_node:.0}"),
            ]);
            artifacts.push(json!({
                "graph": s.name, "k": k,
                "seconds_per_million_edges": s_per_medge,
                "bits_per_node": bits_per_node,
                "bits_per_node_succinct": succ_bits_per_node,
            }));
        }
    }
    print_table(
        "F7: build-up cost scaling (seconds per M edges, table bits per node)",
        &["graph", "k", "s/Medge", "bits/node", "succ bits/node"],
        &rows,
    );
    ctx.save_json("f7_scaling", &artifacts);
}

/// Figs. 8–10 and the §5.2 ℓ1 table: accuracy of naive vs AGS against
/// ground truth, one shared set of runs.
fn accuracy_experiments(ctx: &Ctx, which: &str) {
    let suite = accuracy_suite(ctx.scale);
    let mut f9_rows = Vec::new();
    let mut f10_rows = Vec::new();
    let mut l1_rows = Vec::new();
    let mut artifacts = Vec::new();
    for s in &suite {
        for &k in &s.ks {
            if ctx.quick && k > 4 {
                continue;
            }
            let gt = ground_truth(&s.graph, k, 300);
            let truth = &gt.counts;
            let truth_freq = gt.frequencies();
            let budget = if k <= 4 { 120_000 } else { 250_000 };
            // The paper's protocol: average each estimator over several
            // colorings (it reports the average of 10 runs).
            let colorings = if ctx.quick { 4 } else { 8 };
            let naive = motivo_bench::runs::averaged_run(
                &s.graph,
                k,
                colorings,
                11,
                ctx.threads,
                |urn, seed| naive_run(urn, budget, ctx.threads, seed),
            );
            let agsr = motivo_bench::runs::averaged_run(
                &s.graph,
                k,
                colorings,
                11,
                ctx.threads,
                |urn, seed| ags_run(urn, budget, 1000, seed),
            );

            let errs_naive = errors_vs_truth(&naive.counts, truth);
            let errs_ags = errors_vs_truth(&agsr.counts, truth);
            if which == "f8" {
                for (label, errs) in [("naive", &errs_naive), ("AGS", &errs_ags)] {
                    let h = histogram(errs.iter().map(|&(_, e)| e), -1.0, 1.5, 20);
                    println!(
                        "\nF8: {} k={k} {label} count-error distribution ({} truth classes{})",
                        s.name,
                        truth.len(),
                        if gt.exact { ", exact" } else { ", averaged" }
                    );
                    print!("{}", text_histogram(&h, -1.0, 1.5, 40));
                    artifacts.push(json!({
                        "graph": s.name, "k": k, "estimator": label,
                        "histogram": h, "lo": -1.0, "hi": 1.5,
                    }));
                }
            }
            let within =
                |errs: &[(u128, f64)]| errs.iter().filter(|&&(_, e)| e.abs() <= 0.5).count();
            let (wn, wa) = (within(&errs_naive), within(&errs_ags));
            f9_rows.push(vec![
                s.name.to_string(),
                k.to_string(),
                truth.len().to_string(),
                wn.to_string(),
                wa.to_string(),
                format!("{:.2}", wn as f64 / truth.len() as f64),
                format!("{:.2}", wa as f64 / truth.len() as f64),
            ]);
            let (rn, ra) = (naive.rarest_frequency(10), agsr.rarest_frequency(10));
            f10_rows.push(vec![
                s.name.to_string(),
                k.to_string(),
                format!("{rn:.2e}"),
                format!("{ra:.2e}"),
            ]);
            let (l1n, l1a) = (
                l1(&naive.frequencies(), &truth_freq),
                l1(&agsr.frequencies(), &truth_freq),
            );
            l1_rows.push(vec![
                s.name.to_string(),
                k.to_string(),
                format!("{l1n:.4}"),
                format!("{l1a:.4}"),
            ]);
            if which != "f8" {
                artifacts.push(json!({
                    "graph": s.name, "k": k,
                    "classes": truth.len(),
                    "within50_naive": wn, "within50_ags": wa,
                    "rarest_naive": rn, "rarest_ags": ra,
                    "l1_naive": l1n, "l1_ags": l1a,
                }));
            }
        }
    }
    match which {
        "f9" => print_table(
            "F9: classes within ±50% of truth (absolute and fraction)",
            &[
                "graph",
                "k",
                "classes",
                "naive",
                "AGS",
                "naive frac",
                "AGS frac",
            ],
            &f9_rows,
        ),
        "f10" => print_table(
            "F10: frequency of the rarest class with ≥10 samples",
            &["graph", "k", "naive", "AGS"],
            &f10_rows,
        ),
        "l1" => print_table(
            "L1: ℓ1 error of the estimated graphlet distribution (§5.2)",
            &["graph", "k", "naive ℓ1", "AGS ℓ1"],
            &l1_rows,
        ),
        _ => {}
    }
    ctx.save_json(&format!("{which}_accuracy"), &artifacts);
}

/// S1: scaling of the parallel naive sampling engine — wall-clock and
/// speedup at 1/2/4/8 workers on the benchmark graph. Thanks to the
/// seed-split shard scheme the per-thread tallies are bit-identical, so
/// the rows measure pure scheduling, not different sample streams.
fn s1(ctx: &Ctx) {
    let g = generators::barabasi_albert(20_000 * ctx.scale, 4, 11);
    let k = 5;
    let samples = if ctx.quick { 50_000 } else { 200_000 } * ctx.scale as u64;
    let cfg = BuildConfig {
        threads: ctx.threads,
        ..BuildConfig::new(k)
    }
    .seed(3);
    let urn = build_urn(&g, &cfg).expect("build");
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    let mut base_secs = 0.0;
    let mut baseline_tally = None;
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let (tally, _) =
            motivo_core::sample_tally(&urn, samples, &SampleConfig::seeded(1).threads(threads));
        let secs = t0.elapsed().as_secs_f64();
        match &baseline_tally {
            None => {
                base_secs = secs;
                baseline_tally = Some(tally);
            }
            Some(base) => assert_eq!(base, &tally, "seed-split determinism violated"),
        }
        rows.push(vec![
            threads.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", samples as f64 / secs),
            format!("{:.2}x", base_secs / secs),
        ]);
        artifacts.push(json!({
            "threads": threads, "samples": samples, "secs": secs,
            "speedup": base_secs / secs,
        }));
    }
    print_table(
        "S1: parallel naive sampling scaling (bit-identical tallies per row)",
        &["threads", "secs", "samples/s", "speedup"],
        &rows,
    );
    ctx.save_json("s1_scaling", &artifacts);
}

/// CI: the per-commit perf smoke run — a tiny graph, bounded to seconds,
/// asserting seed-split determinism (1/2/4 threads must tally
/// bit-identically) and recording the build-time, memory
/// (`bits_per_node_succinct` from the codec work), and serving-throughput
/// trajectory (`serve_qps`/`cache_hit_qps` over a loopback daemon) as
/// `BENCH_ci.json`. CI diffs that artifact against the committed
/// `BENCH_baseline.json` (`bench_gate`): deterministic fields — including
/// `tally_checksum` — must match exactly, timing fields within a generous
/// tolerance.
fn ci(ctx: &Ctx) {
    let g = generators::barabasi_albert(2_000 * ctx.scale, 3, 7);
    let k = 4;
    let samples = 50_000u64 * ctx.scale as u64;

    // Out-of-core gate. A deliberately tiny memtable budget forces the
    // build through the spill+merge path (≥ 2 runs asserted), and the
    // result must be record-identical to the unbudgeted in-memory build
    // below. This phase runs first so the process RSS high-water mark
    // (`VmHWM`) still reflects the budgeted build rather than the
    // in-memory table built afterwards.
    let oom_dir = std::env::temp_dir().join("motivo-bench-ci-oom");
    std::fs::remove_dir_all(&oom_dir).ok();
    std::fs::create_dir_all(&oom_dir).expect("oom scratch dir");
    let budgeted = build_urn(
        &g,
        &BuildConfig {
            threads: 1,
            ..BuildConfig::new(k)
        }
        .seed(3)
        .build_mem_bytes(&oom_dir, 32 * 1024),
    )
    .expect("budgeted ci build");
    let build_spill_runs = budgeted.build_stats().spill_runs;
    assert!(
        build_spill_runs >= 2,
        "budget too generous: only {build_spill_runs} spill runs"
    );
    let peak_rss_bytes_per_edge = peak_rss_bytes() as f64 / g.num_edges() as f64;

    let t0 = Instant::now();
    let urn = build_urn(
        &g,
        &BuildConfig {
            threads: ctx.threads,
            ..BuildConfig::new(k)
        }
        .seed(3),
    )
    .expect("ci build");
    let build_secs = t0.elapsed().as_secs_f64();
    let st = urn.build_stats();

    // The budgeted build must agree with the in-memory one entry for
    // entry — the spill/merge machinery may never change what is counted.
    for h in 1..=k {
        let (mem, blk) = (urn.table().level(h), budgeted.table().level(h));
        assert_eq!(
            mem.record_count(),
            blk.record_count(),
            "budgeted build record count diverged at level {h}"
        );
        for item in blk.scan() {
            let (v, rec) = item.expect("budgeted level scan");
            let reference = urn.table().get(h, v).expect("in-memory get");
            assert!(
                reference.iter().eq(rec.iter()),
                "budgeted build diverged at level {h} vertex {v}"
            );
        }
    }
    drop(budgeted);
    std::fs::remove_dir_all(&oom_dir).ok();

    // Determinism gate: the seed-split shard scheme must make the tally a
    // pure function of (samples, seed), independent of thread count.
    let mut baseline = None;
    let mut sample_secs = 0.0;
    for threads in [1usize, 2, 4] {
        let t0 = Instant::now();
        let (tally, _) =
            motivo_core::sample_tally(&urn, samples, &SampleConfig::seeded(1).threads(threads));
        match &baseline {
            None => {
                sample_secs = t0.elapsed().as_secs_f64();
                baseline = Some(tally);
            }
            Some(base) => assert_eq!(
                base, &tally,
                "seed-split determinism violated at {threads} threads"
            ),
        }
    }
    // A content fingerprint of the deterministic tally: CRC32 over the
    // (code, count) pairs ascending by code. Any sampling change that
    // alters a single count changes this checksum, and the perf gate
    // compares it exactly against the committed baseline.
    let tally_checksum = {
        let tally = baseline.as_ref().expect("tally recorded");
        let mut rows: Vec<(u128, u64)> = tally.iter().map(|(&c, &n)| (c, n)).collect();
        rows.sort_unstable_by_key(|&(c, _)| c);
        let mut crc = motivo_core::checksum::Crc32::new();
        for (code, count) in rows {
            crc.update(&code.to_le_bytes());
            crc.update(&count.to_le_bytes());
        }
        format!("{:08x}", crc.finish())
    };

    // Isolated kernel rates (shared with the `kernels` criterion bench)
    // so a block-decode or alias-walk regression cannot hide inside the
    // mixed `samples_per_sec` number.
    let decode_entries_per_sec = motivo_bench::kernels::decode_entries_per_sec();
    let alias_draws_per_sec = motivo_bench::kernels::alias_draws_per_sec();
    let serving = ci_serving_rates(&g, ctx);
    let repl = ci_replication(&g, ctx);
    let idle = ci_idle_concurrency(&g, ctx);

    let bits_per_node = st.table_bytes as f64 * 8.0 / g.num_nodes() as f64;
    let succinct_bytes = succinct_table_bytes(&urn);
    let bits_per_node_succinct = succinct_bytes as f64 * 8.0 / g.num_nodes() as f64;
    print_table(
        "CI: perf smoke (deterministic tallies asserted at 1/2/4 threads)",
        &["metric", "value"],
        &[
            vec!["build secs".into(), format!("{build_secs:.3}")],
            vec!["sample secs (1 thread)".into(), format!("{sample_secs:.3}")],
            vec![
                "samples/s".into(),
                format!("{:.0}", samples as f64 / sample_secs),
            ],
            vec!["bits/node plain".into(), format!("{bits_per_node:.0}")],
            vec![
                "bits/node succinct".into(),
                format!("{bits_per_node_succinct:.0}"),
            ],
            vec!["tally checksum".into(), tally_checksum.clone()],
            vec!["build spill runs".into(), format!("{build_spill_runs}")],
            vec![
                "peak RSS bytes/edge".into(),
                format!("{peak_rss_bytes_per_edge:.0}"),
            ],
            vec![
                "decode entries/s".into(),
                format!("{decode_entries_per_sec:.0}"),
            ],
            vec!["alias draws/s".into(), format!("{alias_draws_per_sec:.0}")],
            vec![
                "serve qps (cold)".into(),
                format!("{:.0}", serving.serve_qps),
            ],
            vec![
                "serve qps (cache hit)".into(),
                format!("{:.0}", serving.cache_hit_qps),
            ],
            vec![
                "serve p50/p99 (cold)".into(),
                format!("{}us / {}us", serving.serve_p50_us, serving.serve_p99_us),
            ],
            vec![
                "serve p50/p99 (cache hit)".into(),
                format!(
                    "{}us / {}us",
                    serving.cache_hit_p50_us, serving.cache_hit_p99_us
                ),
            ],
            vec![
                "replica catch-up secs (2 replicas)".into(),
                format!("{:.3}", repl.replica_catchup_secs),
            ],
            vec![
                "replicated read qps".into(),
                format!("{:.0}", repl.replicated_read_qps),
            ],
            vec![
                "idle conns held".into(),
                format!("{}", idle.idle_conns_held),
            ],
            vec![
                "concurrent active qps".into(),
                format!("{:.0}", idle.concurrent_active_qps),
            ],
        ],
    );
    ctx.save_json(
        "BENCH_ci",
        &json!({
            "graph_nodes": g.num_nodes(),
            "graph_edges": g.num_edges(),
            "k": k,
            "samples": samples,
            "build_secs": build_secs,
            "sample_secs": sample_secs,
            "samples_per_sec": samples as f64 / sample_secs,
            "table_bytes_plain": st.table_bytes,
            "table_bytes_succinct": succinct_bytes,
            "bits_per_node_plain": bits_per_node,
            "bits_per_node_succinct": bits_per_node_succinct,
            "tally_checksum": tally_checksum,
            "build_spill_runs": build_spill_runs,
            "peak_rss_bytes_per_edge": peak_rss_bytes_per_edge,
            "decode_entries_per_sec": decode_entries_per_sec,
            "alias_draws_per_sec": alias_draws_per_sec,
            "serve_qps": serving.serve_qps,
            "cache_hit_qps": serving.cache_hit_qps,
            "serve_p50_us": serving.serve_p50_us,
            "serve_p99_us": serving.serve_p99_us,
            "cache_hit_p50_us": serving.cache_hit_p50_us,
            "cache_hit_p99_us": serving.cache_hit_p99_us,
            "replica_catchup_secs": repl.replica_catchup_secs,
            "replicated_read_qps": repl.replicated_read_qps,
            "idle_conns_held": idle.idle_conns_held,
            "concurrent_active_qps": idle.concurrent_active_qps,
            "determinism": "ok",
        }),
    );
}

/// What the loopback serving phase measured: round-trip rates plus
/// client-observed latency quantiles (microseconds, from a
/// `motivo_obs::Histogram` per phase — the same estimator the server's
/// own metrics use, so baseline numbers stay comparable across layers).
struct CiServing {
    serve_qps: f64,
    cache_hit_qps: f64,
    serve_p50_us: u64,
    serve_p99_us: u64,
    cache_hit_p50_us: u64,
    cache_hit_p99_us: u64,
}

/// Serving throughput over a real loopback daemon: `serve_qps` drives
/// distinct-seed requests (every one a cache miss running the estimator),
/// `cache_hit_qps` repeats one seeded request (after warmup, every one a
/// cache replay). Single blocking client, so both numbers are
/// latency-bound round-trip rates — the trajectory metric the perf gate
/// watches, not a saturation benchmark. Per-request round trips are also
/// recorded into latency histograms, and their p50/p99 feed the gate's
/// quantile fields (noise-floored there, so only real tail blowups gate).
fn ci_serving_rates(g: &motivo_graph::Graph, ctx: &Ctx) -> CiServing {
    use motivo_obs::Histogram;
    use motivo_server::{Client, ServeOptions, Server};
    use motivo_store::UrnStore;
    use serde_json::Value;
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("motivo-bench-ci-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Arc::new(UrnStore::open(&dir).expect("open bench store"));
    let handle = store
        .build_or_get(
            g,
            &BuildConfig {
                threads: ctx.threads,
                ..BuildConfig::new(4)
            }
            .seed(3),
        )
        .expect("enqueue ci build");
    handle.wait().expect("ci store build");

    let opts = ServeOptions::builder()
        .workers(2)
        .queue_depth(64)
        .build()
        .expect("serve options");
    let server = Server::bind(store, "127.0.0.1:0", opts).expect("bind loopback server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let request = |client: &mut Client, seed: u64| {
        let ok = client
            .request(&json!({
                "type": "NaiveEstimates", "urn": 0, "samples": 2_000, "seed": seed,
            }))
            .expect("serve request");
        serde_json::to_string(&ok).expect("serialize")
    };

    // Warmup (load the urn, JIT the path) — and pin the hit-phase payload.
    let expected = request(&mut client, 1_000_000);

    let cold_hist = Histogram::new();
    let cold_rounds = 48u64;
    let t0 = Instant::now();
    for seed in 0..cold_rounds {
        let r0 = Instant::now();
        request(&mut client, seed);
        cold_hist.record_duration(r0.elapsed());
    }
    let serve_qps = cold_rounds as f64 / t0.elapsed().as_secs_f64();

    let hit_hist = Histogram::new();
    let hit_rounds = 256u64;
    let t0 = Instant::now();
    for _ in 0..hit_rounds {
        let r0 = Instant::now();
        let payload = request(&mut client, 1_000_000);
        hit_hist.record_duration(r0.elapsed());
        // A hard assert — CI runs this with --release, and a cache
        // replaying wrong bytes must fail the smoke job, not time it.
        assert_eq!(payload, expected, "cached replay diverged from cold bytes");
    }
    let cache_hit_qps = hit_rounds as f64 / t0.elapsed().as_secs_f64();

    // The hit phase must actually have hit: one miss for the warmup seed,
    // plus one per cold-phase seed.
    let stats = client
        .request(&json!({"type": "Stats"}))
        .expect("stats request");
    let hits = stats
        .get("query_cache")
        .and_then(|qc: Value| qc.get("hits"))
        .and_then(|h| h.as_u64())
        .expect("query_cache.hits in Stats");
    assert!(
        hits >= hit_rounds,
        "cache hit phase did not hit the cache ({hits} hits)"
    );

    client
        .request(&json!({"type": "Shutdown"}))
        .expect("shutdown");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
    let (cold, hit) = (cold_hist.snapshot(), hit_hist.snapshot());
    CiServing {
        serve_qps,
        cache_hit_qps,
        serve_p50_us: cold.quantile(0.5) / 1_000,
        serve_p99_us: cold.quantile(0.99) / 1_000,
        cache_hit_p50_us: hit.quantile(0.5) / 1_000,
        cache_hit_p99_us: hit.quantile(0.99) / 1_000,
    }
}

/// What the replication phase measured.
struct CiReplication {
    replica_catchup_secs: f64,
    replicated_read_qps: f64,
}

/// Replicated serving over loopback: a leader plus two empty replicas.
/// `replica_catchup_secs` is the wall-clock for both replicas to
/// bootstrap the sealed urn off the leader and report caught-up;
/// `replicated_read_qps` then drives distinct-seed estimate reads
/// round-robin across the replicas, asserting every response is
/// byte-identical to the leader's for the same seed (the determinism
/// guarantee replication rests on). Single blocking client per server, so
/// the rate is a latency-bound round trip, comparable to `serve_qps`.
fn ci_replication(g: &motivo_graph::Graph, ctx: &Ctx) -> CiReplication {
    use motivo_server::{Client, ServeOptions, Server};
    use motivo_store::UrnStore;
    use std::sync::Arc;
    use std::time::Duration;

    let base = std::env::temp_dir().join(format!("motivo-bench-repl-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let leader_dir = base.join("leader");
    std::fs::create_dir_all(&leader_dir).expect("leader dir");
    let store = Arc::new(UrnStore::open(&leader_dir).expect("open leader store"));
    let handle = store
        .build_or_get(
            g,
            &BuildConfig {
                threads: ctx.threads,
                ..BuildConfig::new(4)
            }
            .seed(3),
        )
        .expect("enqueue leader build");
    handle.wait().expect("leader build");
    let opts = ServeOptions::builder()
        .workers(2)
        .queue_depth(64)
        .build()
        .expect("leader options");
    let leader = Server::bind(store, "127.0.0.1:0", opts).expect("bind leader");

    let spawn_replica = |i: usize| {
        let dir = base.join(format!("replica-{i}"));
        std::fs::create_dir_all(&dir).expect("replica dir");
        let store =
            Arc::new(UrnStore::open_replica(&dir, Default::default()).expect("open replica store"));
        let opts = ServeOptions::builder()
            .workers(2)
            .queue_depth(64)
            .replica_of(leader.addr().to_string())
            .repl_poll_ms(25)
            .build()
            .expect("replica options");
        Server::bind(store, "127.0.0.1:0", opts).expect("bind replica")
    };
    let replicas = [spawn_replica(0), spawn_replica(1)];

    // Catch-up: both replicas from empty to caught-up with the urn built,
    // observed through their own `ReplStatus`.
    let t0 = Instant::now();
    let mut clients: Vec<Client> = replicas
        .iter()
        .map(|r| Client::connect(r.addr()).expect("connect replica"))
        .collect();
    for client in &mut clients {
        loop {
            let status = client
                .request(&json!({"type": "ReplStatus"}))
                .expect("repl status");
            let caught = status
                .get("sync")
                .map(|s| {
                    s.get("connected").and_then(|v| v.as_bool()) == Some(true)
                        && s.get("caught_up").and_then(|v| v.as_bool()) == Some(true)
                })
                .unwrap_or(false);
            if caught {
                let urns = client
                    .request(&json!({"type": "ListUrns"}))
                    .expect("list urns");
                let built = urns
                    .get("urns")
                    .and_then(|u| u.as_array())
                    .map(|rows| {
                        rows.iter()
                            .filter(|r| {
                                r.get("status")
                                    .map(|s| s.as_str() == Some("built"))
                                    .unwrap_or(false)
                            })
                            .count()
                    })
                    .unwrap_or(0);
                if built == 1 {
                    break;
                }
            }
            assert!(
                t0.elapsed() < Duration::from_secs(120),
                "replica catch-up timed out"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let replica_catchup_secs = t0.elapsed().as_secs_f64();

    // Replicated reads: the leader's bytes are the reference; each seed's
    // response from a replica must match them exactly.
    let mut leader_client = Client::connect(leader.addr()).expect("connect leader");
    let request = |client: &mut Client, seed: u64| {
        let ok = client
            .request(&json!({
                "type": "NaiveEstimates", "urn": 0, "samples": 2_000, "seed": seed,
            }))
            .expect("replicated read");
        serde_json::to_string(&ok).expect("serialize")
    };
    let rounds = 48u64;
    let expected: Vec<String> = (0..rounds)
        .map(|s| request(&mut leader_client, s))
        .collect();
    let t0 = Instant::now();
    for seed in 0..rounds {
        let got = request(&mut clients[(seed % 2) as usize], seed);
        assert_eq!(
            got, expected[seed as usize],
            "replica bytes diverged from leader at seed {seed}"
        );
    }
    let replicated_read_qps = rounds as f64 / t0.elapsed().as_secs_f64();

    drop(clients);
    drop(leader_client);
    for r in replicas {
        // Replicas refuse a wire `Shutdown` (read-only); stop in-process.
        r.shutdown();
        r.join();
    }
    leader.shutdown();
    leader.join();
    std::fs::remove_dir_all(&base).ok();
    CiReplication {
        replica_catchup_secs,
        replicated_read_qps,
    }
}

/// What the idle/concurrency phase measured.
struct CiIdle {
    idle_conns_held: u64,
    concurrent_active_qps: f64,
}

/// The reactor's headline claim, measured: a loopback daemon on a fixed
/// two-worker pool holds 1000 idle connections while 4 concurrent
/// clients drive distinct-seed estimates (cache misses) through the
/// pool. `idle_conns_held` counts the idle set answering a ping after
/// the active phase — exact in the gate, because the event loop either
/// holds the full set or the architecture regressed.
/// `concurrent_active_qps` is the aggregate round-trip rate of the
/// active clients under that load, ratio-gated like the other rates.
fn ci_idle_concurrency(g: &motivo_graph::Graph, ctx: &Ctx) -> CiIdle {
    use motivo_server::{proto, Client, ServeOptions, Server};
    use motivo_store::UrnStore;
    use std::net::TcpStream;
    use std::sync::Arc;

    const IDLE_CONNS: usize = 1000;

    let dir = std::env::temp_dir().join(format!("motivo-bench-idle-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Arc::new(UrnStore::open(&dir).expect("open idle-phase store"));
    let handle = store
        .build_or_get(
            g,
            &BuildConfig {
                threads: ctx.threads,
                ..BuildConfig::new(4)
            }
            .seed(3),
        )
        .expect("enqueue idle-phase build");
    handle.wait().expect("idle-phase build");

    let opts = ServeOptions::builder()
        .workers(2)
        .queue_depth(64)
        .build()
        .expect("idle-phase options");
    let server = Server::bind(store, "127.0.0.1:0", opts).expect("bind idle-phase server");

    let mut idle: Vec<TcpStream> = (0..IDLE_CONNS)
        .map(|_| TcpStream::connect(server.addr()).expect("idle connect"))
        .collect();

    // Active phase: 4 clients, distinct seeds per request so every one
    // runs the estimator — the pool is the bottleneck, not the cache.
    let clients = 4u64;
    let rounds = 12u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let addr = server.addr();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("active connect");
                    for i in 0..rounds {
                        client
                            .request(&json!({
                                "type": "NaiveEstimates", "urn": 0,
                                "samples": 2_000, "seed": c * 10_000 + i,
                            }))
                            .expect("active request");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("active client");
        }
    });
    let concurrent_active_qps = (clients * rounds) as f64 / t0.elapsed().as_secs_f64();

    // Every idle connection must still be held and answering.
    let mut idle_conns_held = 0u64;
    for conn in idle.iter_mut() {
        proto::write_frame(conn, br#"{"id":"live","type":"Ping"}"#).expect("idle ping");
        let frame = proto::read_frame(conn)
            .expect("idle read")
            .expect("pong on an idle connection");
        assert!(
            std::str::from_utf8(&frame).expect("UTF-8 pong").contains("\"pong\""),
            "idle connection answered something other than a pong"
        );
        idle_conns_held += 1;
    }
    assert_eq!(
        idle_conns_held, IDLE_CONNS as u64,
        "reactor dropped idle connections"
    );

    drop(idle);
    let mut client = Client::connect(server.addr()).expect("shutdown connect");
    client
        .request(&json!({"type": "Shutdown"}))
        .expect("shutdown");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
    CiIdle {
        idle_conns_held,
        concurrent_active_qps,
    }
}
