//! CI perf-regression gate (see `motivo_bench::gate`): compares a fresh
//! `BENCH_ci.json` against the committed baseline and exits nonzero with
//! a readable per-field diff when the commit regresses.
//!
//! ```sh
//! cargo run --release -p motivo-bench --bin bench_gate -- \
//!     BENCH_baseline.json bench-artifacts/BENCH_ci.json [--tolerance 3.0]
//! ```

use motivo_bench::gate::{compare, DEFAULT_TOLERANCE};
use serde_json::Value;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1.0)
                    .ok_or("--tolerance expects a factor >= 1.0")?;
            }
            p => paths.push(p.to_string()),
        }
    }
    let [baseline_path, fresh_path] = &paths[..] else {
        return Err("usage: bench_gate <baseline.json> <fresh.json> [--tolerance X]".into());
    };
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    let report = compare(&baseline, &fresh, tolerance);
    println!("perf gate: {fresh_path} vs baseline {baseline_path} (tolerance {tolerance:.1}x)");
    for line in &report.lines {
        println!("  {line}");
    }
    if report.passed() {
        println!("perf gate PASSED");
    } else {
        println!(
            "perf gate FAILED ({} of {} fields):",
            report.failures.len(),
            report.lines.len()
        );
        for failure in &report.failures {
            println!("  {failure}");
        }
        println!("(deterministic drift or an intended perf change? see README \"Refreshing the perf baseline\")");
    }
    Ok(report.passed())
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}
