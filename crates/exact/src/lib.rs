//! Exact induced k-subgraph counting — the ground truth of §5.
//!
//! The paper computes exact 5-graphlet counts with ESCAPE; ESCAPE is a
//! k ≤ 5-specialized counter, so we substitute **ESU** (Wernicke's
//! FANMOD enumerator), which enumerates every connected induced k-vertex
//! subgraph exactly once for any `k` and matches ESCAPE's role bit-for-bit
//! at the scales this reproduction runs (see DESIGN.md, substitutions).
//!
//! ESU grows a subgraph `V_sub` from an anchor vertex `v`, keeping an
//! *extension set* of vertices that (a) have a neighbor in `V_sub`, (b) have
//! id greater than the anchor, and (c) were not already adjacent to the
//! subgraph when added — the classic bookkeeping that makes each connected
//! k-set appear exactly once.
//!
//! A brute-force `C(n, k)` counter is included for cross-checking on tiny
//! graphs.

use motivo_graph::Graph;
use motivo_graphlet::{CanonicalCache, Graphlet, GraphletRegistry};
use std::collections::HashMap;

/// Exact per-class counts: canonical code → number of induced occurrences.
#[derive(Clone, Debug)]
pub struct ExactCounts {
    /// Graphlet size.
    pub k: u8,
    /// Canonical code → exact induced count.
    pub counts: HashMap<u128, u64>,
    /// Total connected induced k-subgraphs.
    pub total: u64,
}

impl ExactCounts {
    /// Exact count of one graphlet (canonicalized before lookup).
    pub fn count_of(&self, g: &Graphlet) -> u64 {
        self.counts.get(&g.canonical().code()).copied().unwrap_or(0)
    }

    /// Number of distinct classes present.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Relative frequencies per canonical code.
    pub fn frequencies(&self) -> HashMap<u128, f64> {
        self.counts
            .iter()
            .map(|(&c, &n)| (c, n as f64 / self.total as f64))
            .collect()
    }

    /// Projects the counts onto a registry's dense indices (registering any
    /// class the registry has not seen).
    pub fn by_registry(&self, registry: &mut GraphletRegistry) -> HashMap<usize, u64> {
        self.counts
            .iter()
            .map(|(&code, &n)| {
                let g = Graphlet::from_code(code).expect("valid canonical code");
                (registry.classify(&g), n)
            })
            .collect()
    }
}

/// Exact counting via ESU enumeration.
pub fn count_exact(g: &Graph, k: u8) -> ExactCounts {
    assert!((1..=16).contains(&k));
    let n = g.num_nodes();
    let mut cache = CanonicalCache::new();
    let mut counts: HashMap<u128, u64> = HashMap::new();
    let mut total = 0u64;
    if k == 1 {
        counts.insert(Graphlet::empty(1).code(), n as u64);
        return ExactCounts {
            k,
            counts,
            total: n as u64,
        };
    }
    // blocked[u]: u is in the subgraph or was already adjacent to it when
    // the extension set was last widened (the "exclusive neighborhood").
    let mut blocked = vec![false; n as usize];
    let mut sub: Vec<u32> = Vec::with_capacity(k as usize);
    for v in 0..n {
        let ext: Vec<u32> = g.neighbors(v).iter().copied().filter(|&u| u > v).collect();
        blocked[v as usize] = true;
        for &u in g.neighbors(v) {
            blocked[u as usize] = true;
        }
        sub.push(v);
        extend(g, k, v, &mut sub, ext, &mut blocked, &mut |verts| {
            let rows = verts_rows(g, verts);
            let raw = Graphlet::from_rows(&rows);
            *counts.entry(cache.canonical_code(&raw)).or_insert(0) += 1;
            total += 1;
        });
        sub.pop();
        blocked[v as usize] = false;
        for &u in g.neighbors(v) {
            blocked[u as usize] = false;
        }
    }
    ExactCounts { k, counts, total }
}

fn verts_rows(g: &Graph, verts: &[u32]) -> Vec<u16> {
    g.induced_rows(verts)
}

/// The recursive ESU extension step.
fn extend(
    g: &Graph,
    k: u8,
    anchor: u32,
    sub: &mut Vec<u32>,
    mut ext: Vec<u32>,
    blocked: &mut [bool],
    emit: &mut impl FnMut(&[u32]),
) {
    if sub.len() == k as usize {
        emit(sub);
        return;
    }
    while let Some(w) = ext.pop() {
        // Exclusive neighbors of w: beyond the anchor, not in/adjacent to sub.
        let mut added: Vec<u32> = Vec::new();
        for &u in g.neighbors(w) {
            if u > anchor && !blocked[u as usize] {
                added.push(u);
                blocked[u as usize] = true;
            }
        }
        let mut next_ext = ext.clone();
        next_ext.extend_from_slice(&added);
        sub.push(w);
        extend(g, k, anchor, sub, next_ext, blocked, emit);
        sub.pop();
        for &u in &added {
            blocked[u as usize] = false;
        }
    }
}

/// Brute-force exact counting over all `C(n, k)` subsets (tiny graphs
/// only); the reference ESU is validated against.
pub fn count_exact_bruteforce(g: &Graph, k: u8) -> ExactCounts {
    let n = g.num_nodes();
    assert!(n <= 24, "brute force is for tiny graphs");
    let mut cache = CanonicalCache::new();
    let mut counts: HashMap<u128, u64> = HashMap::new();
    let mut total = 0u64;
    let mut subset: Vec<u32> = Vec::with_capacity(k as usize);
    fn rec(
        g: &Graph,
        k: u8,
        start: u32,
        subset: &mut Vec<u32>,
        cache: &mut CanonicalCache,
        counts: &mut HashMap<u128, u64>,
        total: &mut u64,
    ) {
        if subset.len() == k as usize {
            let rows = g.induced_rows(subset);
            let raw = Graphlet::from_rows(&rows);
            if raw.is_connected() {
                *counts.entry(cache.canonical_code(&raw)).or_insert(0) += 1;
                *total += 1;
            }
            return;
        }
        for v in start..g.num_nodes() {
            subset.push(v);
            rec(g, k, v + 1, subset, cache, counts, total);
            subset.pop();
        }
    }
    rec(g, k, 0, &mut subset, &mut cache, &mut counts, &mut total);
    ExactCounts { k, counts, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_graph::generators;
    use motivo_graphlet::{clique, cycle, path, star};

    #[test]
    fn clique_counts() {
        // K6 at k=3: C(6,3) = 20 triangles, nothing else.
        let g = generators::complete_graph(6);
        let exact = count_exact(&g, 3);
        assert_eq!(exact.total, 20);
        assert_eq!(exact.num_classes(), 1);
        assert_eq!(exact.count_of(&clique(3)), 20);
        assert_eq!(exact.count_of(&path(3)), 0);
    }

    #[test]
    fn path_graph_counts() {
        // A path on 10 vertices has exactly n−k+1 induced k-paths.
        let g = generators::path_graph(10);
        for k in 2..=5u8 {
            let exact = count_exact(&g, k);
            assert_eq!(exact.total, (10 - k as u64) + 1, "k={k}");
            assert_eq!(exact.num_classes(), 1);
            assert_eq!(exact.count_of(&path(k)), (10 - k as u64) + 1);
        }
    }

    #[test]
    fn cycle_graph_counts() {
        // C8 at k=4: 8 induced paths, no cycle (C4 is not induced in C8).
        let g = generators::cycle_graph(8);
        let exact = count_exact(&g, 4);
        assert_eq!(exact.count_of(&path(4)), 8);
        assert_eq!(exact.count_of(&cycle(4)), 0);
        // C4 at k=4 is the cycle itself.
        let g4 = generators::cycle_graph(4);
        let exact4 = count_exact(&g4, 4);
        assert_eq!(exact4.count_of(&cycle(4)), 1);
        assert_eq!(exact4.total, 1);
    }

    #[test]
    fn star_graph_counts() {
        // Star on n vertices at size k: C(n−1, k−1) induced stars only.
        let g = generators::star_graph(9);
        let exact = count_exact(&g, 4);
        assert_eq!(exact.total, 56); // C(8,3)
        assert_eq!(exact.count_of(&star(4)), 56);
        assert_eq!(exact.num_classes(), 1);
    }

    #[test]
    fn esu_matches_bruteforce_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(14, 30, seed);
            for k in 3..=5u8 {
                let esu = count_exact(&g, k);
                let bf = count_exact_bruteforce(&g, k);
                assert_eq!(esu.total, bf.total, "seed {seed} k {k}");
                assert_eq!(esu.counts, bf.counts, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn lollipop_has_the_rare_path() {
        let g = generators::lollipop(10, 4);
        let exact = count_exact(&g, 4);
        // Paths exist (through the tail) but are rare next to clique-heavy
        // classes.
        let p = exact.count_of(&path(4));
        let c = exact.count_of(&clique(4));
        assert!(p > 0);
        assert!(c == 210); // C(10,4)
        assert!(p < c / 10);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let g = generators::barabasi_albert(60, 3, 2);
        let exact = count_exact(&g, 4);
        let fsum: f64 = exact.frequencies().values().sum();
        assert!((fsum - 1.0).abs() < 1e-9);
        assert!(
            exact.num_classes() >= 4,
            "BA graphs have diverse 4-graphlets"
        );
    }

    #[test]
    fn registry_projection() {
        let g = generators::complete_graph(5);
        let exact = count_exact(&g, 4);
        let mut reg = GraphletRegistry::new(4);
        let by_idx = exact.by_registry(&mut reg);
        assert_eq!(by_idx.len(), 1);
        let (&idx, &cnt) = by_idx.iter().next().unwrap();
        assert_eq!(cnt, 5); // C(5,4)
        assert_eq!(reg.info(idx).graphlet, clique(4).canonical());
    }

    #[test]
    fn k1_and_k2() {
        let g = generators::path_graph(7);
        assert_eq!(count_exact(&g, 1).total, 7);
        assert_eq!(count_exact(&g, 2).total, 6); // edges
    }
}
