//! Accuracy metrics used throughout §5: per-graphlet count error, ℓ1
//! distance between graphlet distributions, ±50% coverage, and histogram
//! helpers for the error-distribution figures.

use std::collections::HashMap;

/// The §5.2 count error `err_H = (ĉ_H − c_H)/c_H`: `0` is perfect, `−1`
/// means the graphlet was missed entirely.
pub fn count_error(estimate: f64, truth: f64) -> f64 {
    assert!(
        truth > 0.0,
        "count error defined for graphlets present in G"
    );
    (estimate - truth) / truth
}

/// Per-class count errors for every class present in the ground truth;
/// classes the estimator missed contribute `−1`.
pub fn count_errors(
    estimates: &HashMap<usize, f64>,
    truth: &HashMap<usize, f64>,
) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = truth
        .iter()
        .filter(|&(_, &t)| t > 0.0)
        .map(|(&i, &t)| (i, count_error(estimates.get(&i).copied().unwrap_or(0.0), t)))
        .collect();
    out.sort_unstable_by_key(|&(i, _)| i);
    out
}

/// ℓ1 distance between two frequency vectors over the union of classes
/// (§5.2, "Error in ℓ1 norm").
pub fn l1_error(est: &HashMap<usize, f64>, truth: &HashMap<usize, f64>) -> f64 {
    let keys: std::collections::BTreeSet<usize> = est.keys().chain(truth.keys()).copied().collect();
    keys.into_iter()
        .map(|i| {
            (est.get(&i).copied().unwrap_or(0.0) - truth.get(&i).copied().unwrap_or(0.0)).abs()
        })
        .sum()
}

/// Fraction of classes whose estimate is within `±tol` of the truth
/// (Fig. 9 uses `tol = 0.5`).
pub fn fraction_within(errors: &[(usize, f64)], tol: f64) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    let hit = errors.iter().filter(|&&(_, e)| e.abs() <= tol).count();
    hit as f64 / errors.len() as f64
}

/// Number of classes within `±tol`.
pub fn count_within(errors: &[(usize, f64)], tol: f64) -> usize {
    errors.iter().filter(|&&(_, e)| e.abs() <= tol).count()
}

/// Fixed-width histogram over `[lo, hi]`, clamping outliers into the end
/// bins — the Fig. 6/8 error-distribution plots.
pub fn histogram(values: impl IntoIterator<Item = f64>, lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    assert!(bins >= 1 && hi > lo);
    let mut h = vec![0u64; bins];
    let width = (hi - lo) / bins as f64;
    for v in values {
        let idx = ((v - lo) / width).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        h[idx] += 1;
    }
    h
}

/// The `p`-th percentile (`0 ≤ p ≤ 100`) by nearest-rank on a copy of the
/// data. Used for the whiskers in the §5.2 plots.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty() && (0.0..=100.0).contains(&p));
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank]
}

/// Render a crude text bar chart (used by the experiments binary so the
/// figures are eyeballable straight from the terminal).
pub fn text_histogram(h: &[u64], lo: f64, hi: f64, max_width: usize) -> String {
    let peak = h.iter().copied().max().unwrap_or(0).max(1);
    let width = (hi - lo) / h.len() as f64;
    let mut out = String::new();
    for (i, &c) in h.iter().enumerate() {
        let bar = "#".repeat(
            (c as usize * max_width)
                .div_ceil(peak as usize)
                .min(max_width),
        );
        let left = lo + i as f64 * width;
        out.push_str(&format!("{left:>8.2} | {bar} {c}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_error_signs() {
        assert_eq!(count_error(15.0, 10.0), 0.5);
        assert_eq!(count_error(0.0, 10.0), -1.0);
        assert_eq!(count_error(10.0, 10.0), 0.0);
    }

    #[test]
    fn errors_mark_missed_classes() {
        let truth: HashMap<usize, f64> = [(0, 10.0), (1, 5.0)].into();
        let est: HashMap<usize, f64> = [(0, 12.0)].into();
        let errs = count_errors(&est, &truth);
        assert_eq!(errs, vec![(0, 0.2), (1, -1.0)]);
    }

    #[test]
    fn l1_on_disjoint_supports() {
        let a: HashMap<usize, f64> = [(0, 1.0)].into();
        let b: HashMap<usize, f64> = [(1, 1.0)].into();
        assert!((l1_error(&a, &b) - 2.0).abs() < 1e-12);
        assert_eq!(l1_error(&a, &a), 0.0);
    }

    #[test]
    fn within_counts() {
        let errs = vec![(0, 0.1), (1, -0.6), (2, 0.5), (3, -1.0)];
        assert_eq!(count_within(&errs, 0.5), 2);
        assert!((fraction_within(&errs, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_within(&[], 0.5), 0.0);
    }

    #[test]
    fn histogram_clamps() {
        let h = histogram([-5.0, -0.9, -0.4, 0.4, 0.9, 7.0], -1.0, 1.0, 4);
        assert_eq!(h, vec![2, 1, 1, 2]);
        assert_eq!(h.iter().sum::<u64>(), 6);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
    }

    #[test]
    fn text_histogram_renders() {
        let s = text_histogram(&[1, 4, 2], 0.0, 3.0, 10);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }
}
