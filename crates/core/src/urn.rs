//! The urn: the assembled count table plus everything derived from it that
//! the samplers need (per-vertex totals, the alias table over roots, and the
//! per-rooted-shape totals `r_j` that drive AGS).

use crate::build::BuildStats;
use crate::error::BuildError;
use motivo_graph::{Coloring, Graph};
use motivo_table::storage::RecordHandle;
use motivo_table::{AliasTable, CountTable};
use motivo_treelet::{Treelet, TreeletFamily};

/// The abstract urn of the paper: after the build-up phase, colorful
/// k-treelet copies can be drawn uniformly at random from it, either
/// globally (`sample()`) or restricted to one rooted shape (`sample(T)`).
pub struct Urn<'g> {
    graph: &'g Graph,
    coloring: Coloring,
    k: u32,
    table: CountTable,
    family: TreeletFamily,
    /// `occ(v)` at size k (0-rooted): colorful k-treelets rooted at `v`.
    occ_k: Vec<u128>,
    /// `t = Σ_v occ(v)`: every colorful k-treelet copy, counted once.
    total_k: u128,
    root_alias: AliasTable,
    /// Canonical rooted k-treelet shapes, ascending.
    shapes: Vec<Treelet>,
    /// `r_j = Σ_v occ(T_j, v)` per shape.
    r_shapes: Vec<u128>,
    stats: BuildStats,
}

impl<'g> Urn<'g> {
    /// Derives the sampler-facing tables from a freshly built count table.
    pub(crate) fn assemble(
        graph: &'g Graph,
        coloring: Coloring,
        table: CountTable,
        stats: BuildStats,
    ) -> Result<Urn<'g>, BuildError> {
        let k = table.k();
        let n = graph.num_nodes();
        let family = TreeletFamily::new(k);
        let shapes: Vec<Treelet> = family.of_size(k).to_vec();
        let mut occ_k = vec![0u128; n as usize];
        let mut r_shapes = vec![0u128; shapes.len()];
        let mut total: u128 = 0;
        for v in 0..n {
            let rec = table.get(k, v).map_err(BuildError::Io)?;
            let t = rec.total();
            occ_k[v as usize] = t;
            total += t;
            if t > 0 {
                for (j, &shape) in shapes.iter().enumerate() {
                    r_shapes[j] += rec.tree_total(shape);
                }
            }
        }
        if total == 0 {
            return Err(BuildError::EmptyUrn);
        }
        let root_alias = AliasTable::from_u128(&occ_k);
        Ok(Urn {
            graph,
            coloring,
            k,
            table,
            family,
            occ_k,
            total_k: total,
            root_alias,
            shapes,
            r_shapes,
            stats,
        })
    }

    /// The host graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The coloring the urn was built under.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// Graphlet size `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The underlying count table.
    pub fn table(&self) -> &CountTable {
        &self.table
    }

    /// The rooted-treelet family for sizes `1..=k`.
    pub fn family(&self) -> &TreeletFamily {
        &self.family
    }

    /// Record of vertex `v` at treelet size `h`.
    ///
    /// This is the samplers' hot path, so it stays infallible: a backing
    /// I/O failure on an external-memory table panics here rather than
    /// threading `Result` through every recursive embed step. Build-time
    /// and persistence reads go through the fallible
    /// [`motivo_table::CountTable::get`] instead.
    #[inline]
    pub fn record(&self, h: u32, v: u32) -> RecordHandle<'_> {
        self.table
            .get(h, v)
            .expect("count-table I/O failure while sampling")
    }

    /// `occ(v)`: colorful k-treelets rooted (0-rooted) at `v`.
    pub fn occ(&self, v: u32) -> u128 {
        self.occ_k[v as usize]
    }

    /// `t`: total colorful k-treelet copies in the urn.
    pub fn total_treelets(&self) -> u128 {
        self.total_k
    }

    /// The alias table over root vertices (weights `occ(v)`).
    pub fn root_alias(&self) -> &AliasTable {
        &self.root_alias
    }

    /// The canonical rooted k-treelet shapes, ascending.
    pub fn shapes(&self) -> &[Treelet] {
        &self.shapes
    }

    /// `r_j` for shape index `j`.
    pub fn shape_total(&self, j: usize) -> u128 {
        self.r_shapes[j]
    }

    /// All `r_j` values.
    pub fn shape_totals(&self) -> &[u128] {
        &self.r_shapes
    }

    /// Dense index of a size-k shape.
    pub fn shape_index(&self, t: Treelet) -> usize {
        self.family.index_of(t)
    }

    /// Per-vertex totals `occ(T_j, v)` for one shape — the weights of the
    /// per-shape alias table AGS rebuilds on every treelet switch (§3.3,
    /// "when a new T is chosen, the alias sampler must be rebuilt from
    /// scratch").
    pub fn shape_vertex_totals(&self, shape: Treelet) -> Vec<u128> {
        (0..self.graph.num_nodes())
            .map(|v| {
                if self.occ_k[v as usize] == 0 {
                    0
                } else {
                    self.record(self.k, v).tree_total(shape)
                }
            })
            .collect()
    }

    /// `p_k`: probability that a fixed k-set is colorful under the urn's
    /// coloring distribution.
    pub fn p_colorful(&self) -> f64 {
        self.coloring.p_colorful()
    }

    /// Build-phase metrics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.stats
    }
}
