//! The build-up phase: the treelet-count dynamic program (§2.1, Eq. 1) with
//! motivo's optimizations — succinct check-and-merge, compact records with
//! greedy flushing, 0-rooting, biased coloring, and thread-level parallelism
//! with the edge-split refinement for the last high-degree vertices (§3.3).

use crate::error::BuildError;
use crate::urn::Urn;
use motivo_graph::{Coloring, Graph};
use motivo_obs::{Histogram, Obs};
use motivo_table::storage::{LevelStore, StorageKind};
use motivo_table::{CountTable, Record, RecordBuilder, RecordCodec};
use motivo_treelet::{ColoredTreelet, Treelet, TreeletFamily};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How vertices are colored before the DP runs.
#[derive(Clone, Debug)]
pub enum ColoringSpec {
    /// Uniform over `{0, …, k−1}` (the default).
    Uniform,
    /// Biased coloring (§3.4): light colors with probability `lambda`.
    Biased {
        /// Probability of each light color; must lie in `(0, 1/k]`.
        lambda: f64,
    },
    /// An explicit per-vertex assignment (tests, spanning tables).
    Fixed(Vec<u8>),
}

/// Configuration of the build-up phase.
///
/// ```
/// use motivo_core::{build_urn, BuildConfig};
///
/// let cfg = BuildConfig::new(4).seed(7).threads(2);
/// let g = motivo_graph::generators::complete_graph(16);
/// let urn = build_urn(&g, &cfg).unwrap();
/// assert_eq!(urn.k(), 4);
/// assert!(urn.total_treelets() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct BuildConfig {
    /// Graphlet size `k ∈ [2, 16]`.
    pub k: u32,
    /// RNG seed for the coloring.
    pub seed: u64,
    /// Color distribution.
    pub coloring: ColoringSpec,
    /// Count-table backend (in-memory or greedy flushing to disk).
    pub storage: StorageKind,
    /// Record representation every level is sealed under. The codec
    /// changes bytes, never counts: for a fixed seed, every estimator is
    /// bit-identical across codecs.
    pub codec: RecordCodec,
    /// Store size-k treelets only at their color-0 root (§3.2). On by
    /// default; disable only for the Fig. 4 ablation.
    pub zero_rooting: bool,
    /// Worker threads; `0` = all available cores.
    pub threads: usize,
    /// Degree above which a vertex's neighbor list is split across all
    /// workers instead of being handled by one (the "last remaining
    /// vertices" refinement, §3.3).
    pub hub_split_threshold: usize,
    /// Observability handle. Disabled by default; when attached, the
    /// build emits per-level spans and a codec-encode latency histogram.
    /// Pure side channel: never affects the table contents.
    pub obs: Obs,
}

impl BuildConfig {
    /// Defaults for graphlet size `k`.
    pub fn new(k: u32) -> BuildConfig {
        BuildConfig {
            k,
            seed: 0,
            coloring: ColoringSpec::Uniform,
            storage: StorageKind::Memory,
            codec: RecordCodec::Plain,
            zero_rooting: true,
            threads: 0,
            hub_split_threshold: 1 << 14,
            obs: Obs::none(),
        }
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> BuildConfig {
        self.seed = seed;
        self
    }

    /// Uses biased coloring with the given `λ`.
    pub fn biased(mut self, lambda: f64) -> BuildConfig {
        self.coloring = ColoringSpec::Biased { lambda };
        self
    }

    /// Selects the storage backend.
    pub fn storage(mut self, storage: StorageKind) -> BuildConfig {
        self.storage = storage;
        self
    }

    /// Bounds peak build memory: block storage under `dir` with a
    /// memtable budget of `bytes` per level (`0` = unbudgeted). The
    /// out-of-core path behind the CLI's `--build-mem-bytes`; the result
    /// is bit-identical to an unbudgeted in-memory build.
    pub fn build_mem_bytes(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        bytes: usize,
    ) -> BuildConfig {
        self.storage = StorageKind::Block {
            dir: dir.into(),
            mem_budget: bytes,
        };
        self
    }

    /// Selects the record codec (succinct encoding = the paper's
    /// main-memory win; plain = the fixed-width v1 layout).
    pub fn codec(mut self, codec: RecordCodec) -> BuildConfig {
        self.codec = codec;
        self
    }

    /// Enables/disables 0-rooting.
    pub fn zero_rooting(mut self, on: bool) -> BuildConfig {
        self.zero_rooting = on;
        self
    }

    /// Sets the number of worker threads (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> BuildConfig {
        self.threads = threads;
        self
    }

    /// Attaches an observability handle.
    pub fn with_obs(mut self, obs: Obs) -> BuildConfig {
        self.obs = obs;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }
}

/// Metrics of one build, reported by the experiments (§5.1, Figs. 2–4, 7).
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// Total wall-clock time of the DP.
    pub total: Duration,
    /// Wall-clock per treelet size `h = 2..=k`.
    pub per_level: Vec<Duration>,
    /// Number of check-and-merge operations performed (count pairs
    /// examined) — the Fig. 2 quantity.
    pub merge_ops: u64,
    /// Final count-table payload bytes.
    pub table_bytes: usize,
    /// Non-empty records stored.
    pub records: usize,
    /// Budget-triggered memtable spills across all levels (block storage
    /// only; 0 for unbudgeted or non-block builds).
    pub spill_runs: u64,
    /// High-water mark of any level's build memtable in bytes (block
    /// storage only).
    pub peak_mem_bytes: u64,
}

/// Runs the build-up phase and assembles the urn.
pub fn build_urn<'g>(g: &'g Graph, cfg: &BuildConfig) -> Result<Urn<'g>, BuildError> {
    let k = cfg.k;
    if !(2..=16).contains(&k) {
        return Err(BuildError::BadK(k));
    }
    if g.num_nodes() < k {
        return Err(BuildError::GraphTooSmall {
            n: g.num_nodes(),
            k,
        });
    }
    let coloring = match &cfg.coloring {
        ColoringSpec::Uniform => Coloring::uniform(g, k, cfg.seed),
        ColoringSpec::Biased { lambda } => {
            if !(*lambda > 0.0 && *lambda <= 1.0 / k as f64) {
                return Err(BuildError::BadLambda(*lambda));
            }
            Coloring::biased(g, k, *lambda, cfg.seed)
        }
        ColoringSpec::Fixed(colors) => {
            if colors.len() != g.num_nodes() as usize {
                return Err(BuildError::BadFixedColoring);
            }
            Coloring::fixed(colors.clone(), k)
        }
    };
    let (table, stats) = build_table(g, &coloring, cfg)?;
    Urn::assemble(g, coloring, table, stats)
}

/// The dynamic program proper: levels `1..=k`, bottom-up. Public so the
/// baseline and the benches can build raw tables without urn assembly.
pub fn build_table(
    g: &Graph,
    coloring: &Coloring,
    cfg: &BuildConfig,
) -> Result<(CountTable, BuildStats), BuildError> {
    let k = cfg.k;
    let n = g.num_nodes();
    let threads = cfg.resolved_threads();
    let family = TreeletFamily::new(k);
    let beta = beta_table(&family);
    let start = Instant::now();
    let _build_span = cfg.obs.span("build.table");
    let encode_hist = cfg.obs.histogram("build.encode");
    let mut per_level = Vec::with_capacity(k as usize - 1);
    let merge_ops = AtomicU64::new(0);

    // Level 1: one singleton record per vertex.
    let mut levels: Vec<Box<dyn LevelStore>> = Vec::with_capacity(k as usize);
    let mut l1 = cfg.storage.create_level(1, n, cfg.codec)?;
    for v in 0..n {
        let ct = ColoredTreelet::new(
            Treelet::SINGLETON,
            motivo_treelet::ColorSet::single(coloring.color(v)),
        );
        l1.put(v, Record::from_counts_in(cfg.codec, vec![(ct.code(), 1)]))?;
    }
    // Seal before higher levels read it: block-backed levels compact
    // their memtable and spill runs into the final block file here.
    l1.seal()?;
    levels.push(l1);

    for h in 2..=k {
        let level_start = Instant::now();
        let _level_span = cfg.obs.span(format!("build.level{h}"));
        let mut level = cfg.storage.create_level(h, n, cfg.codec)?;
        // Vertices above the hub threshold are deferred to the edge-split
        // pass so no worker stalls on one giant adjacency list.
        let hubs: Vec<u32> = (0..n)
            .filter(|&v| g.degree(v) >= cfg.hub_split_threshold)
            .collect();
        let is_hub = |v: u32| g.degree(v) >= cfg.hub_split_threshold;
        let ctx = LevelCtx {
            g,
            coloring,
            levels: &levels,
            h,
            k,
            zero_rooting: cfg.zero_rooting,
            codec: cfg.codec,
            beta: &beta,
            merge_ops: &merge_ops,
            encode_hist: encode_hist.as_deref(),
        };

        // Worker and collector failures are captured and surfaced after
        // the scope: an I/O error fails the build instead of aborting the
        // process. The `failed` flag makes every worker stop claiming
        // vertices promptly after the first error — without it, the other
        // workers would grind through the whole level before the error
        // could be returned — while the channel keeps draining so no
        // sender blocks.
        let (tx, rx) = crossbeam::channel::bounded::<io::Result<(u32, Record)>>(4 * threads.max(1));
        let cursor = AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let mut failure: Option<io::Error> = None;
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let ctx = &ctx;
                let cursor = &cursor;
                let is_hub = &is_hub;
                let failed = &failed;
                scope.spawn(move |_| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let v = cursor.fetch_add(1, Ordering::Relaxed);
                    if v >= n as usize {
                        break;
                    }
                    let v = v as u32;
                    if is_hub(v) {
                        continue;
                    }
                    match ctx.process_vertex(v, None) {
                        Ok(rec) => {
                            if !rec.is_empty() {
                                tx.send(Ok((v, rec))).expect("collector alive");
                            }
                        }
                        Err(e) => {
                            failed.store(true, Ordering::Relaxed);
                            tx.send(Err(e)).expect("collector alive");
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for msg in rx {
                match msg {
                    Ok((v, rec)) => {
                        if failure.is_none() {
                            if let Err(e) = level.put(v, rec) {
                                failed.store(true, Ordering::Relaxed);
                                failure = Some(e);
                            }
                        }
                    }
                    Err(e) => {
                        if failure.is_none() {
                            failure = Some(e);
                        }
                    }
                }
            }
        })
        .expect("build worker panicked");
        if let Some(e) = failure {
            return Err(BuildError::Io(e));
        }

        // Edge-split pass: each hub's adjacency list is chunked across all
        // workers; partial accumulators are merged, then β-divided once.
        for &v in &hubs {
            let rec = process_hub_vertex(&ctx, v, threads)?;
            level.put(v, rec)?;
        }

        level.seal()?;
        levels.push(level);
        per_level.push(level_start.elapsed());
    }

    let table = CountTable::from_levels(levels, cfg.codec);
    let stats = BuildStats {
        total: start.elapsed(),
        per_level,
        merge_ops: merge_ops.load(Ordering::Relaxed),
        table_bytes: table.byte_size(),
        records: table.record_count(),
        spill_runs: table.total_spill_runs(),
        peak_mem_bytes: table.peak_mem_bytes(),
    };
    Ok((table, stats))
}

/// Shared read-only context for one level's workers.
struct LevelCtx<'a> {
    g: &'a Graph,
    coloring: &'a Coloring,
    levels: &'a [Box<dyn LevelStore>],
    h: u32,
    k: u32,
    zero_rooting: bool,
    codec: RecordCodec,
    beta: &'a HashMap<u32, u128>,
    merge_ops: &'a AtomicU64,
    /// Codec-encode latency sink, when observability is attached.
    encode_hist: Option<&'a Histogram>,
}

impl LevelCtx<'_> {
    /// Computes the full record of `v` at size `h` (Eq. 1, forward form).
    /// When `neighbor_range` is given, only that slice of the adjacency
    /// list contributes (hub splitting) and the β division is skipped — the
    /// caller divides after merging partials.
    fn process_vertex(&self, v: u32, neighbor_range: Option<(usize, usize)>) -> io::Result<Record> {
        let pairs = self.accumulate(v, neighbor_range)?;
        Ok(match pairs {
            None => Record::default(),
            Some(builder) => {
                let mut pairs = builder.into_pairs();
                divide_beta(&mut pairs, self.beta);
                self.encode(pairs)
            }
        })
    }

    /// Seals accumulated pairs under the level codec, timing the encode
    /// when observability is attached.
    fn encode(&self, pairs: Vec<(u64, u128)>) -> Record {
        match self.encode_hist {
            Some(hist) => {
                let t = Instant::now();
                let rec = Record::from_counts_in(self.codec, pairs);
                hist.record_duration(t.elapsed());
                rec
            }
            None => Record::from_counts_in(self.codec, pairs),
        }
    }

    /// The accumulation half (no β division). `Ok(None)` when 0-rooting
    /// skips the vertex entirely; `Err` when a lower level's backing store
    /// fails.
    fn accumulate(
        &self,
        v: u32,
        neighbor_range: Option<(usize, usize)>,
    ) -> io::Result<Option<RecordBuilder>> {
        let h = self.h;
        if h == self.k && self.zero_rooting && self.coloring.color(v) != 0 {
            return Ok(None);
        }
        // Prefetch v's smaller records once; they are reused for every
        // neighbor.
        let mut v_pairs: Vec<Vec<(ColoredTreelet, u128)>> = Vec::with_capacity(h as usize - 1);
        for h1 in 1..h {
            v_pairs.push(self.levels[h1 as usize - 1].get(v)?.iter().collect());
        }
        let neighbors = self.g.neighbors(v);
        let neighbors = match neighbor_range {
            Some((lo, hi)) => &neighbors[lo..hi],
            None => neighbors,
        };
        let mut builder = RecordBuilder::new();
        let mut ops = 0u64;
        for &u in neighbors {
            for h1 in 1..h {
                let h2 = h - h1;
                let vp = &v_pairs[h1 as usize - 1];
                if vp.is_empty() {
                    continue;
                }
                let ru = self.levels[h2 as usize - 1].get(u)?;
                if ru.is_empty() {
                    continue;
                }
                for (ct2, c2) in ru.iter() {
                    for &(ct1, c1) in vp {
                        ops += 1;
                        // The check half: disjoint colors and canonical
                        // shape merge — a few bit operations (§3.1).
                        if ct1.colors().is_disjoint(ct2.colors())
                            && ct1.tree().can_merge(ct2.tree())
                        {
                            let merged = ColoredTreelet::new(
                                ct1.tree().merge_unchecked(ct2.tree()),
                                ct1.colors().union(ct2.colors()),
                            );
                            builder.add(
                                merged.code(),
                                c1.checked_mul(c2).expect("count overflows u128"),
                            );
                        }
                    }
                }
            }
        }
        self.merge_ops.fetch_add(ops, Ordering::Relaxed);
        Ok(Some(builder))
    }
}

/// Hub pass: split `v`'s adjacency list into `threads` chunks, accumulate
/// partials concurrently, merge, then β-divide once (§3.3).
fn process_hub_vertex(ctx: &LevelCtx<'_>, v: u32, threads: usize) -> io::Result<Record> {
    let deg = ctx.g.degree(v);
    let chunks = threads.max(1);
    let chunk = deg.div_ceil(chunks);
    let partials = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..chunks {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(deg);
            if lo >= hi {
                continue;
            }
            handles.push(scope.spawn(move |_| ctx.accumulate(v, Some((lo, hi)))));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("hub worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("hub scope panicked");

    let mut merged: Option<RecordBuilder> = None;
    for p in partials {
        if let Some(p) = p? {
            match &mut merged {
                None => merged = Some(p),
                Some(m) => m.absorb(p),
            }
        }
    }
    Ok(match merged {
        None => Record::default(),
        Some(builder) => {
            let mut pairs = builder.into_pairs();
            divide_beta(&mut pairs, ctx.beta);
            ctx.encode(pairs)
        }
    })
}

/// Precomputed `β_T` for every shape in the family (sizes ≥ 2).
fn beta_table(family: &TreeletFamily) -> HashMap<u32, u128> {
    family
        .iter()
        .filter(|&(size, _, _)| size >= 2)
        .map(|(_, _, t)| (t.code(), t.beta() as u128))
        .collect()
}

/// Applies the `1/β_T` factor of Eq. 1; the accumulated sum is always an
/// exact multiple (each copy is produced exactly `β_T` times).
fn divide_beta(pairs: &mut [(u64, u128)], beta: &HashMap<u32, u128>) {
    for (code, count) in pairs.iter_mut() {
        let tree_code = (*code >> 16) as u32;
        let b = beta[&tree_code];
        debug_assert_eq!(*count % b, 0, "β must divide the accumulated count");
        *count /= b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_graph::generators;
    use motivo_graphlet::spanning::SmallCounts;
    use motivo_treelet::ColorSet;

    /// The engine must agree with the reference DP (graphlet crate) on any
    /// small graph, for every vertex and every colored treelet.
    fn assert_matches_reference(g: &Graph, colors: Vec<u8>, k: u32) {
        let n = g.num_nodes();
        let rows: Vec<u16> = {
            let verts: Vec<u32> = (0..n).collect();
            g.induced_rows(&verts)
        };
        let reference = SmallCounts::build(&rows, &colors, k);
        let cfg = BuildConfig {
            zero_rooting: false,
            threads: 2,
            ..BuildConfig::new(k)
        };
        let coloring = Coloring::fixed(colors, k);
        let (table, _) = build_table(g, &coloring, &cfg).unwrap();
        for v in 0..n {
            for h in 1..=k {
                let rec = table.get(h, v).unwrap();
                let got: Vec<(ColoredTreelet, u128)> = rec.iter().collect();
                let want: Vec<(ColoredTreelet, u128)> = reference.per_vertex[v as usize]
                    .iter()
                    .filter(|(ct, _)| ct.size() == h)
                    .map(|(&ct, &c)| (ct, c))
                    .collect();
                assert_eq!(got, want, "vertex {v} size {h}");
            }
        }
    }

    #[test]
    fn matches_reference_on_triangle() {
        let g = generators::complete_graph(3);
        assert_matches_reference(&g, vec![0, 1, 2], 3);
    }

    #[test]
    fn matches_reference_on_k4_and_paths() {
        assert_matches_reference(&generators::complete_graph(4), vec![0, 1, 2, 3], 4);
        assert_matches_reference(&generators::path_graph(6), vec![0, 1, 2, 0, 1, 2], 3);
        assert_matches_reference(&generators::cycle_graph(8), vec![0, 1, 2, 3, 0, 1, 2, 3], 4);
    }

    #[test]
    fn matches_reference_on_random_colorings() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        for trial in 0..5 {
            let g = generators::erdos_renyi(12, 22, trial);
            let k = rng.gen_range(3..=5);
            let colors: Vec<u8> = (0..g.num_nodes())
                .map(|_| rng.gen_range(0..k) as u8)
                .collect();
            assert_matches_reference(&g, colors, k);
        }
    }

    #[test]
    fn zero_rooting_keeps_only_color0_roots_at_level_k() {
        let g = generators::complete_graph(5);
        let colors = vec![0u8, 1, 2, 0, 1];
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(3)
        };
        let coloring = Coloring::fixed(colors.clone(), 3);
        let (table, _) = build_table(&g, &coloring, &cfg).unwrap();
        for v in 0..5 {
            let empty = table.get(3, v).unwrap().is_empty();
            if colors[v as usize] == 0 {
                assert!(!empty, "color-0 vertex {v} should have k-records");
            } else {
                assert!(
                    empty,
                    "vertex {v} with color {} must be skipped",
                    colors[v as usize]
                );
            }
        }
        // Lower levels keep all rootings.
        for v in 0..5 {
            assert!(!table.get(2, v).unwrap().is_empty() || g.degree(v) == 0);
        }
    }

    #[test]
    fn zero_rooted_total_counts_each_colorful_treelet_once() {
        // On K4 with a rainbow coloring every 4-subset is colorful; the
        // total over 0-rooted size-4 records must equal the number of
        // spanning trees of K4 times … no: it equals the number of colorful
        // 4-treelet copies, = 16 spanning trees of K4 (all 4 vertices, each
        // counted at its color-0 root exactly once).
        let g = generators::complete_graph(4);
        let coloring = Coloring::fixed(vec![0, 1, 2, 3], 4);
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(4)
        };
        let (table, _) = build_table(&g, &coloring, &cfg).unwrap();
        let total: u128 = (0..4).map(|v| table.get(4, v).unwrap().total()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn hub_split_agrees_with_plain_path() {
        let g = generators::star_heavy(200, 2, 0.9, 5);
        let coloring = Coloring::uniform(&g, 4, 3);
        let plain = BuildConfig {
            threads: 3,
            hub_split_threshold: usize::MAX,
            ..BuildConfig::new(4)
        };
        let split = BuildConfig {
            threads: 3,
            hub_split_threshold: 16,
            ..BuildConfig::new(4)
        };
        let (ta, _) = build_table(&g, &coloring, &plain).unwrap();
        let (tb, _) = build_table(&g, &coloring, &split).unwrap();
        for v in 0..g.num_nodes() {
            for h in 1..=4 {
                let a: Vec<_> = ta.get(h, v).unwrap().iter().collect();
                let b: Vec<_> = tb.get(h, v).unwrap().iter().collect();
                assert_eq!(a, b, "vertex {v} size {h}");
            }
        }
    }

    #[test]
    fn disk_storage_agrees_with_memory() {
        let g = generators::barabasi_albert(120, 3, 2);
        let coloring = Coloring::uniform(&g, 5, 1);
        let dir = std::env::temp_dir().join("motivo-core-disk-test");
        std::fs::remove_dir_all(&dir).ok();
        let mem = BuildConfig {
            threads: 2,
            ..BuildConfig::new(5)
        };
        let disk = BuildConfig {
            threads: 2,
            storage: StorageKind::Disk { dir: dir.clone() },
            ..BuildConfig::new(5)
        };
        let (ta, _) = build_table(&g, &coloring, &mem).unwrap();
        let (tb, _) = build_table(&g, &coloring, &disk).unwrap();
        for v in 0..g.num_nodes() {
            for h in 1..=5 {
                let a: Vec<_> = ta.get(h, v).unwrap().iter().collect();
                let b: Vec<_> = tb.get(h, v).unwrap().iter().collect();
                assert_eq!(a, b, "vertex {v} size {h}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Block storage with a tiny memtable budget (forcing several spill +
    /// merge rounds per level) must agree record-for-record with the
    /// in-memory build on both codecs — the out-of-core acceptance bar.
    #[test]
    fn budgeted_block_storage_agrees_with_memory() {
        let g = generators::barabasi_albert(120, 3, 2);
        let coloring = Coloring::uniform(&g, 5, 1);
        for codec in RecordCodec::ALL {
            let dir = std::env::temp_dir().join(format!("motivo-core-block-test-{codec}"));
            std::fs::remove_dir_all(&dir).ok();
            let mem = BuildConfig {
                threads: 2,
                codec,
                ..BuildConfig::new(5)
            };
            // 4 KiB budget on a level holding tens of KiB: many spills.
            let block = BuildConfig {
                threads: 2,
                codec,
                ..BuildConfig::new(5)
            }
            .build_mem_bytes(&dir, 4 * 1024);
            let (ta, _) = build_table(&g, &coloring, &mem).unwrap();
            let (tb, sb) = build_table(&g, &coloring, &block).unwrap();
            assert!(
                sb.spill_runs >= 2,
                "{codec}: want ≥2 spill rounds, got {}",
                sb.spill_runs
            );
            assert!(sb.peak_mem_bytes > 0 && sb.peak_mem_bytes <= 8 * 1024);
            for v in 0..g.num_nodes() {
                for h in 1..=5 {
                    let a: Vec<_> = ta.get(h, v).unwrap().iter().collect();
                    let b: Vec<_> = tb.get(h, v).unwrap().iter().collect();
                    assert_eq!(a, b, "{codec}: vertex {v} size {h}");
                }
            }
            assert_eq!(ta.record_count(), tb.record_count());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// An unbudgeted block build spills nothing and reports its history.
    #[test]
    fn unbudgeted_block_storage_has_no_spills() {
        let g = generators::barabasi_albert(80, 3, 5);
        let coloring = Coloring::uniform(&g, 4, 2);
        let dir = std::env::temp_dir().join("motivo-core-block-nospill");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(4)
        }
        .build_mem_bytes(&dir, 0);
        let (table, stats) = build_table(&g, &coloring, &cfg).unwrap();
        assert_eq!(stats.spill_runs, 0);
        assert_eq!(table.total_spill_runs(), 0);
        assert!(stats.peak_mem_bytes > 0, "memtable peak still tracked");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The succinct codec must produce record-for-record identical counts:
    /// the codec changes bytes, never counts — while shrinking the table.
    #[test]
    fn succinct_codec_matches_plain_counts_and_shrinks() {
        let g = generators::barabasi_albert(150, 3, 9);
        let coloring = Coloring::uniform(&g, 5, 4);
        let plain_cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(5)
        };
        let succ_cfg = BuildConfig {
            threads: 2,
            codec: RecordCodec::Succinct,
            ..BuildConfig::new(5)
        };
        let (tp, sp) = build_table(&g, &coloring, &plain_cfg).unwrap();
        let (ts, ss) = build_table(&g, &coloring, &succ_cfg).unwrap();
        assert_eq!(ts.codec(), RecordCodec::Succinct);
        for v in 0..g.num_nodes() {
            for h in 1..=5 {
                let a: Vec<_> = tp.get(h, v).unwrap().iter().collect();
                let b: Vec<_> = ts.get(h, v).unwrap().iter().collect();
                assert_eq!(a, b, "vertex {v} size {h}");
            }
        }
        assert_eq!(sp.records, ss.records);
        assert_eq!(sp.merge_ops, ss.merge_ops);
        // The acceptance bar: ≥ 40% smaller on a k=5 build.
        assert!(
            ss.table_bytes * 10 <= sp.table_bytes * 6,
            "succinct {} bytes vs plain {}",
            ss.table_bytes,
            sp.table_bytes
        );
    }

    #[test]
    fn merge_ops_counted() {
        let g = generators::complete_graph(6);
        let coloring = Coloring::uniform(&g, 4, 0);
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(4)
        };
        let (_, stats) = build_table(&g, &coloring, &cfg).unwrap();
        assert!(stats.merge_ops > 0);
        assert_eq!(stats.per_level.len(), 3);
    }

    #[test]
    fn singleton_level_counts_color() {
        let g = generators::path_graph(4);
        let coloring = Coloring::fixed(vec![2, 0, 1, 2], 3);
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(3)
        };
        let (table, _) = build_table(&g, &coloring, &cfg).unwrap();
        let rec = table.get(1, 0).unwrap();
        let (ct, c) = rec.iter().next().unwrap();
        assert_eq!(c, 1);
        assert_eq!(ct.colors(), ColorSet::single(2));
        assert_eq!(ct.tree(), Treelet::SINGLETON);
    }
}
