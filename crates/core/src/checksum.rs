//! CRC32 (IEEE 802.3, the zlib/gzip polynomial) for integrity-checking
//! persisted artifacts: the urn metadata written by [`crate::persist`] and
//! the manifest/journal records of `motivo-store`. Table-driven, one table
//! built at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// An incremental CRC32 accumulator.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut c = Crc32::new();
        c.update(b"The quick brown fox ");
        c.update(b"jumps over the lazy dog");
        assert_eq!(c.finish(), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"motivo urn metadata".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want);
            }
        }
    }
}
