//! Error types for the build and sampling phases.

use std::fmt;

/// Failures of the build-up phase.
#[derive(Debug)]
pub enum BuildError {
    /// `k` outside `[2, 16]` (the succinct encoding bound).
    BadK(u32),
    /// Fewer vertices than `k`.
    GraphTooSmall {
        /// Number of vertices in the host graph.
        n: u32,
        /// Requested graphlet size.
        k: u32,
    },
    /// Biased-coloring `λ` outside `(0, 1/k]`.
    BadLambda(f64),
    /// Fixed coloring with the wrong length.
    BadFixedColoring,
    /// The coloring produced no colorful k-treelet (e.g. no vertex of color
    /// 0 under 0-rooting, or the graph has no connected k-subgraph).
    EmptyUrn,
    /// Backend I/O failure (disk-backed tables).
    Io(std::io::Error),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::BadK(k) => write!(f, "graphlet size k={k} outside [2, 16]"),
            BuildError::GraphTooSmall { n, k } => {
                write!(f, "graph has {n} vertices, fewer than k={k}")
            }
            BuildError::BadLambda(l) => write!(f, "biased-coloring lambda {l} outside (0, 1/k]"),
            BuildError::BadFixedColoring => write!(f, "fixed coloring length != vertex count"),
            BuildError::EmptyUrn => {
                write!(
                    f,
                    "no colorful k-treelet found; re-color with a new seed or reduce k"
                )
            }
            BuildError::Io(e) => write!(f, "count-table I/O error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BuildError {
    fn from(e: std::io::Error) -> BuildError {
        BuildError::Io(e)
    }
}
