//! The sampling phase: drawing uniform colorful treelet copies from the urn
//! and embedding them in the host graph (§2.2), with the neighbor-buffering
//! optimization for high-degree vertices (§3.2).
//!
//! One sample proceeds top-down:
//!
//! 1. draw the root `v` with probability `occ(v)/t` (alias table, `O(1)`);
//! 2. draw a colored treelet `(T, C)` from `v`'s record with probability
//!    `c(T_C, v)/occ(v)` (cumulative binary search, `O(k)`);
//! 3. embed recursively: decompose `T` into `(T', T'')`, pick the color
//!    split `C = C' ⊎ C''` and the neighbor `u ∼ v` hosting `T''` jointly
//!    with probability `∝ c(T'_{C'}, v) · c(T''_{C''}, u)`, and recurse on
//!    both halves. Disjoint color sets guarantee vertex-disjointness, and a
//!    short induction shows the resulting copy is uniform among the
//!    `c(T_C, v)` copies.
//!
//! Step 3 sweeps `v`'s neighbor list (Θ(deg v)); for hub vertices the sweep
//! draws [`SampleConfig::buffer_batch`] i.i.d. outcomes at once and caches
//! the rest — "sampling 100 neighbors is as expensive as sampling just one"
//! (§3.2).

use crate::urn::Urn;
use motivo_obs::{Counter, Obs};
use motivo_table::AliasTable;
use motivo_treelet::{ColorSet, ColoredTreelet, Treelet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Name of the debug counter counting scratch-arena reallocations; after a
/// short warm-up the steady-state sampling loop should not bump it at all.
/// Registered only when [`SampleConfig::obs`] is enabled; surfaced through
/// the server's `Metrics` request alongside every other counter.
pub const SAMPLING_ALLOCS_COUNTER: &str = "sampling_allocs";

/// Bumps the `sampling_allocs` counter when a push at `len` into a buffer
/// of capacity `cap` is about to reallocate.
#[inline]
fn note_grow(allocs: &Option<Counter>, len: usize, cap: usize) {
    if len == cap {
        if let Some(c) = allocs {
            c.inc();
        }
    }
}

/// Sampler tuning knobs.
///
/// ```
/// use motivo_core::SampleConfig;
///
/// let cfg = SampleConfig::seeded(7).threads(4);
/// assert_eq!(cfg.seed, 7);
/// assert_eq!(cfg.threads, 4);
/// assert!(cfg.buffering); // §3.2 neighbor buffering defaults on
/// ```
#[derive(Clone, Debug)]
pub struct SampleConfig {
    /// Base RNG seed. Parallel estimators split it into per-shard streams
    /// with [`crate::parallel::split_seed`], so for a fixed seed results
    /// are bit-identical at any thread count.
    pub seed: u64,
    /// Worker threads for the parallel estimators (`0` = all cores). A
    /// single [`Sampler`] is inherently sequential; this knob is consumed
    /// by [`crate::naive_estimates`], [`crate::ags()`], and
    /// [`crate::ensemble()`], which each drive one sampler per shard.
    pub threads: usize,
    /// Enable neighbor buffering (§3.2). Disable only for the Fig. 5
    /// ablation.
    pub buffering: bool,
    /// Degree at or above which the split draw is batched (paper: 10⁴).
    pub buffer_threshold: usize,
    /// Batch size (paper: 100).
    pub buffer_batch: usize,
    /// Observability handle. Disabled by default; when attached, the
    /// parallel estimators report per-shard tally time and AGS epoch
    /// metrics. Pure side channel: never affects sampled results.
    pub obs: Obs,
}

impl Default for SampleConfig {
    fn default() -> SampleConfig {
        SampleConfig {
            seed: 0,
            threads: 0,
            buffering: true,
            buffer_threshold: 10_000,
            buffer_batch: 100,
            obs: Obs::none(),
        }
    }
}

impl SampleConfig {
    /// A config with everything default but the seed.
    pub fn seeded(seed: u64) -> SampleConfig {
        SampleConfig {
            seed,
            ..SampleConfig::default()
        }
    }

    /// Sets the worker-thread count (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> SampleConfig {
        self.threads = threads;
        self
    }

    /// Attaches an observability handle.
    pub fn with_obs(mut self, obs: Obs) -> SampleConfig {
        self.obs = obs;
        self
    }
}

/// One pre-drawn decomposition outcome: the color split and the neighbor.
#[derive(Clone, Copy, Debug)]
struct SplitDraw {
    c_prime: ColorSet,
    c_second: ColorSet,
    u: u32,
}

/// A split whose color sets and threshold are drawn but whose neighbor is
/// still waiting on the sweep-2 prefix sums.
struct Pending {
    c_prime: ColorSet,
    c_second: ColorSet,
    r2: u128,
    u: Option<u32>,
}

/// Reusable arenas for [`Sampler::draw_split_batch`]. The per-mask tables
/// are dense arrays indexed by `ColorSet` mask (at most `1 << k` entries),
/// reset between draws by walking the touched lists; the growable buffers
/// keep their capacity across draws. After a short warm-up the steady-state
/// split draw performs no heap allocation and no hashing — every structure
/// the old implementation rebuilt per draw (two hash maps, a candidate
/// vector, group lists, cursors) lives here instead.
struct SplitScratch {
    /// `S[C'']` totals, dense by mask. An entry is live iff nonzero:
    /// record counts are strictly positive, so zero means untouched.
    second_totals: Vec<u128>,
    /// Masks with a nonzero entry in `second_totals`, for O(live) reset.
    touched: Vec<u16>,
    /// Candidate splits `(C', C'', weight)` in record iteration order.
    cands: Vec<(ColorSet, ColorSet, u128)>,
    /// Thresholds of the current batch awaiting neighbor assignment.
    pending: Vec<Pending>,
    /// Indices into `pending` grouped by `C''` mask, dense by mask.
    groups: Vec<Vec<usize>>,
    /// Masks with a nonempty group, for O(live) reset.
    group_masks: Vec<u16>,
    /// Per-mask `(prefix sum, next threshold)` cursors for sweep 2.
    cursors: Vec<(u128, usize)>,
    /// Sweep-1 entries `(u, mask, count)` that passed the color filter, in
    /// sweep order — sweep 2 replays these instead of re-fetching every
    /// neighbor record and re-searching its tree range.
    entries: Vec<(u32, u16, u128)>,
    /// Finished draws of the most recent batch.
    draws: Vec<SplitDraw>,
}

impl SplitScratch {
    /// Arenas sized for `num_colors`-bit masks (`k` colors in practice).
    fn new(num_colors: u32) -> SplitScratch {
        let masks = 1usize << num_colors;
        SplitScratch {
            second_totals: vec![0; masks],
            touched: Vec::new(),
            cands: Vec::new(),
            pending: Vec::new(),
            groups: vec![Vec::new(); masks],
            group_masks: Vec::new(),
            cursors: vec![(0, 0); masks],
            entries: Vec::new(),
            draws: Vec::new(),
        }
    }

    /// Clears every live entry left by the previous draw. O(touched), not
    /// O(masks): only entries on the touched lists are walked.
    fn reset(&mut self) {
        for &m in &self.touched {
            self.second_totals[m as usize] = 0;
        }
        self.touched.clear();
        for &m in &self.group_masks {
            self.groups[m as usize].clear();
        }
        self.group_masks.clear();
        self.cands.clear();
        self.pending.clear();
        self.entries.clear();
        self.draws.clear();
    }
}

/// Draws treelet copies from an urn. Cheap to create; keep one per thread —
/// the parallel estimators create one per logical shard.
///
/// ```
/// use motivo_core::{build_urn, BuildConfig, SampleConfig, Sampler};
///
/// let g = motivo_graph::generators::complete_graph(6);
/// let urn = build_urn(&g, &BuildConfig::new(3).seed(1)).unwrap();
/// let mut sampler = Sampler::new(&urn, SampleConfig::seeded(2));
/// let verts = sampler.sample_copy();
/// assert_eq!(verts.len(), 3); // one colorful 3-treelet copy
/// ```
pub struct Sampler<'u, 'g> {
    urn: &'u Urn<'g>,
    cfg: SampleConfig,
    rng: SmallRng,
    /// Buffered split draws keyed by `(vertex, colored treelet)`.
    buffers: HashMap<(u32, u64), VecDeque<SplitDraw>>,
    /// Reusable arenas for the split draw; see [`SplitScratch`].
    scratch: SplitScratch,
    /// `sampling_allocs` debug counter (None when obs is disabled).
    allocs: Option<Counter>,
    /// Total neighbor sweeps performed (two per unbuffered split draw);
    /// exposed for the Fig. 5 diagnostics.
    sweeps: u64,
    samples: u64,
}

impl<'u, 'g> Sampler<'u, 'g> {
    /// Creates a sampler over `urn`.
    pub fn new(urn: &'u Urn<'g>, cfg: SampleConfig) -> Sampler<'u, 'g> {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let scratch = SplitScratch::new(urn.k());
        let allocs = cfg.obs.counter(SAMPLING_ALLOCS_COUNTER);
        Sampler {
            urn,
            cfg,
            rng,
            buffers: HashMap::new(),
            scratch,
            allocs,
            sweeps: 0,
            samples: 0,
        }
    }

    /// Draws one colorful k-treelet copy uniformly at random from the urn;
    /// returns its vertices (k distinct vertices, DFS order of the treelet).
    pub fn sample_copy(&mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.urn.k() as usize);
        self.sample_copy_into(&mut out);
        out
    }

    /// Like [`Sampler::sample_copy`], but writes the vertices into a
    /// caller-provided buffer (cleared first) so tally loops can reuse one
    /// allocation across all samples.
    pub fn sample_copy_into(&mut self, out: &mut Vec<u32>) {
        let k = self.urn.k();
        let v = self.urn.root_alias().sample(&mut self.rng) as u32;
        let rec = self.urn.record(k, v);
        let r = self.rng.gen_range(1..=rec.total());
        let ct = rec.select(r);
        self.finish_embed_into(v, ct, out);
    }

    /// Draws one copy uniformly among the copies of rooted shape `shape` —
    /// the `sample(T)` primitive of AGS (§4). `alias` must be built over
    /// [`Urn::shape_vertex_totals`] for the same shape.
    pub fn sample_copy_of_shape(&mut self, shape: Treelet, alias: &AliasTable) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.urn.k() as usize);
        self.sample_copy_of_shape_into(shape, alias, &mut out);
        out
    }

    /// Buffer-reusing variant of [`Sampler::sample_copy_of_shape`].
    pub fn sample_copy_of_shape_into(
        &mut self,
        shape: Treelet,
        alias: &AliasTable,
        out: &mut Vec<u32>,
    ) {
        let k = self.urn.k();
        let v = alias.sample(&mut self.rng) as u32;
        let rec = self.urn.record(k, v);
        let total = rec.tree_total(shape);
        debug_assert!(total > 0, "alias weight nonzero implies entries");
        let r = self.rng.gen_range(1..=total);
        let ct = rec.select_in_tree(shape, r);
        self.finish_embed_into(v, ct, out);
    }

    fn finish_embed_into(&mut self, v: u32, ct: ColoredTreelet, out: &mut Vec<u32>) {
        let k = self.urn.k();
        out.clear();
        if out.capacity() < k as usize {
            // The k pushes below will reallocate the caller's buffer.
            if let Some(c) = &self.allocs {
                c.inc();
            }
        }
        self.embed(v, ct, out);
        debug_assert_eq!(out.len(), k as usize);
        debug_assert!(
            {
                let mut s = out.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "colorful copies must be vertex-disjoint"
        );
        self.samples += 1;
    }

    /// `(samples, neighbor sweeps)` so far — buffering drives sweeps per
    /// sample down on hub-heavy graphs.
    pub fn stats(&self) -> (u64, u64) {
        (self.samples, self.sweeps)
    }

    /// Recursive embedding of a colored treelet copy rooted at `v`.
    fn embed(&mut self, v: u32, ct: ColoredTreelet, out: &mut Vec<u32>) {
        if ct.size() == 1 {
            out.push(v);
            return;
        }
        let draw = self.draw_split(v, ct);
        let (t_prime, t_second) = ct.tree().decomp();
        self.embed(v, ColoredTreelet::new(t_prime, draw.c_prime), out);
        self.embed(draw.u, ColoredTreelet::new(t_second, draw.c_second), out);
    }

    /// Draws `(C', C'', u)` for the decomposition of `ct` at `v`, through
    /// the buffer when `v` is a hub.
    fn draw_split(&mut self, v: u32, ct: ColoredTreelet) -> SplitDraw {
        let buffered =
            self.cfg.buffering && self.urn.graph().degree(v) >= self.cfg.buffer_threshold;
        if !buffered {
            self.draw_split_batch(v, ct, 1);
            return self.scratch.draws[0];
        }
        let key = (v, ct.code());
        if let Some(q) = self.buffers.get_mut(&key) {
            if let Some(d) = q.pop_front() {
                return d;
            }
        }
        self.draw_split_batch(v, ct, self.cfg.buffer_batch.max(1));
        let mut q: VecDeque<SplitDraw> = self.scratch.draws.drain(..).collect();
        let first = q.pop_front().expect("batch nonempty");
        if self.buffers.len() > 4096 {
            self.buffers.clear(); // crude bound; hub keys are few in practice
        }
        self.buffers.insert(key, q);
        first
    }

    /// Draws `count` i.i.d. split outcomes into `self.scratch.draws` with
    /// exactly two neighbor sweeps regardless of `count` — the buffered
    /// strategy of §3.2, running entirely on the reusable [`SplitScratch`]
    /// arenas: dense mask-indexed tables replace the per-call hash maps, so
    /// the steady state allocates nothing and hashes nothing.
    ///
    /// The RNG call sequence and every value it produces are identical to
    /// the original map-based formulation: the dense tables are only ever
    /// read back by key (never iterated), and candidate order is the record
    /// iteration order either way.
    fn draw_split_batch(&mut self, v: u32, ct: ColoredTreelet, count: usize) {
        let (t_prime, t_second) = ct.tree().decomp();
        let (h1, h2) = (t_prime.size(), t_second.size());
        let colors = ct.colors();
        let urn = self.urn;
        let g = urn.graph();
        self.scratch.reset();
        let SplitScratch {
            second_totals,
            touched,
            cands,
            pending,
            groups,
            group_masks,
            cursors,
            entries,
            draws,
        } = &mut self.scratch;

        // Sweep 1: S[C''] = Σ_{u ∼ v} c(T''_{C''}, u) for viable C''.
        //
        // When `T''` is the singleton, `u`'s level-1 record is exactly
        // `[({color(u)}, 1)]` by construction (see the level-1 seeding in
        // `build_urn`), so the sweep reduces to counting neighbor colors —
        // no record fetch, no range search, same values in the same order.
        self.sweeps += 1;
        let coloring = urn.coloring();
        if h2 == 1 {
            for &u in g.neighbors(v) {
                let cs = ColorSet::single(coloring.color(u));
                if cs.is_subset_of(colors) {
                    let slot = &mut second_totals[cs.0 as usize];
                    if *slot == 0 {
                        note_grow(&self.allocs, touched.len(), touched.capacity());
                        touched.push(cs.0);
                    }
                    *slot += 1;
                }
            }
        } else {
            // Filtered entries are also staged for sweep 2 to replay:
            // sweep 2 only ever acts on masks drawn into `groups`, all of
            // which are color subsets, so replaying the filtered list in
            // sweep order visits exactly the entries sweep 2 would.
            for &u in g.neighbors(v) {
                let ru = urn.record(h2, u);
                for (cs, cnt) in ru.iter_tree(t_second) {
                    if cs.is_subset_of(colors) {
                        note_grow(&self.allocs, entries.len(), entries.capacity());
                        entries.push((u, cs.0, cnt));
                        let slot = &mut second_totals[cs.0 as usize];
                        if *slot == 0 {
                            note_grow(&self.allocs, touched.len(), touched.capacity());
                            touched.push(cs.0);
                        }
                        *slot += cnt;
                    }
                }
            }
        }

        // Candidate splits weighted by c(T'_{C'}, v) · S[C \ C'].
        // `T'` singleton gets the same level-1 shortcut as the sweep.
        let mut total: u128 = 0;
        let push_cand = |cp: ColorSet,
                         cv: u128,
                         total: &mut u128,
                         cands: &mut Vec<(ColorSet, ColorSet, u128)>| {
            if !cp.is_subset_of(colors) {
                return;
            }
            let cs = colors.minus(cp);
            debug_assert_eq!(cs.len(), h2);
            let su = second_totals[cs.0 as usize];
            if su > 0 {
                let w = cv.checked_mul(su).expect("split weight overflows u128");
                *total += w;
                note_grow(&self.allocs, cands.len(), cands.capacity());
                cands.push((cp, cs, w));
            }
        };
        if h1 == 1 {
            push_cand(ColorSet::single(coloring.color(v)), 1, &mut total, cands);
        } else {
            let rv = urn.record(h1, v);
            for (cp, cv) in rv.iter_tree(t_prime) {
                push_cand(cp, cv, &mut total, cands);
            }
        }
        assert!(
            total > 0,
            "consistency: c(T_C, v) > 0 implies at least one split"
        );

        // Draw the splits; collect per-C'' thresholds for the u selection.
        for _ in 0..count {
            let mut r = self.rng.gen_range(1..=total);
            let &(cp, cs, _) = cands
                .iter()
                .find(|&&(_, _, w)| {
                    if r <= w {
                        true
                    } else {
                        r -= w;
                        false
                    }
                })
                .expect("r within total");
            let su = second_totals[cs.0 as usize];
            note_grow(&self.allocs, pending.len(), pending.capacity());
            pending.push(Pending {
                c_prime: cp,
                c_second: cs,
                r2: self.rng.gen_range(1..=su),
                u: None,
            });
        }

        // Single-draw fast path (the common, unbuffered case): one
        // threshold means no grouping, no sort, no cursors — just walk the
        // sweep-2 prefix sum for the drawn C'' until it crosses r2.
        self.sweeps += 1;
        if count == 1 {
            let p = &mut pending[0];
            let target = p.c_second.0;
            let mut cum: u128 = 0;
            if h2 == 1 {
                // Level-1 shortcut again: each neighbor contributes 1 iff
                // its color singleton is the drawn C''.
                for &u in g.neighbors(v) {
                    if ColorSet::single(coloring.color(u)).0 == target {
                        cum += 1;
                        if p.r2 <= cum {
                            p.u = Some(u);
                            break;
                        }
                    }
                }
            } else {
                for &(u, m, cnt) in entries.iter() {
                    if m == target {
                        cum += cnt;
                        if p.r2 <= cum {
                            p.u = Some(u);
                            break;
                        }
                    }
                }
            }
            let p = &pending[0];
            draws.push(SplitDraw {
                c_prime: p.c_prime,
                c_second: p.c_second,
                u: p.u.expect("threshold within total must assign"),
            });
            return;
        }

        // Group thresholds by C'' and sort them, so one sweep assigns all.
        for (i, p) in pending.iter().enumerate() {
            let m = p.c_second.0;
            let idxs = &mut groups[m as usize];
            if idxs.is_empty() {
                note_grow(&self.allocs, group_masks.len(), group_masks.capacity());
                group_masks.push(m);
                cursors[m as usize] = (0, 0);
            }
            note_grow(&self.allocs, idxs.len(), idxs.capacity());
            idxs.push(i);
        }
        for &m in group_masks.iter() {
            groups[m as usize].sort_unstable_by_key(|&i| pending[i].r2);
        }

        // Sweep 2: prefix sums per C'' assign every threshold its u. The
        // singleton case walks neighbor colors; everything else replays the
        // staged sweep-1 entries. Breaking as soon as `unassigned` hits
        // zero is equivalent to the per-neighbor early exit — the remaining
        // iterations could not assign anything either way.
        let mut unassigned = pending.len();
        if h2 == 1 {
            'sweep: for &u in g.neighbors(v) {
                let cs = ColorSet::single(coloring.color(u));
                let idxs = &groups[cs.0 as usize];
                if idxs.is_empty() {
                    continue;
                }
                let (cum, pos) = &mut cursors[cs.0 as usize];
                *cum += 1;
                while *pos < idxs.len() && pending[idxs[*pos]].r2 <= *cum {
                    pending[idxs[*pos]].u = Some(u);
                    *pos += 1;
                    unassigned -= 1;
                    if unassigned == 0 {
                        break 'sweep;
                    }
                }
            }
        } else {
            'replay: for &(u, m, cnt) in entries.iter() {
                let idxs = &groups[m as usize];
                if idxs.is_empty() {
                    continue;
                }
                let (cum, pos) = &mut cursors[m as usize];
                *cum += cnt;
                while *pos < idxs.len() && pending[idxs[*pos]].r2 <= *cum {
                    pending[idxs[*pos]].u = Some(u);
                    *pos += 1;
                    unassigned -= 1;
                    if unassigned == 0 {
                        break 'replay;
                    }
                }
            }
        }
        debug_assert_eq!(unassigned, 0, "thresholds within totals must all assign");

        if draws.capacity() < pending.len() {
            // The pushes below will reallocate the draws buffer.
            if let Some(c) = &self.allocs {
                c.inc();
            }
        }
        for p in pending.iter() {
            draws.push(SplitDraw {
                c_prime: p.c_prime,
                c_second: p.c_second,
                u: p.u.expect("assigned in sweep 2"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_urn, BuildConfig, ColoringSpec};
    use motivo_graph::generators;
    use std::collections::HashMap as Map;

    /// On K4 with a rainbow coloring, every 3-subset is a colorful triangle
    /// host; sampled 3-treelet copies must be uniform over their supports.
    #[test]
    fn samples_are_valid_and_distinct() {
        let g = generators::complete_graph(6);
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(4)
        }
        .seed(3);
        let urn = build_urn(&g, &cfg).unwrap();
        let mut s = Sampler::new(&urn, SampleConfig::seeded(1));
        for _ in 0..200 {
            let verts = s.sample_copy();
            assert_eq!(verts.len(), 4);
            let mut sorted = verts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
            // All distinct colors.
            let mut cols: Vec<u8> = verts.iter().map(|&v| urn.coloring().color(v)).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), 4);
        }
    }

    /// Uniformity: on the path 0-1-2-3 with a rainbow coloring there are
    /// exactly three 2-node colorful treelet copies at k=2; each edge must
    /// appear with frequency 1/3.
    #[test]
    fn copies_are_uniform_on_path() {
        let g = generators::path_graph(4);
        let cfg = BuildConfig {
            threads: 1,
            coloring: ColoringSpec::Fixed(vec![0, 1, 0, 1]),
            ..BuildConfig::new(2)
        };
        let urn = build_urn(&g, &cfg).unwrap();
        assert_eq!(urn.total_treelets(), 3);
        let mut s = Sampler::new(&urn, SampleConfig::seeded(5));
        let mut tally: Map<Vec<u32>, u64> = Map::new();
        let trials = 30_000;
        for _ in 0..trials {
            let mut v = s.sample_copy();
            v.sort_unstable();
            *tally.entry(v).or_insert(0) += 1;
        }
        assert_eq!(tally.len(), 3);
        for (copy, hits) in tally {
            let f = hits as f64 / trials as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.02, "copy {copy:?} freq {f}");
        }
    }

    /// Uniformity across copies with different shapes: star vs path
    /// 3-treelets in a small tree.
    #[test]
    fn copies_are_uniform_across_shapes() {
        // Star with 3 leaves: colorful 3-treelets under a rainbow-ish
        // coloring; compare empirical frequencies against exact counts from
        // the urn totals.
        let g = generators::star_graph(4);
        let cfg = BuildConfig {
            threads: 1,
            coloring: ColoringSpec::Fixed(vec![0, 1, 2, 1]),
            ..BuildConfig::new(3)
        };
        let urn = build_urn(&g, &cfg).unwrap();
        // Colorful 3-subtrees: {0,1,2}, {0,3,2} (cherries at the center);
        // colors {0,1,2} each; total must be 2.
        assert_eq!(urn.total_treelets(), 2);
        let mut s = Sampler::new(&urn, SampleConfig::seeded(11));
        let mut tally: Map<Vec<u32>, u64> = Map::new();
        for _ in 0..20_000 {
            let mut v = s.sample_copy();
            v.sort_unstable();
            *tally.entry(v).or_insert(0) += 1;
        }
        assert_eq!(tally.len(), 2);
        for (_, hits) in tally {
            let f = hits as f64 / 20_000.0;
            assert!((f - 0.5).abs() < 0.02, "freq {f}");
        }
    }

    /// Buffered and unbuffered sampling draw from the same distribution.
    #[test]
    fn buffering_preserves_distribution() {
        let g = generators::star_heavy(300, 2, 0.8, 7);
        let cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(3)
        }
        .seed(1);
        let urn = build_urn(&g, &cfg).unwrap();
        let tally = |buffering: bool, seed: u64| {
            let sc = SampleConfig {
                seed,
                buffering,
                buffer_threshold: 8,
                buffer_batch: 50,
                ..SampleConfig::default()
            };
            let mut s = Sampler::new(&urn, sc);
            let mut t: Map<Vec<u32>, u64> = Map::new();
            for _ in 0..20_000 {
                let mut v = s.sample_copy();
                v.sort_unstable();
                *t.entry(v).or_insert(0) += 1;
            }
            t
        };
        let buf = tally(true, 2);
        let plain = tally(false, 3);
        // Compare aggregate statistics: same support size ballpark and
        // similar mass on the most frequent copies.
        let top = |t: &Map<Vec<u32>, u64>| {
            let mut v: Vec<u64> = t.values().copied().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.truncate(5);
            v
        };
        let (tb, tp) = (top(&buf), top(&plain));
        for (a, b) in tb.iter().zip(tp.iter()) {
            let (fa, fb) = (*a as f64 / 20_000.0, *b as f64 / 20_000.0);
            assert!(
                (fa - fb).abs() < 0.05,
                "buffered {fa} vs plain {fb} (tops {tb:?} vs {tp:?})"
            );
        }
    }

    /// Buffering reduces neighbor sweeps per sample on hub graphs.
    #[test]
    fn buffering_cuts_sweeps() {
        let g = generators::star_heavy(400, 2, 0.9, 13);
        let cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(4)
        }
        .seed(2);
        let urn = build_urn(&g, &cfg).unwrap();
        let sweeps = |buffering: bool| {
            let sc = SampleConfig {
                seed: 4,
                buffering,
                buffer_threshold: 64,
                buffer_batch: 100,
                ..SampleConfig::default()
            };
            let mut s = Sampler::new(&urn, sc);
            for _ in 0..2_000 {
                s.sample_copy();
            }
            let (_, sweeps) = s.stats();
            sweeps
        };
        let with = sweeps(true);
        let without = sweeps(false);
        // Only hub vertices are buffered, so the cut is bounded by the
        // fraction of split draws that happen at hubs; 2x is already the
        // hub-dominated regime.
        assert!(
            with * 2 < without,
            "buffering should cut sweeps at least 2x: {with} vs {without}"
        );
    }

    /// The `sampling_allocs` debug counter: arena growth happens during
    /// warm-up, then the steady state runs allocation-free — the counter
    /// must stop moving once the scratch buffers have seen the workload.
    #[test]
    fn steady_state_sampling_does_not_allocate() {
        use motivo_obs::{Obs, Registry};
        use std::sync::Arc;

        let g = generators::star_heavy(500, 3, 0.6, 5);
        let cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(4)
        }
        .seed(6);
        let urn = build_urn(&g, &cfg).unwrap();
        let registry = Arc::new(Registry::new());
        let sc = SampleConfig {
            buffering: false,
            ..SampleConfig::seeded(2)
        }
        .with_obs(Obs::enabled(registry.clone()));
        let mut s = Sampler::new(&urn, sc);
        let counter = registry.counter(SAMPLING_ALLOCS_COUNTER);
        let mut out = Vec::new();
        for _ in 0..200 {
            s.sample_copy_into(&mut out);
        }
        let after_warmup = counter.get();
        for _ in 0..5_000 {
            s.sample_copy_into(&mut out);
        }
        assert_eq!(
            counter.get(),
            after_warmup,
            "sampling allocated after warm-up"
        );
        // And the counter is genuinely wired: a cold sampler grows its
        // arenas at least once on this workload.
        let mut cold = Sampler::new(
            &urn,
            SampleConfig {
                buffering: false,
                ..SampleConfig::seeded(2)
            }
            .with_obs(Obs::enabled(registry.clone())),
        );
        let before = counter.get();
        for _ in 0..200 {
            cold.sample_copy_into(&mut out);
        }
        assert!(counter.get() > before, "warm-up never touched the counter");
    }

    /// Shape-restricted sampling only returns copies of the requested shape.
    #[test]
    fn shape_sampling_respects_shape() {
        let g = generators::complete_graph(7);
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(4)
        }
        .seed(9);
        let urn = build_urn(&g, &cfg).unwrap();
        let star = motivo_treelet::star_treelet(4);
        let j = urn.shape_index(star);
        assert!(urn.shape_total(j) > 0);
        let alias = motivo_table::AliasTable::from_u128(&urn.shape_vertex_totals(star));
        let mut s = Sampler::new(&urn, SampleConfig::seeded(8));
        for _ in 0..100 {
            let verts = s.sample_copy_of_shape(star, &alias);
            assert_eq!(verts.len(), 4);
            // First vertex is the root (star center): adjacent to the rest.
            for &u in &verts[1..] {
                assert!(g.has_edge(verts[0], u));
            }
        }
    }
}
