//! Concentration-bound utilities (Theorems 2–4 and the sampling-cost
//! arithmetic quoted throughout §1 and §5).

/// `n!` as an `f64` (exact for `n ≤ 20`).
pub fn factorial(n: u32) -> f64 {
    (1..=n).map(|i| i as f64).product()
}

/// Theorem 2 (additive, from CC): an upper bound of the shape
/// `exp(−ε² g^{1/k})` on `Pr[|ĝ_i − g_i| > 2εg/(1−ε)]`, with `g` the total
/// k-graphlet count. Constants inside `Ω(·)` are not published; this
/// returns the exponential with unit constant, usable for qualitative
/// comparisons only.
pub fn theorem2_bound(eps: f64, g_total: f64, k: u32) -> f64 {
    (-(eps * eps) * g_total.powf(1.0 / k as f64)).exp().min(1.0)
}

/// Theorem 3 (multiplicative): `Pr[|ĝ_i − g_i| > ε g_i] <
/// 2 exp(−(2ε²/(k−1)!) · p_k g_i / Δ^{k−2})`.
///
/// This is the bound that justifies biased coloring: with `p_k =
/// k! λ^{k−1}(1−(k−1)λ)`, accuracy is retained as long as
/// `λ^{k−1} n / Δ^{k−2}` stays large (§3.4).
pub fn theorem3_bound(eps: f64, k: u32, p_k: f64, g_i: f64, max_degree: f64) -> f64 {
    assert!(k >= 2);
    let exponent = 2.0 * eps * eps / factorial(k - 1) * (p_k * g_i / max_degree.powi(k as i32 - 2));
    (2.0 * (-exponent).exp()).min(1.0)
}

/// The covering threshold of AGS (Theorem 4 / pseudocode line 3):
/// `c̄ = ⌈(4/ε²) ln(2s/δ)⌉` for `s` graphlet classes.
pub fn ags_cover_threshold(eps: f64, delta: f64, s: u64) -> u64 {
    assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0 && s >= 1);
    (4.0 / (eps * eps) * (2.0 * s as f64 / delta).ln()).ceil() as u64
}

/// Expected naive samples to witness one copy of a graphlet with colorful
/// count `c_i` and `σ_i` spanning trees, out of `t` total colorful treelets
/// (§2.2): `t / (c_i σ_i)`. This is the quantity behind the paper's
/// "3·10³ years at 10⁹ samples/s" example.
pub fn naive_samples_to_witness(t: f64, c_i: f64, sigma_i: f64) -> f64 {
    assert!(c_i > 0.0 && sigma_i > 0.0 && t > 0.0);
    t / (c_i * sigma_i)
}

/// Number of distinct k-graphlets (`s` in the paper; OEIS A001349) for the
/// sizes the experiments touch. Used to size the AGS union bound.
pub fn num_graphlet_classes(k: u32) -> Option<u64> {
    match k {
        1 => Some(1),
        2 => Some(1),
        3 => Some(2),
        4 => Some(6),
        5 => Some(21),
        6 => Some(112),
        7 => Some(853),
        8 => Some(11_117),
        9 => Some(261_080),
        10 => Some(11_716_571),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(factorial(10), 3_628_800.0);
    }

    #[test]
    fn theorem3_monotone_in_gi_and_delta() {
        // Parameters in the informative (unclamped) regime: k = 4, Δ = 10.
        let p4 = 24.0 / 256.0;
        let b1 = theorem3_bound(0.5, 4, p4, 1e5, 10.0);
        let b2 = theorem3_bound(0.5, 4, p4, 1e6, 10.0);
        assert!(b1 < 1.0, "b1 = {b1} must be informative");
        assert!(b2 < b1, "more copies ⇒ tighter bound: {b2} vs {b1}");
        let b3 = theorem3_bound(0.5, 4, p4, 1e5, 100.0);
        assert!(b3 > b1, "larger max degree ⇒ weaker bound");
        assert!(b2 > 0.0);
    }

    #[test]
    fn cover_threshold_matches_formula() {
        // ε = 0.5, δ = 0.1, s = 21 → (4/0.25)·ln(420) ≈ 16·6.04 = 96.7 → 97.
        assert_eq!(ags_cover_threshold(0.5, 0.1, 21), 97);
        // Tighter ε inflates quadratically.
        assert!(ags_cover_threshold(0.1, 0.1, 21) > 20 * ags_cover_threshold(0.5, 0.1, 21));
    }

    #[test]
    fn witness_cost_is_inverse_frequency() {
        // 0.01% of the urn ⇒ ~10⁴ samples.
        let cost = naive_samples_to_witness(1e8, 1e4, 1.0);
        assert!((cost - 1e4).abs() < 1e-6);
    }

    #[test]
    fn class_counts_table() {
        assert_eq!(num_graphlet_classes(5), Some(21));
        assert_eq!(num_graphlet_classes(8), Some(11_117));
        assert_eq!(num_graphlet_classes(17), None);
    }
}
