//! AGS — adaptive graphlet sampling (§4).
//!
//! Naive sampling needs `Ω(1/f)` samples to even witness a graphlet of
//! relative frequency `f`. AGS virtually *deletes* already-covered graphlets
//! from the urn by switching which rooted treelet shape it samples: once a
//! graphlet `H_i` has appeared in `c̄` samples it is marked covered, and the
//! sampler moves to the shape `T_{j*}` minimizing the probability of
//! spanning any covered graphlet —
//!
//! ```text
//! j* = argmin_j (1/r_j) · Σ_{i ∈ Covered} σ*_ij · ĝ_i
//! ```
//!
//! — the online greedy step of a fractional set-cover LP (Theorem 6: within
//! `O(ln s) = O(k²)` of the clairvoyant optimum). Estimates come from the
//! importance weights `w_i = Σ_j usage_j · σ*_ij / (k · r_j)` accumulated
//! over the run: `E[c_i] = g_i · w_i`, so `ĝ_i = c_i / w_i` (a martingale;
//! Theorem 4 gives the multiplicative `(1 ± ε)` guarantee once `c̄ ≥
//! (4/ε²) ln(2s/δ)`).
//!
//! `σ*_ij` counts *rooted* spanning shapes over all roots; since the
//! color-0 vertex of a colorful copy is uniform among its `k` nodes, the
//! per-copy spanning probability under the 0-rooted urn is `σ*_ij/(k·r_j)`
//! (see DESIGN.md §3.4 for the derivation and the `Σ_j σ*_ij = k·σ_i`
//! cross-check).

use crate::bounds::ags_cover_threshold;
use crate::naive::{Estimates, GraphletEstimate};
use crate::parallel::{merge_tallies, run_sharded, shard_sizes, split_seed, AGS_SHARD_SAMPLES};
use crate::sample::{SampleConfig, Sampler};
use crate::tally::SoaTally;
use crate::urn::Urn;
use motivo_graphlet::{Graphlet, GraphletRegistry};
use motivo_table::AliasTable;
use std::time::Instant;

/// AGS configuration.
///
/// ```
/// use motivo_core::AgsConfig;
///
/// // ε = 0.1, δ = 0.01 multiplicative guarantee over ≤ 100 classes.
/// let cfg = AgsConfig::with_guarantee(0.1, 0.01, 100);
/// assert!(cfg.c_bar >= 1000); // Theorem 4: c̄ ≥ (4/ε²) ln(2s/δ)
/// ```
#[derive(Clone, Debug)]
pub struct AgsConfig {
    /// Covering threshold `c̄`: samples of a class before it is "deleted"
    /// (paper experiments use 1000).
    pub c_bar: u64,
    /// Total sampling budget.
    pub max_samples: u64,
    /// Stop early when every discovered class is covered and no new class
    /// has appeared for this many samples.
    pub idle_limit: u64,
    /// Samples per coordinator epoch. Workers draw this many samples
    /// against the frozen shape choice before the coordinator merges
    /// tallies, re-checks coverage, and performs the greedy switch. Smaller
    /// epochs react faster; larger epochs parallelize wider. Must not
    /// depend on the thread count (it is part of the deterministic stream
    /// layout).
    pub epoch: u64,
    /// Embedding-sampler knobs, including the `threads` worker count.
    pub sample: SampleConfig,
}

impl Default for AgsConfig {
    fn default() -> AgsConfig {
        AgsConfig {
            c_bar: 1000,
            max_samples: 1_000_000,
            idle_limit: 50_000,
            epoch: 2_048,
            sample: SampleConfig::default(),
        }
    }
}

impl AgsConfig {
    /// Derives `c̄` from the `(ε, δ)` guarantee of Theorem 4 for `s`
    /// graphlet classes.
    pub fn with_guarantee(eps: f64, delta: f64, s: u64) -> AgsConfig {
        AgsConfig {
            c_bar: ags_cover_threshold(eps, delta, s),
            ..AgsConfig::default()
        }
    }

    /// Sets the worker-thread count (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> AgsConfig {
        self.sample.threads = threads;
        self
    }
}

/// Outcome of an AGS run.
pub struct AgsResult {
    /// Per-class estimates (same shape as the naive estimator's output).
    pub estimates: Estimates,
    /// Number of treelet switches performed.
    pub switches: u64,
    /// Samples drawn per rooted shape.
    pub shape_usage: Vec<u64>,
    /// Classes that reached the covering threshold.
    pub covered: usize,
}

/// Runs AGS against an urn, growing `registry` with every class discovered.
///
/// The engine is **epoch-based**: workers draw fixed-size sample batches
/// against the epoch's frozen shape choice `T_j` (one [`Sampler`] per
/// logical shard on its own [`split_seed`] stream), and the coordinator
/// merges the shard tallies in shard order, classifies new codes in
/// ascending code order, re-checks coverage, and performs the greedy shape
/// switch of §4 between epochs. The switch granularity moves from one
/// sample to one epoch, but the set-cover semantics — and the Theorem 4/6
/// estimator guarantees, which only depend on the per-shape usage counts —
/// are preserved; see DESIGN.md §5.3. For a fixed seed the result is
/// bit-identical at any `cfg.sample.threads`.
///
/// ```
/// use motivo_core::{ags, build_urn, AgsConfig, BuildConfig};
/// use motivo_graphlet::GraphletRegistry;
///
/// let g = motivo_graph::generators::complete_graph(16);
/// let urn = build_urn(&g, &BuildConfig::new(4).seed(7)).unwrap();
/// let mut registry = GraphletRegistry::new(4);
/// let cfg = AgsConfig { max_samples: 4_000, idle_limit: 1_000, ..AgsConfig::default() };
/// let res = ags(&urn, &mut registry, &cfg);
/// assert!(res.estimates.total_count() > 0.0);
/// assert_eq!(res.shape_usage.iter().sum::<u64>(), res.estimates.samples);
/// ```
pub fn ags(urn: &Urn<'_>, registry: &mut GraphletRegistry, cfg: &AgsConfig) -> AgsResult {
    assert_eq!(registry.k() as u32, urn.k(), "registry k must match urn k");
    assert!(cfg.epoch > 0, "epoch must be positive");
    let start = Instant::now();
    let g = urn.graph();
    let k = urn.k();
    let shapes = urn.shapes();
    let r: Vec<u128> = urn.shape_totals().to_vec();

    let mut counts: Vec<u64> = vec![0; registry.len()];
    let mut covered: Vec<bool> = vec![false; registry.len()];
    let mut usage: Vec<u64> = vec![0; shapes.len()];
    let mut covered_count = 0usize;
    let mut switches = 0u64;
    let mut samples = 0u64;
    let mut last_discovery = 0u64;

    // Start from the shape with the most colorful occurrences (§4).
    let mut j = (0..shapes.len())
        .max_by_key(|&j| r[j])
        .expect("at least one shape");
    assert!(r[j] > 0, "urn is nonempty");
    let mut alias = AliasTable::from_u128(&urn.shape_vertex_totals(shapes[j]));

    // RNG stream id of (epoch, shard): `epoch · stride + shard`. An epoch
    // larger than `stride · AGS_SHARD_SAMPLES` samples would spill shard
    // ids into the next epoch's stream range and silently duplicate RNG
    // streams, so reject it outright (2³² samples per epoch is far beyond
    // any sane configuration anyway).
    const STREAMS_PER_EPOCH: u64 = 1 << 24;
    assert!(
        cfg.epoch <= STREAMS_PER_EPOCH * AGS_SHARD_SAMPLES,
        "epoch of {} samples exceeds the RNG stream budget ({})",
        cfg.epoch,
        STREAMS_PER_EPOCH * AGS_SHARD_SAMPLES
    );
    let mut epoch_index = 0u64;
    let epoch_counter = cfg.sample.obs.counter("ags.epochs");
    let epoch_hist = cfg.sample.obs.histogram("ags.epoch");

    while samples < cfg.max_samples {
        let epoch_start = std::time::Instant::now();
        // Early exit: everything known is covered and discovery has dried up.
        if covered_count > 0
            && covered_count == registry.len()
            && samples.saturating_sub(last_discovery) >= cfg.idle_limit
        {
            break;
        }

        // Workers: draw this epoch's batch against the frozen shape.
        let budget = cfg.epoch.min(cfg.max_samples - samples);
        let sizes = shard_sizes(budget, AGS_SHARD_SAMPLES);
        let shape = shapes[j];
        let alias_ref = &alias;
        let tallies = run_sharded(sizes.len(), cfg.sample.threads, |shard| {
            let scfg = SampleConfig {
                seed: split_seed(
                    cfg.sample.seed,
                    epoch_index * STREAMS_PER_EPOCH + shard as u64,
                ),
                ..cfg.sample.clone()
            };
            let mut sampler = Sampler::new(urn, scfg);
            // Same shard-local arenas as the naive loop: reused vertex and
            // row buffers plus a structure-of-arrays tally.
            let mut tally = SoaTally::new(urn.k() as u8);
            let mut verts: Vec<u32> = Vec::with_capacity(urn.k() as usize);
            let mut rows: Vec<u16> = Vec::with_capacity(urn.k() as usize);
            for _ in 0..sizes[shard] {
                sampler.sample_copy_of_shape_into(shape, alias_ref, &mut verts);
                g.induced_rows_into(&verts, &mut rows);
                tally.add(&Graphlet::from_rows(&rows));
            }
            tally.into_tally()
        });
        epoch_index += 1;
        usage[j] += budget;
        samples += budget;

        // Coordinator: merge in shard order, classify in ascending code
        // order (keeps registry indices deterministic), update coverage.
        let mut by_code: Vec<(u128, u64)> = merge_tallies(tallies).into_iter().collect();
        by_code.sort_unstable_by_key(|&(code, _)| code);
        for (code, n) in by_code {
            let raw = Graphlet::from_code(code).expect("valid canonical code");
            let idx = registry.classify(&raw);
            if idx >= counts.len() {
                counts.resize(registry.len(), 0);
                covered.resize(registry.len(), false);
                last_discovery = samples;
            }
            counts[idx] += n;
        }
        // Greedy switch per newly covered class, in ascending class order —
        // the serial rule at epoch granularity.
        for idx in 0..counts.len() {
            if !covered[idx] && counts[idx] >= cfg.c_bar {
                covered[idx] = true;
                covered_count += 1;
                let new_j = best_shape(registry, &counts, &covered, &usage, &r, k);
                if new_j != j {
                    j = new_j;
                    alias = AliasTable::from_u128(&urn.shape_vertex_totals(shapes[j]));
                }
                switches += 1;
            }
        }
        if let Some(c) = &epoch_counter {
            c.inc();
        }
        if let Some(h) = &epoch_hist {
            h.record_duration(epoch_start.elapsed());
        }
    }

    // Final estimates: ĝ_i = c_i / w_i (colorful), then / p_k.
    let p_k = urn.p_colorful();
    let mut per_graphlet = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let w = importance_weight(registry, &usage, &r, k, i);
        debug_assert!(w > 0.0, "observed classes have positive weight");
        let colorful = c as f64 / w;
        per_graphlet.push(GraphletEstimate {
            index: i,
            occurrences: c,
            colorful,
            count: colorful / p_k,
            frequency: 0.0,
        });
    }
    let total: f64 = per_graphlet.iter().map(|e| e.count).sum();
    if total > 0.0 {
        for e in &mut per_graphlet {
            e.frequency = e.count / total;
        }
    }
    AgsResult {
        estimates: Estimates {
            k,
            samples,
            elapsed: start.elapsed(),
            per_graphlet,
        },
        switches,
        shape_usage: usage,
        covered: covered_count,
    }
}

/// `w_i = Σ_j usage_j · σ*_ij / (k · r_j)` — the accumulated probability
/// mass with which class `i` was observable over the run (line 8 of the
/// pseudocode, reconstructed retroactively from per-shape usage so that
/// classes discovered late get their full history).
fn importance_weight(
    registry: &GraphletRegistry,
    usage: &[u64],
    r: &[u128],
    k: u32,
    i: usize,
) -> f64 {
    let sigma = &registry.info(i).sigma_rooted;
    let mut w = 0.0;
    for (j, &u) in usage.iter().enumerate() {
        if u > 0 && sigma[j] > 0 {
            w += u as f64 * sigma[j] as f64 / (k as f64 * r[j] as f64);
        }
    }
    w
}

/// Line 14: `argmin_j (1/r_j) Σ_{i∈Covered} σ*_ij · ĝ_i` over usable shapes.
fn best_shape(
    registry: &GraphletRegistry,
    counts: &[u64],
    covered: &[bool],
    usage: &[u64],
    r: &[u128],
    k: u32,
) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::INFINITY;
    for j in 0..r.len() {
        if r[j] == 0 {
            continue;
        }
        let mut score = 0.0;
        for (i, &cov) in covered.iter().enumerate() {
            if !cov {
                continue;
            }
            let sigma_ij = registry.info(i).sigma_rooted[j];
            if sigma_ij == 0 {
                continue;
            }
            let w_i = importance_weight(registry, usage, r, k, i);
            let g_hat = counts[i] as f64 / w_i;
            score += sigma_ij as f64 * g_hat;
        }
        score /= r[j] as f64;
        if score < best_score {
            best_score = score;
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_urn, BuildConfig};
    use motivo_graph::generators;

    /// AGS on K5 at k=3 must reproduce the triangle count like the naive
    /// estimator does (single class, no switching subtleties). Empty-urn
    /// colorings contribute a zero estimate, keeping the average unbiased.
    #[test]
    fn ags_matches_truth_on_k5() {
        let g = generators::complete_graph(5);
        let mut registry = GraphletRegistry::new(3);
        let mut acc = 0.0;
        let runs = 100;
        for seed in 0..runs {
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(seed);
            match build_urn(&g, &cfg) {
                Err(crate::error::BuildError::EmptyUrn) => {}
                Err(e) => panic!("unexpected build error: {e}"),
                Ok(urn) => {
                    let ags_cfg = AgsConfig {
                        c_bar: 100,
                        max_samples: 1_000,
                        idle_limit: 300,
                        sample: SampleConfig::seeded(seed + 50),
                        ..AgsConfig::default()
                    };
                    let res = ags(&urn, &mut registry, &ags_cfg);
                    acc += res.estimates.total_count();
                }
            }
        }
        let avg = acc / runs as f64;
        assert!(
            (avg - 10.0).abs() < 1.5,
            "AGS triangle estimate {avg}, want 10"
        );
    }

    /// On a star-dominated graph, AGS must find strictly more classes than
    /// naive sampling under the same budget — the §5.3 behaviour. The graph
    /// is one giant star plus eight 2-vertex tails hanging off the center:
    /// path-4 copies exist through every tail (≈ 16 000 of them against
    /// ≈ 1.3·10⁹ stars, sample frequency ≈ 10⁻⁵), so a single coloring keeps
    /// some of them colorful w.h.p., the naive budget of 30k samples cannot
    /// reach ten occurrences, and `sample(path-shape)` finds them instantly.
    #[test]
    fn ags_discovers_rare_classes() {
        let tails = 8u32;
        let leaves = 2000u32;
        let mut edges: Vec<(u32, u32)> = (1..=leaves).map(|i| (0, i)).collect();
        let mut next = leaves + 1;
        for _ in 0..tails {
            edges.push((0, next));
            edges.push((next, next + 1));
            next += 2;
        }
        let g = motivo_graph::Graph::from_edges(next, &edges);
        let k = 4u32;
        let budget = 30_000u64;
        let cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(k)
        }
        .seed(5);
        let urn = build_urn(&g, &cfg).unwrap();

        let mut reg_naive = GraphletRegistry::new(k as u8);
        let naive =
            crate::naive::naive_estimates(&urn, &mut reg_naive, budget, &SampleConfig::seeded(2));
        let mut reg_ags = GraphletRegistry::new(k as u8);
        let ags_cfg = AgsConfig {
            c_bar: 500,
            max_samples: budget,
            idle_limit: 10_000,
            sample: SampleConfig::seeded(2),
            ..AgsConfig::default()
        };
        let res = ags(&urn, &mut reg_ags, &ags_cfg);

        // Count classes seen at least 10 times (the paper's Fig. 10 filter:
        // enough occurrences to be more than chance).
        let solid = |e: &Estimates| {
            e.per_graphlet
                .iter()
                .filter(|x| x.occurrences >= 10)
                .count()
        };
        let naive_classes = solid(&naive);
        let ags_classes = solid(&res.estimates);
        assert!(
            ags_classes > naive_classes,
            "AGS found {ags_classes} solid classes, naive {naive_classes}"
        );
        assert!(res.switches > 0, "AGS never switched treelets");
        // The rarest solidly-sampled AGS frequency undercuts naive's.
        let min_f = |e: &Estimates| {
            e.per_graphlet
                .iter()
                .filter(|x| x.occurrences >= 10)
                .map(|x| x.frequency)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(min_f(&res.estimates) < min_f(&naive));
    }

    /// The epoch engine is bit-identical across thread counts: shards and
    /// their seeds depend only on the budget and the base seed.
    #[test]
    fn ags_is_bit_identical_across_threads() {
        let g = generators::barabasi_albert(200, 3, 4);
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(4)
        }
        .seed(3);
        let urn = build_urn(&g, &cfg).unwrap();
        let run = |threads: usize| {
            let mut registry = GraphletRegistry::new(4);
            let acfg = AgsConfig {
                c_bar: 200,
                max_samples: 10_000,
                idle_limit: 2_000,
                sample: SampleConfig::seeded(9).threads(threads),
                ..AgsConfig::default()
            };
            let res = ags(&urn, &mut registry, &acfg);
            let classes: Vec<(usize, u64, u64)> = res
                .estimates
                .per_graphlet
                .iter()
                .map(|e| (e.index, e.occurrences, e.count.to_bits()))
                .collect();
            (
                res.estimates.samples,
                res.switches,
                res.shape_usage,
                classes,
            )
        };
        let base = run(1);
        for threads in [2, 8] {
            assert_eq!(base, run(threads), "AGS diverged at {threads} threads");
        }
    }

    /// Importance weights are consistent: a class observed only via shape j
    /// has w_i = usage_j σ*_ij / (k r_j).
    #[test]
    fn weights_accumulate_per_usage() {
        let g = generators::complete_graph(6);
        let cfg = BuildConfig {
            threads: 1,
            ..BuildConfig::new(3)
        }
        .seed(1);
        let urn = build_urn(&g, &cfg).unwrap();
        let mut registry = GraphletRegistry::new(3);
        let idx = registry.classify(&motivo_graphlet::clique(3));
        let usage = vec![10u64, 0];
        let r = urn.shape_totals().to_vec();
        let w = importance_weight(&registry, &usage, &r, 3, idx);
        let sigma = registry.info(idx).sigma_rooted[0] as f64;
        let want = 10.0 * sigma / (3.0 * r[0] as f64);
        assert!((w - want).abs() < 1e-12);
    }

    /// With sigma tables, the best-shape rule avoids shapes that span the
    /// covered class when an alternative exists. The tail-path graphlet of
    /// a lollipop has only ~a dozen copies, so a single coloring may wipe
    /// it from the urn entirely (that is inherent to color coding); we
    /// average over colorings and require AGS to find it in most.
    #[test]
    fn switch_prefers_low_overlap_shapes() {
        let g = generators::lollipop(12, 12);
        let k = 4u32;
        let mut found = 0;
        let runs = 6;
        for seed in 0..runs {
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(k)
            }
            .seed(seed);
            let urn = match build_urn(&g, &cfg) {
                Ok(u) => u,
                Err(_) => continue,
            };
            let mut registry = GraphletRegistry::new(k as u8);
            let ags_cfg = AgsConfig {
                c_bar: 300,
                max_samples: 30_000,
                idle_limit: 8_000,
                sample: SampleConfig::seeded(seed + 4),
                ..AgsConfig::default()
            };
            let res = ags(&urn, &mut registry, &ags_cfg);
            let path_idx = registry.classify(&motivo_graphlet::path(4));
            if res.estimates.get(path_idx).is_some() {
                found += 1;
            }
        }
        assert!(
            found >= runs / 2,
            "AGS found the tail path in only {found}/{runs} colorings"
        );
    }
}
