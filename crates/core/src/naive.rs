//! Naive (uniform-urn) graphlet counting — the sampling strategy of CC,
//! run on motivo's fast urn (§2.2, §5.2).
//!
//! Each sample is a uniform colorful k-treelet copy; the subgraph of `G`
//! induced by its vertices is a graphlet occurrence. With `t` the total
//! number of colorful k-treelets, `σ_i` the spanning trees of graphlet
//! `H_i`, and `χ_i` the number of samples landing on `H_i` out of `S`:
//!
//! ```text
//! ĉ_i (colorful copies) = (χ_i / S) · t / σ_i
//! ĝ_i (all copies)      = ĉ_i / p_k
//! ```
//!
//! Both are unbiased. The expected samples to *witness* `H_i` at all grow
//! as `t/(c_i σ_i)` — the additive-error barrier AGS breaks.

use crate::parallel::{merge_tallies, run_sharded, shard_sizes, split_seed, NAIVE_SHARD_SAMPLES};
use crate::sample::{SampleConfig, Sampler};
use crate::tally::SoaTally;
use crate::urn::Urn;
use motivo_graphlet::{Graphlet, GraphletRegistry};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Estimates for one graphlet class.
#[derive(Clone, Debug)]
pub struct GraphletEstimate {
    /// Dense index in the registry this run used.
    pub index: usize,
    /// Samples that landed on this class.
    pub occurrences: u64,
    /// Estimated colorful copies `ĉ_i`.
    pub colorful: f64,
    /// Estimated total induced copies `ĝ_i = ĉ_i / p_k`.
    pub count: f64,
    /// Estimated relative frequency among all k-graphlet copies.
    pub frequency: f64,
}

/// The result of an estimation run.
#[derive(Clone, Debug)]
pub struct Estimates {
    /// Graphlet size.
    pub k: u32,
    /// Samples taken.
    pub samples: u64,
    /// Wall-clock spent sampling.
    pub elapsed: Duration,
    /// Per-class estimates, indexed like the registry.
    pub per_graphlet: Vec<GraphletEstimate>,
}

impl Estimates {
    /// Estimated total number of induced k-graphlet copies.
    pub fn total_count(&self) -> f64 {
        self.per_graphlet.iter().map(|e| e.count).sum()
    }

    /// The estimate for a registry index, if that class was seen.
    pub fn get(&self, index: usize) -> Option<&GraphletEstimate> {
        self.per_graphlet.iter().find(|e| e.index == index)
    }

    /// Samples per second achieved.
    pub fn sampling_rate(&self) -> f64 {
        self.samples as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Draws `samples` copies across `cfg.threads` worker threads and tallies
/// canonical graphlet codes. Classification is shard-local (memoized
/// canonicalizer); registry resolution happens afterwards, single-threaded.
///
/// The workload is cut into logical shards of [`NAIVE_SHARD_SAMPLES`]
/// samples; shard `i` runs its own [`Sampler`] on the RNG stream
/// `split_seed(cfg.seed, i)` and shard tallies are merged in ascending
/// shard order. Both the shard layout and the seeds depend only on
/// `(samples, cfg.seed)`, so for a fixed seed the tally is **bit-identical
/// at any thread count** — threads only change wall-clock.
pub fn sample_tally(
    urn: &Urn<'_>,
    samples: u64,
    cfg: &SampleConfig,
) -> (HashMap<u128, u64>, Duration) {
    let start = Instant::now();
    let g = urn.graph();
    let sizes = shard_sizes(samples, NAIVE_SHARD_SAMPLES);
    let shard_hist = cfg.obs.histogram("sample.shard");
    let shard_hist = shard_hist.as_deref();
    let tallies = run_sharded(sizes.len(), cfg.threads, |shard| {
        let shard_start = Instant::now();
        let shard_cfg = SampleConfig {
            seed: split_seed(cfg.seed, shard as u64),
            ..cfg.clone()
        };
        let mut sampler = Sampler::new(urn, shard_cfg);
        // Shard-local arenas: one vertex buffer, one adjacency-row buffer,
        // and a structure-of-arrays tally, all reused across every sample
        // of the shard (no per-sample allocation or canonical-map probing).
        let mut tally = SoaTally::new(urn.k() as u8);
        let mut verts: Vec<u32> = Vec::with_capacity(urn.k() as usize);
        let mut rows: Vec<u16> = Vec::with_capacity(urn.k() as usize);
        for _ in 0..sizes[shard] {
            sampler.sample_copy_into(&mut verts);
            g.induced_rows_into(&verts, &mut rows);
            tally.add(&Graphlet::from_rows(&rows));
        }
        if let Some(hist) = shard_hist {
            hist.record_duration(shard_start.elapsed());
        }
        tally.into_tally()
    });
    (merge_tallies(tallies), start.elapsed())
}

/// Turns a canonical-code tally into per-class estimates.
///
/// Codes are classified in ascending order so that the registry indices a
/// fresh registry assigns — and hence the whole [`Estimates`] value — are a
/// pure function of the tally, not of hash-map iteration order.
pub fn estimates_from_tally(
    urn: &Urn<'_>,
    registry: &mut GraphletRegistry,
    tally: &HashMap<u128, u64>,
    samples: u64,
    elapsed: Duration,
) -> Estimates {
    let t = urn.total_treelets() as f64;
    let p_k = urn.p_colorful();
    let mut sorted: Vec<(u128, u64)> = tally.iter().map(|(&c, &o)| (c, o)).collect();
    sorted.sort_unstable_by_key(|&(c, _)| c);
    let mut per_graphlet = Vec::with_capacity(sorted.len());
    for (code, occ) in sorted {
        let g = Graphlet::from_code(code).expect("valid canonical code");
        let index = registry.classify(&g);
        let sigma = registry.info(index).spanning_trees as f64;
        let colorful = occ as f64 / samples as f64 * t / sigma;
        per_graphlet.push(GraphletEstimate {
            index,
            occurrences: occ,
            colorful,
            count: colorful / p_k,
            frequency: 0.0,
        });
    }
    per_graphlet.sort_unstable_by_key(|e| e.index);
    let total: f64 = per_graphlet.iter().map(|e| e.count).sum();
    if total > 0.0 {
        for e in &mut per_graphlet {
            e.frequency = e.count / total;
        }
    }
    Estimates {
        k: urn.k(),
        samples,
        elapsed,
        per_graphlet,
    }
}

/// End-to-end naive estimation: sample, classify, estimate. Parallelism
/// comes from `cfg.threads` (`0` = all cores); see [`sample_tally`] for the
/// determinism guarantee.
///
/// ```
/// use motivo_core::{build_urn, naive_estimates, BuildConfig, SampleConfig};
/// use motivo_graphlet::GraphletRegistry;
///
/// let g = motivo_graph::generators::complete_graph(6);
/// let urn = build_urn(&g, &BuildConfig::new(3).seed(1)).unwrap();
/// let mut registry = GraphletRegistry::new(3);
/// let est = naive_estimates(&urn, &mut registry, 5_000, &SampleConfig::seeded(2).threads(2));
/// assert_eq!(est.samples, 5_000);
/// assert!(est.total_count() > 0.0); // K6 is all triangles at k = 3
/// ```
pub fn naive_estimates(
    urn: &Urn<'_>,
    registry: &mut GraphletRegistry,
    samples: u64,
    cfg: &SampleConfig,
) -> Estimates {
    let (tally, elapsed) = sample_tally(urn, samples, cfg);
    estimates_from_tally(urn, registry, &tally, samples, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_urn, BuildConfig};
    use motivo_graph::generators;

    /// On K5 at k=3 every 3-subset is a triangle: the estimator must hit
    /// C(5,3) = 10 when averaged over colorings. Colorings that produce an
    /// empty urn legitimately contribute a zero estimate (this keeps the
    /// average exactly unbiased).
    #[test]
    fn triangle_count_on_k5() {
        let g = generators::complete_graph(5);
        let mut registry = GraphletRegistry::new(3);
        let mut acc = 0.0;
        let runs = 100;
        for seed in 0..runs {
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(seed);
            match build_urn(&g, &cfg) {
                Err(crate::error::BuildError::EmptyUrn) => {} // estimate 0
                Err(e) => panic!("unexpected build error: {e}"),
                Ok(urn) => {
                    let est = naive_estimates(
                        &urn,
                        &mut registry,
                        500,
                        &SampleConfig::seeded(seed + 100),
                    );
                    acc += est.total_count();
                }
            }
        }
        let avg = acc / runs as f64;
        assert!((avg - 10.0).abs() < 1.5, "triangle estimate {avg}, want 10");
    }

    /// Star graph at k=3: all graphlets are paths (cherries through the
    /// center): C(n-1, 2) of them, and zero triangles.
    #[test]
    fn star_counts_paths_only() {
        let g = generators::star_graph(12);
        let mut registry = GraphletRegistry::new(3);
        let mut acc = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(seed);
            let urn = build_urn(&g, &cfg).unwrap();
            let est = naive_estimates(&urn, &mut registry, 2_000, &SampleConfig::seeded(seed));
            assert_eq!(est.per_graphlet.len(), 1, "only the path class exists");
            acc += est.total_count();
        }
        let avg = acc / runs as f64;
        let want = 55.0; // C(11, 2)
        assert!(
            (avg - want).abs() < want * 0.15,
            "path estimate {avg}, want {want}"
        );
    }

    /// Frequencies sum to one and per-class counts are consistent.
    #[test]
    fn frequencies_normalize() {
        let g = generators::barabasi_albert(150, 3, 4);
        let cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(4)
        }
        .seed(7);
        let urn = build_urn(&g, &cfg).unwrap();
        let mut registry = GraphletRegistry::new(4);
        let est = naive_estimates(
            &urn,
            &mut registry,
            20_000,
            &SampleConfig::seeded(3).threads(2),
        );
        let fsum: f64 = est.per_graphlet.iter().map(|e| e.frequency).sum();
        assert!((fsum - 1.0).abs() < 1e-9);
        assert!(est.total_count() > 0.0);
        assert!(est.sampling_rate() > 0.0);
        let occ_sum: u64 = est.per_graphlet.iter().map(|e| e.occurrences).sum();
        assert_eq!(occ_sum, 20_000);
    }

    /// Seed-split determinism: for a fixed seed, the tally is bit-identical
    /// no matter how many OS threads execute the shards.
    #[test]
    fn threading_is_bit_identical() {
        let g = generators::erdos_renyi(200, 600, 9);
        let cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(3)
        }
        .seed(2);
        let urn = build_urn(&g, &cfg).unwrap();
        let tally =
            |threads| sample_tally(&urn, 30_000, &SampleConfig::seeded(5).threads(threads)).0;
        let t1 = tally(1);
        assert_eq!(t1.values().sum::<u64>(), 30_000);
        for threads in [2, 4, 8] {
            assert_eq!(t1, tally(threads), "tally diverged at {threads} threads");
        }
        // A different seed draws a genuinely different sample.
        assert_ne!(t1, sample_tally(&urn, 30_000, &SampleConfig::seeded(6)).0);
    }
}
