//! Naive (uniform-urn) graphlet counting — the sampling strategy of CC,
//! run on motivo's fast urn (§2.2, §5.2).
//!
//! Each sample is a uniform colorful k-treelet copy; the subgraph of `G`
//! induced by its vertices is a graphlet occurrence. With `t` the total
//! number of colorful k-treelets, `σ_i` the spanning trees of graphlet
//! `H_i`, and `χ_i` the number of samples landing on `H_i` out of `S`:
//!
//! ```text
//! ĉ_i (colorful copies) = (χ_i / S) · t / σ_i
//! ĝ_i (all copies)      = ĉ_i / p_k
//! ```
//!
//! Both are unbiased. The expected samples to *witness* `H_i` at all grow
//! as `t/(c_i σ_i)` — the additive-error barrier AGS breaks.

use crate::sample::{SampleConfig, Sampler};
use crate::urn::Urn;
use motivo_graphlet::{CanonicalCache, Graphlet, GraphletRegistry};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Estimates for one graphlet class.
#[derive(Clone, Debug)]
pub struct GraphletEstimate {
    /// Dense index in the registry this run used.
    pub index: usize,
    /// Samples that landed on this class.
    pub occurrences: u64,
    /// Estimated colorful copies `ĉ_i`.
    pub colorful: f64,
    /// Estimated total induced copies `ĝ_i = ĉ_i / p_k`.
    pub count: f64,
    /// Estimated relative frequency among all k-graphlet copies.
    pub frequency: f64,
}

/// The result of an estimation run.
#[derive(Clone, Debug)]
pub struct Estimates {
    /// Graphlet size.
    pub k: u32,
    /// Samples taken.
    pub samples: u64,
    /// Wall-clock spent sampling.
    pub elapsed: Duration,
    /// Per-class estimates, indexed like the registry.
    pub per_graphlet: Vec<GraphletEstimate>,
}

impl Estimates {
    /// Estimated total number of induced k-graphlet copies.
    pub fn total_count(&self) -> f64 {
        self.per_graphlet.iter().map(|e| e.count).sum()
    }

    /// The estimate for a registry index, if that class was seen.
    pub fn get(&self, index: usize) -> Option<&GraphletEstimate> {
        self.per_graphlet.iter().find(|e| e.index == index)
    }

    /// Samples per second achieved.
    pub fn sampling_rate(&self) -> f64 {
        self.samples as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Draws `samples` copies across `threads` threads and tallies canonical
/// graphlet codes. Classification is thread-local (memoized canonicalizer);
/// registry resolution happens afterwards, single-threaded.
pub fn sample_tally(
    urn: &Urn<'_>,
    samples: u64,
    threads: usize,
    cfg: &SampleConfig,
) -> (HashMap<u128, u64>, Duration) {
    let threads = threads.max(1) as u64;
    let start = Instant::now();
    let g = urn.graph();
    let tallies = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let share = samples / threads + u64::from(t < samples % threads);
            let cfg = SampleConfig {
                seed: cfg.seed.wrapping_add(t * 0x9E37),
                ..cfg.clone()
            };
            handles.push(scope.spawn(move |_| {
                let mut sampler = Sampler::new(urn, cfg);
                let mut cache = CanonicalCache::new();
                let mut tally: HashMap<u128, u64> = HashMap::new();
                for _ in 0..share {
                    let verts = sampler.sample_copy();
                    let rows = g.induced_rows(&verts);
                    let raw = Graphlet::from_rows(&rows);
                    *tally.entry(cache.canonical_code(&raw)).or_insert(0) += 1;
                }
                tally
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("sampler thread panicked"))
            .collect::<Vec<_>>()
    })
    .expect("sampling scope panicked");

    let mut merged: HashMap<u128, u64> = HashMap::new();
    for t in tallies {
        for (code, n) in t {
            *merged.entry(code).or_insert(0) += n;
        }
    }
    (merged, start.elapsed())
}

/// Turns a canonical-code tally into per-class estimates.
pub fn estimates_from_tally(
    urn: &Urn<'_>,
    registry: &mut GraphletRegistry,
    tally: &HashMap<u128, u64>,
    samples: u64,
    elapsed: Duration,
) -> Estimates {
    let t = urn.total_treelets() as f64;
    let p_k = urn.p_colorful();
    let mut per_graphlet = Vec::with_capacity(tally.len());
    for (&code, &occ) in tally {
        let g = Graphlet::from_code(code).expect("valid canonical code");
        let index = registry.classify(&g);
        let sigma = registry.info(index).spanning_trees as f64;
        let colorful = occ as f64 / samples as f64 * t / sigma;
        per_graphlet.push(GraphletEstimate {
            index,
            occurrences: occ,
            colorful,
            count: colorful / p_k,
            frequency: 0.0,
        });
    }
    per_graphlet.sort_unstable_by_key(|e| e.index);
    let total: f64 = per_graphlet.iter().map(|e| e.count).sum();
    if total > 0.0 {
        for e in &mut per_graphlet {
            e.frequency = e.count / total;
        }
    }
    Estimates {
        k: urn.k(),
        samples,
        elapsed,
        per_graphlet,
    }
}

/// End-to-end naive estimation: sample, classify, estimate.
pub fn naive_estimates(
    urn: &Urn<'_>,
    registry: &mut GraphletRegistry,
    samples: u64,
    threads: usize,
    cfg: &SampleConfig,
) -> Estimates {
    let (tally, elapsed) = sample_tally(urn, samples, threads, cfg);
    estimates_from_tally(urn, registry, &tally, samples, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_urn, BuildConfig};
    use motivo_graph::generators;

    /// On K5 at k=3 every 3-subset is a triangle: the estimator must hit
    /// C(5,3) = 10 when averaged over colorings. Colorings that produce an
    /// empty urn legitimately contribute a zero estimate (this keeps the
    /// average exactly unbiased).
    #[test]
    fn triangle_count_on_k5() {
        let g = generators::complete_graph(5);
        let mut registry = GraphletRegistry::new(3);
        let mut acc = 0.0;
        let runs = 100;
        for seed in 0..runs {
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(seed);
            match build_urn(&g, &cfg) {
                Err(crate::error::BuildError::EmptyUrn) => {} // estimate 0
                Err(e) => panic!("unexpected build error: {e}"),
                Ok(urn) => {
                    let est = naive_estimates(
                        &urn,
                        &mut registry,
                        500,
                        1,
                        &SampleConfig::seeded(seed + 100),
                    );
                    acc += est.total_count();
                }
            }
        }
        let avg = acc / runs as f64;
        assert!((avg - 10.0).abs() < 1.5, "triangle estimate {avg}, want 10");
    }

    /// Star graph at k=3: all graphlets are paths (cherries through the
    /// center): C(n-1, 2) of them, and zero triangles.
    #[test]
    fn star_counts_paths_only() {
        let g = generators::star_graph(12);
        let mut registry = GraphletRegistry::new(3);
        let mut acc = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let cfg = BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(seed);
            let urn = build_urn(&g, &cfg).unwrap();
            let est = naive_estimates(&urn, &mut registry, 2_000, 1, &SampleConfig::seeded(seed));
            assert_eq!(est.per_graphlet.len(), 1, "only the path class exists");
            acc += est.total_count();
        }
        let avg = acc / runs as f64;
        let want = 55.0; // C(11, 2)
        assert!(
            (avg - want).abs() < want * 0.15,
            "path estimate {avg}, want {want}"
        );
    }

    /// Frequencies sum to one and per-class counts are consistent.
    #[test]
    fn frequencies_normalize() {
        let g = generators::barabasi_albert(150, 3, 4);
        let cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(4)
        }
        .seed(7);
        let urn = build_urn(&g, &cfg).unwrap();
        let mut registry = GraphletRegistry::new(4);
        let est = naive_estimates(&urn, &mut registry, 20_000, 2, &SampleConfig::seeded(3));
        let fsum: f64 = est.per_graphlet.iter().map(|e| e.frequency).sum();
        assert!((fsum - 1.0).abs() < 1e-9);
        assert!(est.total_count() > 0.0);
        assert!(est.sampling_rate() > 0.0);
        let occ_sum: u64 = est.per_graphlet.iter().map(|e| e.occurrences).sum();
        assert_eq!(occ_sum, 20_000);
    }

    /// Multi-threaded tallies agree with single-threaded in distribution.
    #[test]
    fn threading_is_sound() {
        let g = generators::erdos_renyi(200, 600, 9);
        let cfg = BuildConfig {
            threads: 2,
            ..BuildConfig::new(3)
        }
        .seed(2);
        let urn = build_urn(&g, &cfg).unwrap();
        let (t1, _) = sample_tally(&urn, 30_000, 1, &SampleConfig::seeded(5));
        let (t4, _) = sample_tally(&urn, 30_000, 4, &SampleConfig::seeded(6));
        assert_eq!(t1.values().sum::<u64>(), 30_000);
        assert_eq!(t4.values().sum::<u64>(), 30_000);
        // Same dominant class with similar mass.
        let top = |t: &HashMap<u128, u64>| {
            t.iter()
                .max_by_key(|(_, &n)| n)
                .map(|(&c, &n)| (c, n))
                .unwrap()
        };
        let (c1, n1) = top(&t1);
        let (c4, n4) = top(&t4);
        assert_eq!(c1, c4);
        assert!((n1 as f64 - n4 as f64).abs() / 30_000.0 < 0.05);
    }
}
