//! Multi-coloring ensembles — the way motivo is meant to be used.
//!
//! A single coloring is a random projection of the graph: counts are
//! unbiased but carry coloring variance (one hub drawing color 0 moves
//! every treelet rooted there). The paper therefore reports "the average
//! over 10 runs, with whiskers for the 10% and 90% percentiles" (§5), and
//! notes that averaging over γ independent colorings drives the failure
//! probabilities of Theorems 2–3 down exponentially in γ.
//!
//! [`ensemble`] packages that protocol: build `runs` urns under independent
//! colorings, run the chosen estimator on each, and aggregate per-class
//! means and percentile whiskers.

use crate::ags::{ags, AgsConfig};
use crate::build::{build_urn, BuildConfig};
use crate::error::BuildError;
use crate::naive::naive_estimates;
use crate::parallel::{fan_out_width, resolved_threads, run_sharded};
use crate::sample::SampleConfig;
use crate::stats::percentile;
use motivo_graph::Graph;
use motivo_graphlet::{Graphlet, GraphletRegistry};
use std::collections::HashMap;
use std::time::Duration;

/// Which estimator each run uses.
#[derive(Clone, Debug)]
pub enum Estimator {
    /// Uniform urn sampling with a fixed sample budget.
    Naive {
        /// Samples per run.
        samples: u64,
    },
    /// Adaptive graphlet sampling.
    Ags(AgsConfig),
    /// The paper's headline protocol: half the runs naive, half AGS.
    Mixed {
        /// Sample budget per run (both halves).
        samples: u64,
        /// Covering threshold for the AGS half.
        c_bar: u64,
    },
}

/// Ensemble configuration.
#[derive(Clone, Debug)]
pub struct EnsembleConfig {
    /// Number of independent colorings (the paper uses 10–20).
    pub runs: u64,
    /// Base RNG seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Worker threads (`0` = all cores). Runs execute concurrently across
    /// this many workers; when only one run can be in flight the threads go
    /// to the run's build and sampling instead. Results are identical
    /// either way — the knob only changes wall-clock.
    pub threads: usize,
    /// Estimator per run.
    pub estimator: Estimator,
    /// Build template (`k`, storage, biased coloring, …); its seed is
    /// overridden per run.
    pub build: BuildConfig,
}

impl EnsembleConfig {
    /// A 10-run naive ensemble at graphlet size `k`.
    pub fn naive(k: u32, samples: u64) -> EnsembleConfig {
        EnsembleConfig {
            runs: 10,
            base_seed: 0,
            threads: 0,
            estimator: Estimator::Naive { samples },
            build: BuildConfig::new(k),
        }
    }

    /// A 10-run AGS ensemble at graphlet size `k`.
    pub fn ags(k: u32, max_samples: u64) -> EnsembleConfig {
        EnsembleConfig {
            runs: 10,
            base_seed: 0,
            threads: 0,
            estimator: Estimator::Ags(AgsConfig {
                max_samples,
                ..AgsConfig::default()
            }),
            build: BuildConfig::new(k),
        }
    }
}

/// Aggregated estimates for one graphlet class.
#[derive(Clone, Debug)]
pub struct ClassSummary {
    /// Registry index.
    pub index: usize,
    /// Mean estimated count over all runs (missed runs contribute zero,
    /// keeping the mean unbiased).
    pub mean: f64,
    /// 10th-percentile run estimate (the paper's lower whisker).
    pub p10: f64,
    /// 90th-percentile run estimate (upper whisker).
    pub p90: f64,
    /// Runs in which the class was seen at least once.
    pub seen_in: u64,
    /// Total occurrences across all runs' samples.
    pub occurrences: u64,
    /// Mean relative frequency.
    pub frequency: f64,
}

/// The ensemble result.
pub struct EnsembleResult {
    /// Per-class aggregates, sorted by descending mean count.
    pub classes: Vec<ClassSummary>,
    /// Runs that produced a usable urn.
    pub effective_runs: u64,
    /// Runs skipped because the coloring produced an empty urn.
    pub empty_urns: u64,
    /// Total build wall-clock across runs.
    pub build_time: Duration,
    /// Total sampling wall-clock across runs.
    pub sample_time: Duration,
    /// Total samples across runs.
    pub samples: u64,
}

impl EnsembleResult {
    /// Mean estimated total number of k-graphlet copies.
    pub fn total_count(&self) -> f64 {
        self.classes.iter().map(|c| c.mean).sum()
    }

    /// Summary for a registry index, if seen.
    pub fn get(&self, index: usize) -> Option<&ClassSummary> {
        self.classes.iter().find(|c| c.index == index)
    }
}

/// One run's contribution, produced inside a worker with a run-local
/// registry so runs never contend on the caller's. Class estimates travel
/// as canonical codes; the coordinator re-classifies them in run order.
enum RunOutcome {
    /// The coloring produced an empty urn (a legitimate zero estimate).
    Empty,
    /// The build itself failed.
    Failed(BuildError),
    /// A usable estimate.
    Done {
        /// `(canonical code, estimated count, occurrences)` in ascending
        /// local-index order (deterministic; see `estimates_from_tally`).
        per_class: Vec<(u128, f64, u64)>,
        build: Duration,
        sample: Duration,
        samples: u64,
    },
}

/// Runs the full ensemble protocol: the colorings are **independent by
/// construction**, so they are estimated concurrently across
/// `cfg.threads` workers (run `r` is a logical shard; results merge in run
/// order, so output is bit-identical at any thread count). Classes
/// discovered by any run are registered in `registry`; per-run estimates
/// are aggregated per class.
///
/// Returns an error only if *every* run fails to build (e.g. `k` too large
/// for the graph); empty-urn colorings are counted and skipped, each
/// contributing a zero estimate to the means.
///
/// ```
/// use motivo_core::{ensemble, EnsembleConfig};
/// use motivo_graphlet::GraphletRegistry;
///
/// let g = motivo_graph::generators::complete_graph(6);
/// let mut registry = GraphletRegistry::new(3);
/// let cfg = EnsembleConfig { runs: 8, ..EnsembleConfig::naive(3, 1_000) };
/// let res = ensemble(&g, &mut registry, &cfg).unwrap();
/// assert_eq!(res.effective_runs + res.empty_urns, 8);
/// assert!(res.total_count() > 0.0); // ≈ 20 triangles on K6
/// ```
pub fn ensemble(
    g: &Graph,
    registry: &mut GraphletRegistry,
    cfg: &EnsembleConfig,
) -> Result<EnsembleResult, BuildError> {
    assert!(cfg.runs >= 1);
    let k = cfg.build.k;
    // Runs are the outer parallelism; the thread budget left over after
    // fanning out across runs goes to each run's build and sampling (e.g.
    // 2 runs on 8 threads → 4 inner threads each). Results do not depend
    // on either knob, only wall-clock does.
    let outer = fan_out_width(cfg.runs as usize, cfg.threads);
    let inner = (resolved_threads(cfg.threads) / outer).max(1);
    let outcomes = run_sharded(cfg.runs as usize, cfg.threads, |shard| {
        let r = shard as u64;
        let mut bcfg = cfg.build.clone();
        bcfg.seed = cfg.base_seed + r;
        bcfg.threads = inner;
        let urn = match build_urn(g, &bcfg) {
            Ok(u) => u,
            Err(BuildError::EmptyUrn) => return RunOutcome::Empty,
            Err(e) => return RunOutcome::Failed(e),
        };
        let mut local = GraphletRegistry::new(k as u8);
        let sample_cfg = SampleConfig::seeded(cfg.base_seed + 7000 + r).threads(inner);
        let est = match &cfg.estimator {
            Estimator::Naive { samples } => {
                naive_estimates(&urn, &mut local, *samples, &sample_cfg)
            }
            Estimator::Ags(acfg) => {
                let mut acfg = acfg.clone();
                acfg.sample = SampleConfig {
                    seed: sample_cfg.seed,
                    threads: inner,
                    ..acfg.sample
                };
                ags(&urn, &mut local, &acfg).estimates
            }
            Estimator::Mixed { samples, c_bar } => {
                if r.is_multiple_of(2) {
                    naive_estimates(&urn, &mut local, *samples, &sample_cfg)
                } else {
                    let acfg = AgsConfig {
                        c_bar: *c_bar,
                        max_samples: *samples,
                        sample: sample_cfg,
                        ..AgsConfig::default()
                    };
                    ags(&urn, &mut local, &acfg).estimates
                }
            }
        };
        let per_class = est
            .per_graphlet
            .iter()
            .map(|e| {
                let code = local.info(e.index).graphlet.code();
                (code, e.count, e.occurrences)
            })
            .collect();
        RunOutcome::Done {
            per_class,
            build: urn.build_stats().total,
            sample: est.elapsed,
            samples: est.samples,
        }
    });

    // Coordinator: fold outcomes in run order, classifying codes into the
    // caller's registry (index assignment is therefore deterministic).
    let mut per_run: Vec<HashMap<usize, (f64, u64)>> = Vec::new();
    let mut build_time = Duration::ZERO;
    let mut sample_time = Duration::ZERO;
    let mut samples = 0u64;
    let mut empty_urns = 0u64;
    let mut last_err = None;
    for outcome in outcomes {
        match outcome {
            RunOutcome::Empty => {
                empty_urns += 1;
                per_run.push(HashMap::new());
            }
            RunOutcome::Failed(e) => last_err = Some(e),
            RunOutcome::Done {
                per_class,
                build,
                sample,
                samples: n,
            } => {
                build_time += build;
                sample_time += sample;
                samples += n;
                let run_map: HashMap<usize, (f64, u64)> = per_class
                    .into_iter()
                    .map(|(code, count, occ)| {
                        let graphlet = Graphlet::from_code(code).expect("valid canonical code");
                        (registry.classify(&graphlet), (count, occ))
                    })
                    .collect();
                per_run.push(run_map);
            }
        }
    }
    if per_run.is_empty() {
        return Err(last_err.unwrap_or(BuildError::EmptyUrn));
    }
    // Empty-urn colorings stay in `per_run` as zero contributions (that is
    // what keeps the mean unbiased); `effective_runs` counts the rest.
    let effective_runs = per_run.len() as u64 - empty_urns;

    // Aggregate per class over runs (missing run → 0).
    let mut all_classes: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for run in &per_run {
        all_classes.extend(run.keys().copied());
    }
    let mut classes: Vec<ClassSummary> = all_classes
        .into_iter()
        .map(|index| {
            let values: Vec<f64> = per_run
                .iter()
                .map(|run| run.get(&index).map(|&(c, _)| c).unwrap_or(0.0))
                .collect();
            let occurrences: u64 = per_run
                .iter()
                .filter_map(|run| run.get(&index))
                .map(|&(_, o)| o)
                .sum();
            let seen_in = per_run
                .iter()
                .filter(|run| run.contains_key(&index))
                .count() as u64;
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            ClassSummary {
                index,
                mean,
                p10: percentile(&values, 10.0),
                p90: percentile(&values, 90.0),
                seen_in,
                occurrences,
                frequency: 0.0,
            }
        })
        .collect();
    let total: f64 = classes.iter().map(|c| c.mean).sum();
    if total > 0.0 {
        for c in &mut classes {
            c.frequency = c.mean / total;
        }
    }
    classes.sort_by(|a, b| b.mean.total_cmp(&a.mean));
    Ok(EnsembleResult {
        classes,
        effective_runs,
        empty_urns,
        build_time,
        sample_time,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_graph::generators;

    #[test]
    fn ensemble_recovers_triangles_on_k6() {
        // K6 at k=3: C(6,3) = 20 triangles exactly.
        let g = generators::complete_graph(6);
        let mut registry = GraphletRegistry::new(3);
        let cfg = EnsembleConfig {
            runs: 30,
            ..EnsembleConfig::naive(3, 2_000)
        };
        let res = ensemble(&g, &mut registry, &cfg).unwrap();
        assert!(res.effective_runs + res.empty_urns == 30);
        let total = res.total_count();
        assert!(
            (total - 20.0).abs() < 3.0,
            "triangle ensemble {total}, want 20"
        );
        // Whiskers bracket the mean.
        let c = &res.classes[0];
        assert!(c.p10 <= c.mean + 1e-9 && c.mean <= c.p90 + 1e-9);
        assert!(c.seen_in > 0 && c.occurrences > 0);
    }

    #[test]
    fn mixed_estimator_runs_both() {
        let g = generators::barabasi_albert(200, 3, 2);
        let mut registry = GraphletRegistry::new(4);
        let cfg = EnsembleConfig {
            runs: 4,
            estimator: Estimator::Mixed {
                samples: 5_000,
                c_bar: 300,
            },
            ..EnsembleConfig::naive(4, 0)
        };
        let res = ensemble(&g, &mut registry, &cfg).unwrap();
        assert!(res.samples <= 4 * 5_000);
        assert!(res.total_count() > 0.0);
        let fsum: f64 = res.classes.iter().map(|c| c.frequency).sum();
        assert!((fsum - 1.0).abs() < 1e-9);
        // Sorted descending by mean.
        for w in res.classes.windows(2) {
            assert!(w[0].mean >= w[1].mean);
        }
    }

    /// AGS ensembles converge on graphs whose copies are vertex-diverse.
    /// (On a single shared hub — e.g. one big star — AGS's adaptive shape
    /// choice correlates with the coloring and the per-shape estimator
    /// inherits a bias the paper's analysis abstracts away by treating
    /// `a_ji = g_i σ_ij / r_j` as exact; see DESIGN.md. That regime is
    /// exercised qualitatively by the yelp experiments instead.)
    #[test]
    fn ags_ensemble_on_flat_graph() {
        let g = generators::erdos_renyi(300, 900, 5);
        let exact = motivo_exact::count_exact(&g, 3);
        let truth = exact.total as f64;
        let mut registry = GraphletRegistry::new(3);
        let cfg = EnsembleConfig {
            runs: 12,
            estimator: Estimator::Ags(AgsConfig {
                c_bar: 500,
                max_samples: 20_000,
                idle_limit: 5_000,
                ..AgsConfig::default()
            }),
            ..EnsembleConfig::naive(3, 0)
        };
        let res = ensemble(&g, &mut registry, &cfg).unwrap();
        let total = res.total_count();
        assert!(
            (total - truth).abs() < truth * 0.15,
            "AGS ensemble total {total:.0}, exact {truth:.0}"
        );
    }

    #[test]
    fn impossible_build_reports_error() {
        let g = generators::path_graph(3);
        let mut registry = GraphletRegistry::new(8);
        let cfg = EnsembleConfig {
            runs: 2,
            ..EnsembleConfig::naive(8, 100)
        };
        assert!(ensemble(&g, &mut registry, &cfg).is_err());
    }
}
