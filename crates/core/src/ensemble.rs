//! Multi-coloring ensembles — the way motivo is meant to be used.
//!
//! A single coloring is a random projection of the graph: counts are
//! unbiased but carry coloring variance (one hub drawing color 0 moves
//! every treelet rooted there). The paper therefore reports "the average
//! over 10 runs, with whiskers for the 10% and 90% percentiles" (§5), and
//! notes that averaging over γ independent colorings drives the failure
//! probabilities of Theorems 2–3 down exponentially in γ.
//!
//! [`ensemble`] packages that protocol: build `runs` urns under independent
//! colorings, run the chosen estimator on each, and aggregate per-class
//! means and percentile whiskers.

use crate::ags::{ags, AgsConfig};
use crate::build::{build_urn, BuildConfig};
use crate::error::BuildError;
use crate::naive::naive_estimates;
use crate::sample::SampleConfig;
use crate::stats::percentile;
use motivo_graph::Graph;
use motivo_graphlet::GraphletRegistry;
use std::collections::HashMap;
use std::time::Duration;

/// Which estimator each run uses.
#[derive(Clone, Debug)]
pub enum Estimator {
    /// Uniform urn sampling with a fixed sample budget.
    Naive {
        /// Samples per run.
        samples: u64,
    },
    /// Adaptive graphlet sampling.
    Ags(AgsConfig),
    /// The paper's headline protocol: half the runs naive, half AGS.
    Mixed {
        /// Sample budget per run (both halves).
        samples: u64,
        /// Covering threshold for the AGS half.
        c_bar: u64,
    },
}

/// Ensemble configuration.
#[derive(Clone, Debug)]
pub struct EnsembleConfig {
    /// Number of independent colorings (the paper uses 10–20).
    pub runs: u64,
    /// Base RNG seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Worker threads per run (0 = all cores).
    pub threads: usize,
    /// Estimator per run.
    pub estimator: Estimator,
    /// Build template (`k`, storage, biased coloring, …); its seed is
    /// overridden per run.
    pub build: BuildConfig,
}

impl EnsembleConfig {
    /// A 10-run naive ensemble at graphlet size `k`.
    pub fn naive(k: u32, samples: u64) -> EnsembleConfig {
        EnsembleConfig {
            runs: 10,
            base_seed: 0,
            threads: 0,
            estimator: Estimator::Naive { samples },
            build: BuildConfig::new(k),
        }
    }

    /// A 10-run AGS ensemble at graphlet size `k`.
    pub fn ags(k: u32, max_samples: u64) -> EnsembleConfig {
        EnsembleConfig {
            runs: 10,
            base_seed: 0,
            threads: 0,
            estimator: Estimator::Ags(AgsConfig {
                max_samples,
                ..AgsConfig::default()
            }),
            build: BuildConfig::new(k),
        }
    }
}

/// Aggregated estimates for one graphlet class.
#[derive(Clone, Debug)]
pub struct ClassSummary {
    /// Registry index.
    pub index: usize,
    /// Mean estimated count over all runs (missed runs contribute zero,
    /// keeping the mean unbiased).
    pub mean: f64,
    /// 10th-percentile run estimate (the paper's lower whisker).
    pub p10: f64,
    /// 90th-percentile run estimate (upper whisker).
    pub p90: f64,
    /// Runs in which the class was seen at least once.
    pub seen_in: u64,
    /// Total occurrences across all runs' samples.
    pub occurrences: u64,
    /// Mean relative frequency.
    pub frequency: f64,
}

/// The ensemble result.
pub struct EnsembleResult {
    /// Per-class aggregates, sorted by descending mean count.
    pub classes: Vec<ClassSummary>,
    /// Runs that produced a usable urn.
    pub effective_runs: u64,
    /// Runs skipped because the coloring produced an empty urn.
    pub empty_urns: u64,
    /// Total build wall-clock across runs.
    pub build_time: Duration,
    /// Total sampling wall-clock across runs.
    pub sample_time: Duration,
    /// Total samples across runs.
    pub samples: u64,
}

impl EnsembleResult {
    /// Mean estimated total number of k-graphlet copies.
    pub fn total_count(&self) -> f64 {
        self.classes.iter().map(|c| c.mean).sum()
    }

    /// Summary for a registry index, if seen.
    pub fn get(&self, index: usize) -> Option<&ClassSummary> {
        self.classes.iter().find(|c| c.index == index)
    }
}

/// Runs the full ensemble protocol. Classes discovered by any run are
/// registered in `registry`; per-run estimates are aggregated per class.
///
/// Returns an error only if *every* run fails to build (e.g. `k` too large
/// for the graph); empty-urn colorings are counted and skipped, each
/// contributing a zero estimate to the means.
pub fn ensemble(
    g: &Graph,
    registry: &mut GraphletRegistry,
    cfg: &EnsembleConfig,
) -> Result<EnsembleResult, BuildError> {
    assert!(cfg.runs >= 1);
    let mut per_run: Vec<HashMap<usize, (f64, u64)>> = Vec::new();
    let mut build_time = Duration::ZERO;
    let mut sample_time = Duration::ZERO;
    let mut samples = 0u64;
    let mut empty_urns = 0u64;
    let mut last_err = None;
    for r in 0..cfg.runs {
        let mut bcfg = cfg.build.clone();
        bcfg.seed = cfg.base_seed + r;
        bcfg.threads = cfg.threads;
        let urn = match build_urn(g, &bcfg) {
            Ok(u) => u,
            Err(BuildError::EmptyUrn) => {
                empty_urns += 1;
                per_run.push(HashMap::new());
                continue;
            }
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        build_time += urn.build_stats().total;
        let est = match &cfg.estimator {
            Estimator::Naive { samples } => naive_estimates(
                &urn,
                registry,
                *samples,
                cfg.threads,
                &SampleConfig::seeded(cfg.base_seed + 7000 + r),
            ),
            Estimator::Ags(acfg) => {
                let mut acfg = acfg.clone();
                acfg.sample.seed = cfg.base_seed + 7000 + r;
                ags(&urn, registry, &acfg).estimates
            }
            Estimator::Mixed { samples, c_bar } => {
                if r % 2 == 0 {
                    naive_estimates(
                        &urn,
                        registry,
                        *samples,
                        cfg.threads,
                        &SampleConfig::seeded(cfg.base_seed + 7000 + r),
                    )
                } else {
                    let acfg = AgsConfig {
                        c_bar: *c_bar,
                        max_samples: *samples,
                        sample: SampleConfig::seeded(cfg.base_seed + 7000 + r),
                        ..AgsConfig::default()
                    };
                    ags(&urn, registry, &acfg).estimates
                }
            }
        };
        sample_time += est.elapsed;
        samples += est.samples;
        let run_map: HashMap<usize, (f64, u64)> = est
            .per_graphlet
            .iter()
            .map(|e| (e.index, (e.count, e.occurrences)))
            .collect();
        per_run.push(run_map);
    }
    if per_run.is_empty() {
        return Err(last_err.unwrap_or(BuildError::EmptyUrn));
    }
    // Empty-urn colorings stay in `per_run` as zero contributions (that is
    // what keeps the mean unbiased); `effective_runs` counts the rest.
    let effective_runs = per_run.len() as u64 - empty_urns;

    // Aggregate per class over runs (missing run → 0).
    let mut all_classes: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for run in &per_run {
        all_classes.extend(run.keys().copied());
    }
    let mut classes: Vec<ClassSummary> = all_classes
        .into_iter()
        .map(|index| {
            let values: Vec<f64> = per_run
                .iter()
                .map(|run| run.get(&index).map(|&(c, _)| c).unwrap_or(0.0))
                .collect();
            let occurrences: u64 = per_run
                .iter()
                .filter_map(|run| run.get(&index))
                .map(|&(_, o)| o)
                .sum();
            let seen_in = per_run
                .iter()
                .filter(|run| run.contains_key(&index))
                .count() as u64;
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            ClassSummary {
                index,
                mean,
                p10: percentile(&values, 10.0),
                p90: percentile(&values, 90.0),
                seen_in,
                occurrences,
                frequency: 0.0,
            }
        })
        .collect();
    let total: f64 = classes.iter().map(|c| c.mean).sum();
    if total > 0.0 {
        for c in &mut classes {
            c.frequency = c.mean / total;
        }
    }
    classes.sort_by(|a, b| b.mean.total_cmp(&a.mean));
    Ok(EnsembleResult {
        classes,
        effective_runs,
        empty_urns,
        build_time,
        sample_time,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_graph::generators;

    #[test]
    fn ensemble_recovers_triangles_on_k6() {
        // K6 at k=3: C(6,3) = 20 triangles exactly.
        let g = generators::complete_graph(6);
        let mut registry = GraphletRegistry::new(3);
        let cfg = EnsembleConfig {
            runs: 30,
            ..EnsembleConfig::naive(3, 2_000)
        };
        let res = ensemble(&g, &mut registry, &cfg).unwrap();
        assert!(res.effective_runs + res.empty_urns == 30);
        let total = res.total_count();
        assert!(
            (total - 20.0).abs() < 3.0,
            "triangle ensemble {total}, want 20"
        );
        // Whiskers bracket the mean.
        let c = &res.classes[0];
        assert!(c.p10 <= c.mean + 1e-9 && c.mean <= c.p90 + 1e-9);
        assert!(c.seen_in > 0 && c.occurrences > 0);
    }

    #[test]
    fn mixed_estimator_runs_both() {
        let g = generators::barabasi_albert(200, 3, 2);
        let mut registry = GraphletRegistry::new(4);
        let cfg = EnsembleConfig {
            runs: 4,
            estimator: Estimator::Mixed {
                samples: 5_000,
                c_bar: 300,
            },
            ..EnsembleConfig::naive(4, 0)
        };
        let res = ensemble(&g, &mut registry, &cfg).unwrap();
        assert!(res.samples <= 4 * 5_000);
        assert!(res.total_count() > 0.0);
        let fsum: f64 = res.classes.iter().map(|c| c.frequency).sum();
        assert!((fsum - 1.0).abs() < 1e-9);
        // Sorted descending by mean.
        for w in res.classes.windows(2) {
            assert!(w[0].mean >= w[1].mean);
        }
    }

    /// AGS ensembles converge on graphs whose copies are vertex-diverse.
    /// (On a single shared hub — e.g. one big star — AGS's adaptive shape
    /// choice correlates with the coloring and the per-shape estimator
    /// inherits a bias the paper's analysis abstracts away by treating
    /// `a_ji = g_i σ_ij / r_j` as exact; see DESIGN.md. That regime is
    /// exercised qualitatively by the yelp experiments instead.)
    #[test]
    fn ags_ensemble_on_flat_graph() {
        let g = generators::erdos_renyi(300, 900, 5);
        let exact = motivo_exact::count_exact(&g, 3);
        let truth = exact.total as f64;
        let mut registry = GraphletRegistry::new(3);
        let cfg = EnsembleConfig {
            runs: 12,
            estimator: Estimator::Ags(AgsConfig {
                c_bar: 500,
                max_samples: 20_000,
                idle_limit: 5_000,
                ..AgsConfig::default()
            }),
            ..EnsembleConfig::naive(3, 0)
        };
        let res = ensemble(&g, &mut registry, &cfg).unwrap();
        let total = res.total_count();
        assert!(
            (total - truth).abs() < truth * 0.15,
            "AGS ensemble total {total:.0}, exact {truth:.0}"
        );
    }

    #[test]
    fn impossible_build_reports_error() {
        let g = generators::path_graph(3);
        let mut registry = GraphletRegistry::new(8);
        let cfg = EnsembleConfig {
            runs: 2,
            ..EnsembleConfig::naive(8, 100)
        };
        assert!(ensemble(&g, &mut registry, &cfg).is_err());
    }
}
