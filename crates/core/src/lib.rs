//! # motivo-core
//!
//! The algorithmic heart of the Motivo reproduction (Bressan, Leucci,
//! Panconesi — *Motivo: fast motif counting via succinct color coding and
//! adaptive sampling*, VLDB 2019): the parallel build-up dynamic program
//! over succinct treelet records, the uniform and shape-restricted graphlet
//! samplers with neighbor buffering, the naive estimator, and AGS —
//! adaptive graphlet sampling.
//!
//! ## Quickstart
//!
//! ```
//! use motivo_core::{build_urn, naive_estimates, BuildConfig, SampleConfig};
//! use motivo_graph::generators;
//! use motivo_graphlet::GraphletRegistry;
//!
//! // Count 4-node graphlets in a small preferential-attachment graph.
//! let graph = generators::barabasi_albert(500, 3, 7);
//! let urn = build_urn(&graph, &BuildConfig::new(4).seed(1)).unwrap();
//! let mut registry = GraphletRegistry::new(4);
//! let estimates = naive_estimates(&urn, &mut registry, 50_000, &SampleConfig::seeded(2).threads(2));
//! assert!(estimates.total_count() > 0.0);
//! ```
//!
//! For skewed graphlet distributions, swap the last step for [`ags()`] to
//! get multiplicative accuracy on rare classes too.
//!
//! Every estimator fans out across `threads` workers by cutting the work
//! into logical shards with deterministically split RNG streams
//! ([`parallel`]); for a fixed seed the results are bit-identical at any
//! thread count.

pub mod ags;
pub mod bounds;
pub mod build;
pub mod checksum;
pub mod ensemble;
pub mod error;
pub mod naive;
pub mod parallel;
pub mod persist;
pub mod sample;
pub mod stats;
pub mod tally;
pub mod urn;

pub use ags::{ags, AgsConfig, AgsResult};
pub use build::{build_urn, BuildConfig, BuildStats, ColoringSpec};
pub use ensemble::{ensemble, ClassSummary, EnsembleConfig, EnsembleResult, Estimator};
pub use error::BuildError;
pub use motivo_table::RecordCodec;
pub use naive::{estimates_from_tally, naive_estimates, sample_tally, Estimates, GraphletEstimate};
pub use persist::{graph_fingerprint, load_urn, load_urn_external, save_urn};
pub use sample::{SampleConfig, Sampler, SAMPLING_ALLOCS_COUNTER};
pub use tally::SoaTally;
pub use urn::Urn;
