//! Urn persistence: the build-up phase is the expensive half of a run, and
//! the paper's tool keeps its count tables on external storage between
//! phases (§3.1, §3.3). [`save_urn`]/[`load_urn`] let a built urn be reused
//! across processes: the count table (per-level data + index files), the
//! coloring it was built under, and the build metrics all round-trip.
//!
//! The host graph itself is *not* stored here — it has its own format
//! (`motivo_graph::io`) and the caller passes it back at load time; a
//! fingerprint check rejects mismatched graphs.

use crate::build::BuildStats;
use crate::checksum::crc32;
use crate::error::BuildError;
use crate::urn::Urn;
use bytes::{Buf, BufMut};
use motivo_graph::{Coloring, Graph};
use motivo_table::CountTable;
use std::io;
use std::path::Path;
use std::time::Duration;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// A cheap order-sensitive fingerprint of the graph structure, stored with
/// the urn so `load_urn` can refuse a different graph.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(g.num_nodes() as u64);
    mix(g.num_edges() as u64);
    for v in 0..g.num_nodes() {
        mix(g.degree(v) as u64);
    }
    h
}

/// Persists a built urn into `dir`.
pub fn save_urn(urn: &Urn<'_>, dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    urn.table().save_dir(dir)?;
    urn.coloring()
        .save(std::fs::File::create(dir.join("coloring.mtvc"))?)?;
    // Build stats + graph fingerprint, CRC-protected (v3; v2 lacked the
    // out-of-core build history, v1 additionally had no checksum — both
    // remain readable).
    let st = urn.build_stats();
    let mut payload = Vec::new();
    payload.put_u64_le(graph_fingerprint(urn.graph()));
    payload.put_f64_le(st.total.as_secs_f64());
    payload.put_u64_le(st.merge_ops);
    payload.put_u64_le(st.table_bytes as u64);
    payload.put_u64_le(st.records as u64);
    payload.put_u32_le(st.per_level.len() as u32);
    for d in &st.per_level {
        payload.put_f64_le(d.as_secs_f64());
    }
    payload.put_u64_le(st.spill_runs);
    payload.put_u64_le(st.peak_mem_bytes);
    let mut meta = Vec::with_capacity(12 + payload.len());
    meta.put_slice(b"MTVU");
    meta.put_u32_le(3);
    meta.put_u32_le(crc32(&payload));
    meta.put_slice(&payload);
    std::fs::write(dir.join("urn.meta"), meta)
}

/// Reopens an urn persisted by [`save_urn`] against the same host graph,
/// preloading all levels into memory (fast sampling; use
/// [`load_urn_external`] to keep the table on disk when it exceeds RAM).
pub fn load_urn<'g>(g: &'g Graph, dir: impl AsRef<Path>) -> Result<Urn<'g>, BuildError> {
    load_urn_inner(g, dir.as_ref(), true)
}

/// Like [`load_urn`] but serving every record access from the on-disk
/// files — the paper's "operating system will reclaim memory" regime.
pub fn load_urn_external<'g>(g: &'g Graph, dir: impl AsRef<Path>) -> Result<Urn<'g>, BuildError> {
    load_urn_inner(g, dir.as_ref(), false)
}

fn load_urn_inner<'g>(g: &'g Graph, dir: &Path, preload: bool) -> Result<Urn<'g>, BuildError> {
    let raw = std::fs::read(dir.join("urn.meta")).map_err(BuildError::Io)?;
    let mut buf = &raw[..];
    if buf.remaining() < 48 {
        return Err(BuildError::Io(bad("truncated urn meta")));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != b"MTVU" {
        return Err(BuildError::Io(bad("bad urn meta header")));
    }
    let version = buf.get_u32_le();
    match version {
        // v1: no checksum (pre-CRC files remain loadable).
        1 => {}
        // v2/v3: CRC32 over everything after the 12-byte header.
        2 | 3 => {
            if buf.remaining() < 4 {
                return Err(BuildError::Io(bad("truncated urn meta")));
            }
            let want = buf.get_u32_le();
            if crc32(buf) != want {
                return Err(BuildError::Io(bad(
                    "urn meta checksum mismatch: file is corrupt",
                )));
            }
        }
        _ => return Err(BuildError::Io(bad("unsupported urn meta version"))),
    }
    if buf.remaining() < 44 {
        return Err(BuildError::Io(bad("truncated urn meta")));
    }
    let fp = buf.get_u64_le();
    if fp != graph_fingerprint(g) {
        return Err(BuildError::Io(bad(
            "graph fingerprint mismatch: this urn was built for a different graph",
        )));
    }
    let total = Duration::from_secs_f64(buf.get_f64_le());
    let merge_ops = buf.get_u64_le();
    let table_bytes = buf.get_u64_le() as usize;
    let records = buf.get_u64_le() as usize;
    let levels = buf.get_u32_le() as usize;
    // v3 appends the out-of-core build history after the per-level times.
    let tail = if version >= 3 { 16 } else { 0 };
    if buf.remaining() != levels * 8 + tail {
        return Err(BuildError::Io(bad("urn meta length mismatch")));
    }
    let per_level = (0..levels)
        .map(|_| Duration::from_secs_f64(buf.get_f64_le()))
        .collect();
    let (spill_runs, peak_mem_bytes) = if version >= 3 {
        (buf.get_u64_le(), buf.get_u64_le())
    } else {
        (0, 0)
    };
    let stats = BuildStats {
        total,
        per_level,
        merge_ops,
        table_bytes,
        records,
        spill_runs,
        peak_mem_bytes,
    };

    let coloring =
        Coloring::load(std::fs::File::open(dir.join("coloring.mtvc")).map_err(BuildError::Io)?)
            .map_err(BuildError::Io)?;
    let mut table = CountTable::open_dir(dir).map_err(BuildError::Io)?;
    if preload {
        table = table.preload().map_err(BuildError::Io)?;
    }
    Urn::assemble(g, coloring, table, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_urn, BuildConfig};
    use crate::naive::naive_estimates;
    use crate::sample::SampleConfig;
    use motivo_graph::generators;
    use motivo_graphlet::GraphletRegistry;

    #[test]
    fn urn_roundtrip_preserves_everything() {
        let g = generators::barabasi_albert(200, 3, 4);
        let dir = std::env::temp_dir().join("motivo-persist-test");
        std::fs::remove_dir_all(&dir).ok();
        let urn = build_urn(
            &g,
            &BuildConfig {
                threads: 2,
                ..BuildConfig::new(4)
            }
            .seed(6),
        )
        .unwrap();
        save_urn(&urn, &dir).unwrap();
        let back = load_urn(&g, &dir).unwrap();
        assert_eq!(back.total_treelets(), urn.total_treelets());
        assert_eq!(back.shape_totals(), urn.shape_totals());
        assert_eq!(back.k(), urn.k());
        assert_eq!(back.build_stats().merge_ops, urn.build_stats().merge_ops);
        for v in 0..g.num_nodes() {
            assert_eq!(back.occ(v), urn.occ(v));
        }
        // Estimation through the reopened urn is identical under the same
        // sampling seed.
        let mut ra = GraphletRegistry::new(4);
        let mut rb = GraphletRegistry::new(4);
        let a = naive_estimates(&urn, &mut ra, 5_000, &SampleConfig::seeded(1).threads(1));
        let b = naive_estimates(&back, &mut rb, 5_000, &SampleConfig::seeded(1).threads(1));
        assert_eq!(a.per_graphlet.len(), b.per_graphlet.len());
        assert!((a.total_count() - b.total_count()).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Succinct-codec urns persist, reload (preloaded and external), and
    /// sample identically to their plain twins under the same seed.
    #[test]
    fn succinct_urn_roundtrip_and_codec_equivalence() {
        use motivo_table::RecordCodec;
        let g = generators::barabasi_albert(150, 3, 2);
        let base = std::env::temp_dir().join("motivo-persist-test-codec");
        std::fs::remove_dir_all(&base).ok();
        let mut estimates = Vec::new();
        for codec in RecordCodec::ALL {
            let dir = base.join(codec.as_str());
            let urn = build_urn(
                &g,
                &BuildConfig {
                    threads: 2,
                    codec,
                    ..BuildConfig::new(4)
                }
                .seed(5),
            )
            .unwrap();
            save_urn(&urn, &dir).unwrap();
            let back = load_urn(&g, &dir).unwrap();
            assert_eq!(back.table().codec(), codec);
            assert_eq!(back.total_treelets(), urn.total_treelets());
            let external = crate::persist::load_urn_external(&g, &dir).unwrap();
            assert_eq!(external.total_treelets(), urn.total_treelets());
            let mut registry = GraphletRegistry::new(4);
            let est = naive_estimates(
                &back,
                &mut registry,
                3_000,
                &SampleConfig::seeded(3).threads(2),
            );
            estimates.push(est);
        }
        let (plain, succ) = (&estimates[0], &estimates[1]);
        assert_eq!(plain.samples, succ.samples);
        assert_eq!(plain.per_graphlet.len(), succ.per_graphlet.len());
        for (a, b) in plain.per_graphlet.iter().zip(&succ.per_graphlet) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.count.to_bits(), b.count.to_bits(), "bit-identical");
            assert_eq!(a.occurrences, b.occurrences);
        }
        std::fs::remove_dir_all(&base).ok();
    }

    /// A v1 `table.meta` written before the codec column still opens.
    #[test]
    fn v1_table_meta_still_loads() {
        use bytes::BufMut;
        let g = generators::complete_graph(8);
        let dir = std::env::temp_dir().join("motivo-persist-test-tablev1");
        std::fs::remove_dir_all(&dir).ok();
        let urn = build_urn(
            &g,
            &BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(1),
        )
        .unwrap();
        save_urn(&urn, &dir).unwrap();
        // Convert the table files back to the v1-era layout by hand: one
        // DiskLevel data + index pair per level (records are plain — the
        // build above used the default codec), then a v1 table.meta.
        {
            use motivo_table::LevelStore;
            let table = motivo_table::CountTable::open_dir(&dir).unwrap();
            for h in 1..=3u32 {
                let mut dl = motivo_table::DiskLevel::create(
                    dir.join(format!("level-{h}.mtvt")),
                    g.num_nodes(),
                    motivo_table::RecordCodec::Plain,
                )
                .unwrap();
                for item in table.level(h).scan() {
                    let (v, rec) = item.unwrap();
                    dl.put(v, (*rec).clone()).unwrap();
                }
                dl.persist_index().unwrap();
            }
        }
        let mut meta = Vec::new();
        meta.put_slice(b"MTVT");
        meta.put_u32_le(1);
        meta.put_u32_le(3);
        meta.put_u32_le(g.num_nodes());
        std::fs::write(dir.join("table.meta"), meta).unwrap();
        let back = load_urn(&g, &dir).unwrap();
        assert_eq!(back.total_treelets(), urn.total_treelets());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_graph_rejected() {
        let g = generators::complete_graph(8);
        let other = generators::complete_graph(9);
        let dir = std::env::temp_dir().join("motivo-persist-test-fp");
        std::fs::remove_dir_all(&dir).ok();
        let urn = build_urn(
            &g,
            &BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(1),
        )
        .unwrap();
        save_urn(&urn, &dir).unwrap();
        assert!(load_urn(&other, &dir).is_err());
        assert!(load_urn(&g, &dir).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_meta_rejected_by_checksum() {
        let g = generators::complete_graph(8);
        let dir = std::env::temp_dir().join("motivo-persist-test-crc");
        std::fs::remove_dir_all(&dir).ok();
        let urn = build_urn(
            &g,
            &BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(1),
        )
        .unwrap();
        save_urn(&urn, &dir).unwrap();
        let meta_path = dir.join("urn.meta");
        let mut raw = std::fs::read(&meta_path).unwrap();
        // Flip one payload bit (past the 12-byte header).
        raw[20] ^= 0x04;
        std::fs::write(&meta_path, &raw).unwrap();
        let err = match load_urn(&g, &dir) {
            Err(e) => e,
            Ok(_) => panic!("corrupt urn meta must not load"),
        };
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_meta_without_checksum_still_loads() {
        let g = generators::complete_graph(8);
        let dir = std::env::temp_dir().join("motivo-persist-test-v1");
        std::fs::remove_dir_all(&dir).ok();
        let urn = build_urn(
            &g,
            &BuildConfig {
                threads: 1,
                ..BuildConfig::new(3)
            }
            .seed(1),
        )
        .unwrap();
        save_urn(&urn, &dir).unwrap();
        // Rewrite the meta as a v1 file: header says 1, no CRC word, and
        // no v3 build-history tail (the final 16 payload bytes).
        let raw = std::fs::read(dir.join("urn.meta")).unwrap();
        let mut v1 = Vec::new();
        v1.put_slice(b"MTVU");
        v1.put_u32_le(1);
        v1.put_slice(&raw[12..raw.len() - 16]);
        std::fs::write(dir.join("urn.meta"), v1).unwrap();
        let back = load_urn(&g, &dir).unwrap();
        assert_eq!(back.total_treelets(), urn.total_treelets());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_sensitive_to_structure() {
        let a = generators::path_graph(10);
        let b = generators::cycle_graph(10);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_eq!(
            graph_fingerprint(&a),
            graph_fingerprint(&generators::path_graph(10))
        );
    }
}
