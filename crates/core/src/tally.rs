//! Structure-of-arrays tallying of sampled graphlets.
//!
//! The naive and AGS shard loops classify every sample: raw induced
//! adjacency → canonical code → per-code count. Doing that with a memoized
//! canonicalizer plus a `HashMap<u128, u64>` costs two SipHash probes of a
//! 16-byte key per sample. [`SoaTally`] replaces both with an index lookup:
//! distinct *raw* patterns get consecutive slots, and parallel arrays hold
//! each slot's canonical code (computed once, at slot creation) and count.
//!
//! For `k ≤ 6` the raw adjacency fits `k(k−1)/2 ≤ 15` bits, so the
//! raw-bits → slot map is a dense array of at most `2¹⁵` entries and the
//! hot path is two array indexes. Larger `k` falls back to a hash map
//! keyed by the raw bits, with a cheap multiply-rotate hasher instead of
//! SipHash — still one probe per sample instead of two.
//!
//! Folding back into the canonical `HashMap<u128, u64>` happens once per
//! shard (merging raw slots that share a canonical form), so the merged
//! result is bit-identical to the per-sample map the old loop built.

use motivo_graphlet::Graphlet;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Largest `k` whose raw adjacency patterns are indexed densely
/// (`1 << (k(k−1)/2)` slots; 32768 at `k = 6`).
const DENSE_MAX_K: u8 = 6;

/// A multiply-rotate hasher for the `k ≥ 7` raw-bits fallback: a fraction
/// of the cost of the default SipHash and ample for uniformly distributed
/// adjacency bit patterns. Not DoS-resistant — only ever used on
/// shard-local scratch maps, never on attacker-controlled keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FxHasher::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Structure-of-arrays tally of canonical graphlet codes, indexed by raw
/// adjacency pattern. See the module docs for the layout.
pub struct SoaTally {
    k: u8,
    /// Raw bits → slot + 1 (0 = unseen); dense path, empty when `k > 6`.
    dense: Vec<u32>,
    /// Raw bits → slot; fallback path, unused when `k ≤ 6`.
    sparse: HashMap<u128, u32, FxBuildHasher>,
    /// Canonical code of each slot's raw pattern.
    codes: Vec<u128>,
    /// Samples landing on each slot.
    counts: Vec<u64>,
}

impl SoaTally {
    /// An empty tally for `k`-vertex graphlets.
    pub fn new(k: u8) -> SoaTally {
        let dense = if k <= DENSE_MAX_K {
            vec![0u32; 1 << (k as usize * (k as usize - 1) / 2)]
        } else {
            Vec::new()
        };
        SoaTally {
            k,
            dense,
            sparse: HashMap::default(),
            codes: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Counts one sampled raw graphlet. Canonicalization runs only the
    /// first time each distinct raw pattern appears.
    #[inline]
    pub fn add(&mut self, raw: &Graphlet) {
        debug_assert_eq!(raw.k(), self.k);
        let bits = raw.bits();
        let slot = if !self.dense.is_empty() {
            let cell = self.dense[bits as usize];
            if cell != 0 {
                (cell - 1) as usize
            } else {
                let slot = self.new_slot(raw);
                self.dense[bits as usize] = slot as u32 + 1;
                slot
            }
        } else if let Some(&s) = self.sparse.get(&bits) {
            s as usize
        } else {
            let slot = self.new_slot(raw);
            self.sparse.insert(bits, slot as u32);
            slot
        };
        self.counts[slot] += 1;
    }

    fn new_slot(&mut self, raw: &Graphlet) -> usize {
        self.codes.push(raw.canonical().code());
        self.counts.push(0);
        self.counts.len() - 1
    }

    /// Number of distinct raw patterns seen.
    pub fn distinct_raw(&self) -> usize {
        self.codes.len()
    }

    /// Folds the slots into the canonical per-code tally, merging raw
    /// patterns that share a canonical form. The result is exactly the map
    /// a per-sample `tally.entry(canonical_code).or_insert(0) += 1` loop
    /// would have produced.
    pub fn into_tally(self) -> HashMap<u128, u64> {
        let mut out: HashMap<u128, u64> = HashMap::with_capacity(self.codes.len());
        for (code, count) in self.codes.into_iter().zip(self.counts) {
            *out.entry(code).or_insert(0) += count;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_graphlet::CanonicalCache;

    /// Dense and fold must agree with the reference per-sample map over a
    /// sweep of all raw 4-vertex patterns, repeated with varying counts.
    #[test]
    fn dense_tally_matches_reference_map() {
        let mut soa = SoaTally::new(4);
        let mut cache = CanonicalCache::new();
        let mut reference: HashMap<u128, u64> = HashMap::new();
        for round in 0..3u64 {
            for bits in 0u128..64 {
                let raw = Graphlet::from_parts(4, bits).expect("valid bits");
                for _ in 0..(bits as u64 % 5 + round + 1) {
                    soa.add(&raw);
                    *reference.entry(cache.canonical_code(&raw)).or_insert(0) += 1;
                }
            }
        }
        assert_eq!(soa.distinct_raw(), 64);
        assert_eq!(soa.into_tally(), reference);
    }

    /// The `k ≥ 7` sparse fallback produces the same fold.
    #[test]
    fn sparse_tally_matches_reference_map() {
        let mut soa = SoaTally::new(7);
        let mut cache = CanonicalCache::new();
        let mut reference: HashMap<u128, u64> = HashMap::new();
        for i in 0u128..200 {
            // A spread of 21-bit patterns (k = 7 has 21 pair slots).
            let bits = (i * 0x9e37) & ((1 << 21) - 1);
            let raw = Graphlet::from_parts(7, bits).expect("valid bits");
            soa.add(&raw);
            *reference.entry(cache.canonical_code(&raw)).or_insert(0) += 1;
        }
        assert_eq!(soa.into_tally(), reference);
    }

    /// Raw patterns with the same canonical form merge into one entry.
    #[test]
    fn isomorphic_raw_patterns_merge() {
        // Single-edge 3-vertex graphlets: three raw patterns, one class.
        let mut soa = SoaTally::new(3);
        for bits in [0b001u128, 0b010, 0b100] {
            soa.add(&Graphlet::from_parts(3, bits).expect("valid bits"));
        }
        assert_eq!(soa.distinct_raw(), 3);
        let tally = soa.into_tally();
        assert_eq!(tally.len(), 1);
        assert_eq!(tally.values().copied().sum::<u64>(), 3);
    }
}
