//! Deterministic fan-out for the sampling phase.
//!
//! The build-up phase has been parallel since the seed (§3.3); this module
//! gives the *sampling* side the same treatment without giving up
//! reproducibility. The trick is to decouple the unit of parallelism from
//! the OS thread: work is cut into **logical shards** whose number and
//! seeds depend only on the workload and the base seed — never on how many
//! threads happen to execute them. Threads pull shard indices from an
//! atomic counter, each shard runs on a private RNG stream derived with
//! [`split_seed`], and results are merged in ascending shard order. For a
//! fixed seed the output is therefore bit-identical at 1, 2, or 64
//! threads; the thread count only changes wall-clock.
//!
//! See DESIGN.md §5 ("Parallel sampling") for the full scheme and why it
//! preserves the paper's estimator guarantees.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Samples per logical shard in the naive estimator. Small enough that a
/// typical request (≥ 10⁵ samples) splits into dozens of shards for load
/// balancing, large enough that per-shard sampler setup is noise.
pub const NAIVE_SHARD_SAMPLES: u64 = 4_096;

/// Samples per logical shard within one AGS epoch. Epochs are short (the
/// coordinator wants to react to coverage quickly), so shards are too.
pub const AGS_SHARD_SAMPLES: u64 = 256;

/// Derives the RNG seed of logical stream `stream` from a base seed — the
/// `seed ⊕ worker` split, hardened with a SplitMix64 finalizer so that
/// consecutive stream indices land in unrelated parts of the seed space
/// (xoshiro streams seeded from raw consecutive integers correlate).
///
/// ```
/// use motivo_core::parallel::split_seed;
/// assert_eq!(split_seed(7, 3), split_seed(7, 3)); // pure function
/// assert_ne!(split_seed(7, 3), split_seed(7, 4)); // streams differ
/// assert_ne!(split_seed(7, 3), split_seed(8, 3)); // seeds differ
/// ```
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves a `threads` knob: `0` means all available cores.
pub fn resolved_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

/// The number of OS threads [`run_sharded`] will actually use for
/// `num_shards` shards under a `threads` knob — never more threads than
/// shards. Callers splitting a thread budget between nested levels of
/// parallelism should plan with this, not with their own arithmetic.
pub fn fan_out_width(num_shards: usize, threads: usize) -> usize {
    resolved_threads(threads).min(num_shards.max(1))
}

/// Sums per-shard canonical-code tallies into one map, folding **in shard
/// order** — the shared merge step of the naive and AGS coordinators.
pub fn merge_tallies(
    tallies: Vec<std::collections::HashMap<u128, u64>>,
) -> std::collections::HashMap<u128, u64> {
    // Counts are exact integers, so any order would yield the same map;
    // the fixed order keeps the determinism invariant obvious and
    // future-proofs float-valued tallies.
    let mut merged = std::collections::HashMap::new();
    for t in tallies {
        for (code, n) in t {
            *merged.entry(code).or_insert(0) += n;
        }
    }
    merged
}

/// Cuts `total` units of work into logical shards of at most `shard_size`;
/// shard `i` covers `sizes[i]` units. Depends only on the workload, never
/// on the executor.
pub fn shard_sizes(total: u64, shard_size: u64) -> Vec<u64> {
    debug_assert!(shard_size > 0);
    let mut sizes = Vec::with_capacity((total / shard_size + 1) as usize);
    let mut left = total;
    while left > 0 {
        let take = left.min(shard_size);
        sizes.push(take);
        left -= take;
    }
    sizes
}

/// Runs `job(shard)` for every `shard ∈ 0..num_shards` across at most
/// `threads` OS threads and returns the results **in shard order**. Threads
/// claim shards from a shared atomic counter (work stealing in its simplest
/// form), so a slow shard never idles the rest; the output order — and
/// therefore everything downstream — is independent of the schedule.
pub fn run_sharded<T, F>(num_shards: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = fan_out_width(num_shards, threads);
    if num_shards == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return (0..num_shards).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    // One slot per shard; a shard is claimed by exactly one worker, so the
    // per-slot locks are never contended — they only exist to move results
    // across the thread boundary.
    let slots: Vec<std::sync::Mutex<Option<T>>> = (0..num_shards)
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let shard = next.fetch_add(1, Ordering::Relaxed);
                if shard >= num_shards {
                    break;
                }
                let out = job(shard);
                *slots[shard].lock().expect("shard slot poisoned") = Some(out);
            });
        }
    })
    .expect("sampling worker panicked");
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("shard slot poisoned")
                .expect("every shard claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_a_pure_injective_looking_mix() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..10_000u64 {
            assert!(seen.insert(split_seed(42, stream)), "collision at {stream}");
        }
        // Stream 0 is not the identity on the seed.
        assert_ne!(split_seed(42, 0), 42);
    }

    #[test]
    fn shard_sizes_cover_exactly() {
        assert_eq!(shard_sizes(0, 10), Vec::<u64>::new());
        assert_eq!(shard_sizes(25, 10), vec![10, 10, 5]);
        assert_eq!(shard_sizes(10, 10), vec![10]);
        for total in [1u64, 99, 4096, 4097, 100_000] {
            let sizes = shard_sizes(total, NAIVE_SHARD_SAMPLES);
            assert_eq!(sizes.iter().sum::<u64>(), total);
            assert!(sizes.iter().all(|&s| s <= NAIVE_SHARD_SAMPLES));
        }
    }

    #[test]
    fn merge_tallies_sums_across_shards() {
        let a = std::collections::HashMap::from([(1u128, 2u64), (2, 3)]);
        let b = std::collections::HashMap::from([(2u128, 4u64), (3, 5)]);
        let merged = merge_tallies(vec![a, b]);
        assert_eq!(
            merged,
            std::collections::HashMap::from([(1u128, 2u64), (2, 7), (3, 5)])
        );
        assert!(merge_tallies(Vec::new()).is_empty());
    }

    #[test]
    fn fan_out_width_never_exceeds_shards() {
        assert_eq!(fan_out_width(3, 8), 3);
        assert_eq!(fan_out_width(8, 3), 3);
        assert_eq!(fan_out_width(0, 4), 1);
        assert!(fan_out_width(100, 0) >= 1); // 0 = all cores
    }

    #[test]
    fn run_sharded_returns_in_shard_order_at_any_width() {
        let job = |s: usize| s * s;
        let want: Vec<usize> = (0..33).map(job).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(run_sharded(33, threads, job), want);
        }
        assert_eq!(run_sharded(0, 4, job), Vec::<usize>::new());
    }
}
