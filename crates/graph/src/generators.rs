//! Deterministic synthetic graph generators.
//!
//! These stand in for the paper's datasets (Table 1): the figures are driven
//! by three structural properties — degree skew (hubs), treelet-count skew,
//! and graphlet-frequency skew — and each generator reproduces one of them at
//! laptop scale. All generators are seeded and reproducible.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// `G(n, m)` Erdős–Rényi: `m` distinct uniform edges. Flat degrees, flat
/// graphlet spectrum — the "AGS gains little" regime of §5.3.
pub fn erdos_renyi(n: u32, m: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let max_m = n as u64 * (n as u64 - 1) / 2;
    assert!((m as u64) <= max_m, "too many edges requested");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let e = (a.min(b), a.max(b));
        if seen.insert(e) {
            edges.push(e);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: every new vertex attaches to
/// `m_attach` earlier vertices chosen proportionally to degree (via the
/// repeated-endpoint urn). Heavy-tailed degrees ≈ the paper's social graphs.
pub fn barabasi_albert(n: u32, m_attach: u32, seed: u64) -> Graph {
    assert!(m_attach >= 1 && n > m_attach);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * (n as usize) * m_attach as usize);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n as usize * m_attach as usize);
    // Seed clique on m_attach + 1 vertices.
    for a in 0..=m_attach {
        for b in a + 1..=m_attach {
            edges.push((a, b));
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    for v in m_attach + 1..n {
        let mut chosen: HashSet<u32> = HashSet::with_capacity(m_attach as usize);
        while chosen.len() < m_attach as usize {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            chosen.insert(t);
        }
        // Sort: HashSet iteration order is nondeterministic, and the urn
        // contents feed back into future draws.
        let mut chosen: Vec<u32> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for t in chosen {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// A BA graph plus one hub adjacent to a `hub_fraction` of all vertices —
/// the BerkStan/Orkut regime where one vertex roots a large share of all
/// treelets, which is what neighbor buffering (§3.2, Fig. 5) compensates.
pub fn star_heavy(n: u32, m_attach: u32, hub_fraction: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&hub_fraction) && n >= 8);
    let base = barabasi_albert(n, m_attach, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let hub = 0u32;
    let mut edges: Vec<(u32, u32)> = base.edges().collect();
    let targets = ((n as f64 - 1.0) * hub_fraction) as u32;
    let mut chosen: HashSet<u32> = HashSet::with_capacity(targets as usize);
    while (chosen.len() as u32) < targets {
        let t = rng.gen_range(1..n);
        chosen.insert(t);
    }
    let mut chosen: Vec<u32> = chosen.into_iter().collect();
    chosen.sort_unstable();
    for t in chosen {
        edges.push((hub, t));
    }
    Graph::from_edges(n, &edges)
}

/// A Yelp-like graph: `centers` large stars (leaf counts geometrically
/// spread around `avg_leaves`) chained together, plus a sprinkle of random
/// leaf–leaf edges. For `k ≥ 5`, all but a vanishing fraction of k-graphlets
/// are stars — the §5.3 showcase where naive sampling sees only the star and
/// AGS still covers the rare shapes.
pub fn yelp_like(centers: u32, avg_leaves: u32, extra_edges: usize, seed: u64) -> Graph {
    assert!(centers >= 1 && avg_leaves >= 4);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut next = centers; // vertices 0..centers are the star centers
    let mut sizes = Vec::with_capacity(centers as usize);
    for c in 0..centers {
        // Spread star sizes so the treelet mass is skewed across shapes too.
        let leaves = (avg_leaves / 2) + rng.gen_range(0..avg_leaves);
        sizes.push(leaves);
        for _ in 0..leaves {
            edges.push((c, next));
            next += 1;
        }
        if c > 0 {
            edges.push((c - 1, c)); // chain the centers: connected graph
        }
    }
    let n = next;
    for _ in 0..extra_edges {
        let a = rng.gen_range(centers..n);
        let b = rng.gen_range(centers..n);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The `(clique_n, tail)` lollipop graph of Theorem 5: a clique on
/// `clique_n` vertices with a dangling path of `tail` vertices. The k-path
/// graphlet has polynomially small frequency yet its only spanning tree is
/// the treelet that dominates the urn — the lower-bound instance for *any*
/// `sample(T)`-based strategy.
pub fn lollipop(clique_n: u32, tail: u32) -> Graph {
    assert!(clique_n >= 2);
    let n = clique_n + tail;
    let mut edges = Vec::new();
    for a in 0..clique_n {
        for b in a + 1..clique_n {
            edges.push((a, b));
        }
    }
    for i in 0..tail {
        let prev = if i == 0 {
            clique_n - 1
        } else {
            clique_n + i - 1
        };
        edges.push((prev, clique_n + i));
    }
    Graph::from_edges(n, &edges)
}

/// The path on `n` vertices.
pub fn path_graph(n: u32) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// The cycle on `n ≥ 3` vertices.
pub fn cycle_graph(n: u32) -> Graph {
    assert!(n >= 3);
    let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges)
}

/// The complete graph `K_n`.
pub fn complete_graph(n: u32) -> Graph {
    let mut edges = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            edges.push((a, b));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The star `K_{1,n−1}` with center 0.
pub fn star_graph(n: u32) -> Graph {
    assert!(n >= 2);
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges)
}

/// The complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: u32, b: u32) -> Graph {
    let mut edges = Vec::new();
    for x in 0..a {
        for y in 0..b {
            edges.push((x, a + y));
        }
    }
    Graph::from_edges(a + b, &edges)
}

/// A named graph in the benchmark suite.
pub struct SuiteGraph {
    /// Dataset name used in tables/figures.
    pub name: &'static str,
    /// The graph itself.
    pub graph: Graph,
    /// Largest `k` the experiments run on it.
    pub max_k: u32,
}

/// The default benchmark suite standing in for the paper's Table 1, scaled
/// by `scale ≥ 1` (vertex counts multiply; all seeds fixed).
pub fn suite(scale: u32) -> Vec<SuiteGraph> {
    let s = scale.max(1);
    vec![
        SuiteGraph {
            name: "ba-social",
            graph: barabasi_albert(2_000 * s, 5, 1),
            max_k: 6,
        },
        SuiteGraph {
            name: "er-flat",
            graph: erdos_renyi(3_000 * s, 9_000 * s as usize, 2),
            max_k: 6,
        },
        SuiteGraph {
            name: "hub-web",
            graph: star_heavy(2_000 * s, 3, 0.5, 3),
            max_k: 6,
        },
        SuiteGraph {
            name: "yelp-stars",
            graph: yelp_like(40 * s, 120, 60 * s as usize, 4),
            max_k: 7,
        },
        SuiteGraph {
            name: "lollipop",
            graph: lollipop(60 * s.min(4), 5),
            max_k: 6,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_has_requested_edges() {
        let g = erdos_renyi(100, 300, 1);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn ba_structure() {
        let g = barabasi_albert(500, 3, 1);
        assert_eq!(g.num_nodes(), 500);
        // Seed clique K4 (6 edges) + 496 vertices × 3 edges.
        assert_eq!(g.num_edges(), 6 + 496 * 3);
        assert!(g.is_connected());
        // Preferential attachment ⇒ max degree well above the minimum.
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
    }

    #[test]
    fn star_heavy_has_hub() {
        let g = star_heavy(1000, 2, 0.6, 9);
        assert!(g.degree(0) >= 550, "hub degree {}", g.degree(0));
        assert!(g.is_connected());
    }

    #[test]
    fn yelp_like_star_dominated() {
        let g = yelp_like(10, 50, 5, 3);
        assert!(g.is_connected());
        // Centers dominate degrees.
        let hub_degrees: Vec<_> = (0..10).map(|c| g.degree(c)).collect();
        assert!(hub_degrees.iter().all(|&d| d >= 25), "{hub_degrees:?}");
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(10, 3);
        assert_eq!(g.num_nodes(), 13);
        assert_eq!(g.num_edges(), 45 + 3);
        assert!(g.is_connected());
        assert_eq!(g.degree(12), 1); // tail end
        assert_eq!(g.degree(9), 10); // clique vertex holding the tail
    }

    #[test]
    fn basic_shapes() {
        assert_eq!(path_graph(5).num_edges(), 4);
        assert_eq!(cycle_graph(5).num_edges(), 5);
        assert_eq!(complete_graph(6).num_edges(), 15);
        assert_eq!(star_graph(7).num_edges(), 6);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
        assert!(cycle_graph(5).is_connected());
    }

    #[test]
    fn suite_is_reproducible() {
        let a = suite(1);
        let b = suite(1);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.graph, y.graph, "{} not deterministic", x.name);
        }
    }
}
