//! Vertex colorings: uniform and biased (paper §2.1 and §3.4).
//!
//! Color coding assigns every vertex an i.i.d. color in `{0, …, k−1}`. With
//! the **uniform** distribution a fixed k-vertex set becomes colorful with
//! probability `p_k = k!/k^k`. The **biased** distribution of §3.4 gives a
//! small probability `λ ≪ 1/k` to each of the colors `0..k−1` except one
//! heavy color (we pick color `k−1`, keeping color 0 — the 0-rooting color —
//! among the light ones), which makes most treelet counts vanish and shrinks
//! the count table at an accuracy cost quantified by Theorem 3.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How vertex colors are distributed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ColorDistribution {
    /// Each color with probability `1/k`.
    Uniform,
    /// Colors `0..k−1` with probability `λ` each, color `k−1` with the
    /// remaining mass `1 − (k−1)λ`. Requires `0 < λ ≤ 1/k`.
    Biased {
        /// Probability of each light color.
        lambda: f64,
    },
}

impl ColorDistribution {
    /// Probability that a *fixed* set of `k` vertices receives `k` distinct
    /// colors: `k!/k^k` uniformly, `k!·λ^{k−1}·(1−(k−1)λ)` biased.
    ///
    /// This is the `p_k` by which colorful counts are divided to obtain the
    /// final estimates (§2.2).
    pub fn p_colorful(self, k: u32) -> f64 {
        let kf = k as f64;
        let fact: f64 = (1..=k).map(|i| i as f64).product();
        match self {
            ColorDistribution::Uniform => fact / kf.powi(k as i32),
            ColorDistribution::Biased { lambda } => {
                fact * lambda.powi(k as i32 - 1) * (1.0 - (kf - 1.0) * lambda)
            }
        }
    }
}

/// A concrete color assignment to the vertices of a graph.
#[derive(Clone)]
pub struct Coloring {
    colors: Vec<u8>,
    k: u32,
    distribution: ColorDistribution,
}

impl Coloring {
    /// Colors every vertex i.i.d. uniformly over `{0, …, k−1}`.
    pub fn uniform(g: &Graph, k: u32, seed: u64) -> Coloring {
        assert!((2..=16).contains(&k));
        let mut rng = SmallRng::seed_from_u64(seed);
        let colors = (0..g.num_nodes())
            .map(|_| rng.gen_range(0..k) as u8)
            .collect();
        Coloring {
            colors,
            k,
            distribution: ColorDistribution::Uniform,
        }
    }

    /// Biased coloring (§3.4): light colors `0..k−1` with probability `λ`,
    /// heavy color `k−1` with the rest.
    pub fn biased(g: &Graph, k: u32, lambda: f64, seed: u64) -> Coloring {
        assert!((2..=16).contains(&k));
        assert!(
            lambda > 0.0 && lambda <= 1.0 / k as f64,
            "lambda must lie in (0, 1/k]"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let colors = (0..g.num_nodes())
            .map(|_| {
                let x: f64 = rng.gen();
                let slot = (x / lambda) as u32;
                if slot < k - 1 {
                    slot as u8
                } else {
                    (k - 1) as u8
                }
            })
            .collect();
        Coloring {
            colors,
            k,
            distribution: ColorDistribution::Biased { lambda },
        }
    }

    /// A fixed assignment (used for the identity coloring when computing
    /// spanning-treelet tables on k-node graphlets, and by tests).
    pub fn fixed(colors: Vec<u8>, k: u32) -> Coloring {
        assert!((2..=16).contains(&k));
        assert!(colors.iter().all(|&c| (c as u32) < k));
        Coloring {
            colors,
            k,
            distribution: ColorDistribution::Uniform,
        }
    }

    /// The number of colors `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The color of vertex `v`.
    #[inline]
    pub fn color(&self, v: u32) -> u8 {
        self.colors[v as usize]
    }

    /// The underlying distribution (determines `p_k`).
    pub fn distribution(&self) -> ColorDistribution {
        self.distribution
    }

    /// `p_k` for this coloring's distribution.
    pub fn p_colorful(&self) -> f64 {
        self.distribution.p_colorful(self.k)
    }

    /// Vertices per color, for diagnostics.
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.k as usize];
        for &c in &self.colors {
            h[c as usize] += 1;
        }
        h
    }

    /// Serializes the coloring (needed to reopen a persisted urn: the
    /// count table is only meaningful together with the coloring it was
    /// built under). Format: magic `MTVC`, version, k, distribution tag
    /// (+ λ), n, then one color byte per vertex.
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        use bytes::BufMut;
        let mut buf = Vec::with_capacity(32 + self.colors.len());
        buf.put_slice(b"MTVC");
        buf.put_u32_le(1);
        buf.put_u32_le(self.k);
        match self.distribution {
            ColorDistribution::Uniform => {
                buf.put_u8(0);
                buf.put_f64_le(0.0);
            }
            ColorDistribution::Biased { lambda } => {
                buf.put_u8(1);
                buf.put_f64_le(lambda);
            }
        }
        buf.put_u64_le(self.colors.len() as u64);
        buf.put_slice(&self.colors);
        w.write_all(&buf)
    }

    /// Deserializes a coloring written by [`Coloring::save`].
    pub fn load<R: std::io::Read>(mut r: R) -> std::io::Result<Coloring> {
        use bytes::Buf;
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut raw = Vec::new();
        r.read_to_end(&mut raw)?;
        let mut buf = &raw[..];
        if buf.remaining() < 29 {
            return Err(bad("truncated coloring"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"MTVC" || buf.get_u32_le() != 1 {
            return Err(bad("bad coloring header"));
        }
        let k = buf.get_u32_le();
        if !(2..=16).contains(&k) {
            return Err(bad("bad k"));
        }
        let tag = buf.get_u8();
        let lambda = buf.get_f64_le();
        let distribution = match tag {
            0 => ColorDistribution::Uniform,
            1 => ColorDistribution::Biased { lambda },
            _ => return Err(bad("bad distribution tag")),
        };
        let n = buf.get_u64_le() as usize;
        if buf.remaining() != n {
            return Err(bad("coloring length mismatch"));
        }
        let colors = buf.to_vec();
        if colors.iter().any(|&c| c as u32 >= k) {
            return Err(bad("color out of range"));
        }
        Ok(Coloring {
            colors,
            k,
            distribution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_p_colorful_matches_formula() {
        let u = ColorDistribution::Uniform;
        assert!((u.p_colorful(3) - 6.0 / 27.0).abs() < 1e-12);
        assert!((u.p_colorful(5) - 120.0 / 3125.0).abs() < 1e-12);
    }

    #[test]
    fn biased_reduces_to_uniform_at_lambda_inv_k() {
        for k in 2..=8u32 {
            let b = ColorDistribution::Biased {
                lambda: 1.0 / k as f64,
            };
            let u = ColorDistribution::Uniform;
            assert!((b.p_colorful(k) - u.p_colorful(k)).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn uniform_histogram_roughly_flat() {
        let g = generators::erdos_renyi(2000, 4000, 7);
        let c = Coloring::uniform(&g, 5, 42);
        let h = c.histogram();
        assert_eq!(h.iter().sum::<usize>(), 2000);
        for &cnt in &h {
            assert!((250..=550).contains(&cnt), "suspicious color balance {h:?}");
        }
    }

    #[test]
    fn biased_histogram_skews_to_heavy_color() {
        let g = generators::erdos_renyi(5000, 10000, 7);
        let c = Coloring::biased(&g, 5, 0.02, 42);
        let h = c.histogram();
        // Heavy color is k−1 with mass 1 − 4·0.02 = 0.92.
        assert!(h[4] > 4200, "heavy color underrepresented: {h:?}");
        for &light in &h[..4] {
            assert!(light < 250, "light color overrepresented: {h:?}");
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let g = generators::erdos_renyi(50, 120, 1);
        for c in [
            Coloring::uniform(&g, 5, 3),
            Coloring::biased(&g, 5, 0.05, 4),
        ] {
            let mut buf = Vec::new();
            c.save(&mut buf).unwrap();
            let back = Coloring::load(&buf[..]).unwrap();
            assert_eq!(back.k(), c.k());
            assert_eq!(back.distribution(), c.distribution());
            for v in 0..g.num_nodes() {
                assert_eq!(back.color(v), c.color(v));
            }
        }
        // Corruption rejected.
        let c = Coloring::uniform(&g, 4, 1);
        let mut buf = Vec::new();
        c.save(&mut buf).unwrap();
        assert!(Coloring::load(&buf[..buf.len() - 1]).is_err());
        buf[0] = b'X';
        assert!(Coloring::load(&buf[..]).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::erdos_renyi(100, 300, 3);
        let a = Coloring::uniform(&g, 6, 9);
        let b = Coloring::uniform(&g, 6, 9);
        for v in 0..g.num_nodes() {
            assert_eq!(a.color(v), b.color(v));
        }
    }
}
