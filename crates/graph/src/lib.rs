//! Host-graph substrate for Motivo.
//!
//! The paper stores the input graph as adjacency lists in "sorted static
//! arrays; arrays of consecutive vertices are contiguous in memory" (§3.3) —
//! i.e. a CSR (compressed sparse row) layout — providing fast neighbor
//! iteration and `O(log δ(u))` edge-membership queries, which the sampling
//! phase needs to induce the subgraph on a sampled vertex set.
//!
//! [`Graph`] is exactly that: undirected, simple (no self-loops, no parallel
//! edges), with `u32` vertex ids. [`generators`] provides the deterministic
//! synthetic workload suite standing in for the paper's datasets (Table 1),
//! and [`coloring`] implements both the uniform and the biased (§3.4) color
//! assignments.

pub mod coloring;
pub mod generators;
pub mod io;

pub use coloring::{ColorDistribution, Coloring};

/// An undirected simple graph in CSR form with sorted adjacency arrays.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Self-loops are
    /// dropped and duplicate/parallel edges (in either orientation) are
    /// merged; endpoints must be `< n`.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Graph {
        let mut deg = vec![0usize; n as usize];
        let mut clean: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            if a != b {
                clean.push((a.min(b), a.max(b)));
            }
        }
        clean.sort_unstable();
        clean.dedup();
        for &(a, b) in &clean {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; acc];
        for &(a, b) in &clean {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        for v in 0..n as usize {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, neighbors }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge-membership query in `O(log min(δ(u), δ(v)))` by binary-searching
    /// the shorter adjacency list (paper §3.3, footnote 7).
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree Δ (0 for the empty graph) — the quantity in the
    /// Theorem 3 concentration bound.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates each undirected edge once, as `(min, max)` pairs in order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_nodes()).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .filter(move |&&u| u > v)
                .map(move |&u| (v, u))
        })
    }

    /// The adjacency of the subgraph induced by `verts`, as per-vertex
    /// bitmask rows over the *positions* in `verts` (which must hold at most
    /// 16 distinct vertices). Row `i` has bit `j` set iff
    /// `verts[i] ~ verts[j]` in the graph.
    pub fn induced_rows(&self, verts: &[u32]) -> Vec<u16> {
        let mut rows = Vec::with_capacity(verts.len());
        self.induced_rows_into(verts, &mut rows);
        rows
    }

    /// Like [`Graph::induced_rows`], but writes into a caller-provided
    /// buffer (cleared first) so hot sampling loops can reuse one
    /// allocation across samples.
    pub fn induced_rows_into(&self, verts: &[u32], rows: &mut Vec<u16>) {
        assert!(verts.len() <= 16);
        rows.clear();
        rows.resize(verts.len(), 0);
        for i in 0..verts.len() {
            for j in i + 1..verts.len() {
                if self.has_edge(verts[i], verts[j]) {
                    rows[i] |= 1 << j;
                    rows[j] |= 1 << i;
                }
            }
        }
    }

    /// Whether the graph is connected (vacuously true when `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n as usize];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut cnt = 1u32;
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    cnt += 1;
                    stack.push(u);
                }
            }
        }
        cnt == n
    }

    /// Total in-memory footprint of the CSR arrays, in bytes. Reported by
    /// the space-usage experiments (Fig. 7).
    pub fn byte_size(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<u32>()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.num_nodes(), self.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_dedups() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (1, 1), (2, 3), (0, 1)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(1, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn degrees_and_edges_iterator() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.max_degree(), 3);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (3, 4)]);
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn induced_rows_triangle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let rows = g.induced_rows(&[0, 1, 2]);
        assert_eq!(rows, vec![0b110, 0b101, 0b011]);
        let rows = g.induced_rows(&[0, 3]);
        assert_eq!(rows, vec![0, 0]);
    }

    #[test]
    fn connectivity() {
        assert!(Graph::from_edges(3, &[(0, 1), (1, 2)]).is_connected());
        assert!(!Graph::from_edges(3, &[(0, 1)]).is_connected());
        assert!(Graph::from_edges(1, &[]).is_connected());
    }
}
