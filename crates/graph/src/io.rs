//! Graph serialization: whitespace edge-list text and a compact binary
//! format (the paper converts all inputs to "the motivo binary format").
//!
//! Binary layout (little-endian): magic `MTVG`, version `u32`, `n: u64`,
//! `m2: u64` (directed half-edge count), `offsets: (n+1) × u64`,
//! `neighbors: m2 × u32`.

use crate::Graph;
use bytes::{Buf, BufMut};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MTVG";
const VERSION: u32 = 1;

/// Parses a whitespace-separated edge list (`u v` per line — spaces or
/// tabs — with `#`/`%` comment lines skipped). Tokens after the two
/// endpoints are ignored, so SNAP-style weighted/timestamped lists load
/// cleanly. Vertices are the ids appearing in the file; `n` is one plus
/// the maximum id.
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<Graph> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let a: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_data(format!("bad line: {line:?}")))?;
        let b: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_data(format!("bad line: {line:?}")))?;
        max_id = max_id.max(a).max(b);
        edges.push((a, b));
    }
    if edges.is_empty() {
        return Err(bad_data("empty edge list".into()));
    }
    Ok(Graph::from_edges(max_id + 1, &edges))
}

/// Reads an edge-list file from disk.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> io::Result<Graph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the canonical edge-list text form: one `u v` line per
/// undirected edge with `u < v`, ascending — a normal form, so two equal
/// graphs always serialize to identical text (what the
/// text→binary→text roundtrip test relies on).
pub fn write_edge_list<W: Write>(g: &Graph, w: W) -> io::Result<()> {
    // Streamed through a buffer, not materialized: the text form of a
    // large graph can run to gigabytes.
    let mut w = std::io::BufWriter::new(w);
    for v in 0..g.num_nodes() {
        for &u in g.neighbors(v) {
            if u > v {
                writeln!(w, "{v} {u}")?;
            }
        }
    }
    w.flush()
}

/// Writes the canonical edge-list text form to a file.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Serializes to the binary format.
pub fn write_binary<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    let n = g.num_nodes() as u64;
    let m2: u64 = (0..g.num_nodes()).map(|v| g.degree(v) as u64).sum();
    let mut buf = Vec::with_capacity(24 + (n as usize + 1) * 8 + m2 as usize * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(n);
    buf.put_u64_le(m2);
    let mut acc = 0u64;
    buf.put_u64_le(0);
    for v in 0..g.num_nodes() {
        acc += g.degree(v) as u64;
        buf.put_u64_le(acc);
    }
    for v in 0..g.num_nodes() {
        for &u in g.neighbors(v) {
            buf.put_u32_le(u);
        }
    }
    w.write_all(&buf)
}

/// Deserializes from the binary format, validating the header and structure.
pub fn read_binary<R: Read>(mut r: R) -> io::Result<Graph> {
    let mut all = Vec::new();
    r.read_to_end(&mut all)?;
    let mut buf = &all[..];
    if buf.remaining() < 24 {
        return Err(bad_data("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad_data("bad magic".into()));
    }
    if buf.get_u32_le() != VERSION {
        return Err(bad_data("unsupported version".into()));
    }
    let n = buf.get_u64_le() as usize;
    let m2 = buf.get_u64_le() as usize;
    if buf.remaining() != (n + 1) * 8 + m2 * 4 {
        return Err(bad_data("length mismatch".into()));
    }
    let mut edges = Vec::with_capacity(m2 / 2);
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le() as usize);
    }
    if offsets[0] != 0 || offsets[n] != m2 {
        return Err(bad_data("corrupt offsets".into()));
    }
    // Validate the whole offsets array *before* slicing by it: monotone
    // with both ends pinned implies every slice below is in bounds. (A
    // single out-of-range offset mid-array used to reach the slice and
    // panic instead of erroring.)
    for v in 0..n {
        if offsets[v] > offsets[v + 1] {
            return Err(bad_data("non-monotone offsets".into()));
        }
    }
    let mut neighbors = Vec::with_capacity(m2);
    for _ in 0..m2 {
        neighbors.push(buf.get_u32_le());
    }
    for v in 0..n {
        for &u in &neighbors[offsets[v]..offsets[v + 1]] {
            if u as usize >= n {
                return Err(bad_data("neighbor out of range".into()));
            }
            if u as usize > v {
                edges.push((v as u32, u));
            }
        }
    }
    Ok(Graph::from_edges(n as u32, &edges))
}

/// Writes the binary format to a file.
pub fn save_binary<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Loads the binary format from a file.
pub fn load_binary<P: AsRef<Path>>(path: P) -> io::Result<Graph> {
    read_binary(std::fs::File::open(path)?)
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_list_roundtrip() {
        let text = "# comment\n0 1\n1 2\n\n% other comment\n2 0\n3 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("".as_bytes()).is_err());
        assert!(read_edge_list("5\n".as_bytes()).is_err());
        // A comment-only file has no edges either.
        assert!(read_edge_list("# a\n% b\n".as_bytes()).is_err());
        // Negative ids are not silently wrapped.
        assert!(read_edge_list("-1 2\n".as_bytes()).is_err());
    }

    /// Real-world edge lists mix separators and annotations: tab-separated
    /// endpoints, `%` comment lines (Matrix Market habit), and trailing
    /// tokens (weights/timestamps) after the two endpoints.
    #[test]
    fn edge_list_accepts_tabs_percent_comments_and_trailing_tokens() {
        let text = "% matrix-market style header\n0\t1\n1\t2\t0.75\n# hash comment\n2 0 1634256000 extra\n\t3\t2\t\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2) && g.has_edge(2, 3));
        // Identical to the plain-space spelling of the same graph.
        assert_eq!(
            g,
            read_edge_list("0 1\n1 2\n2 0\n3 2\n".as_bytes()).unwrap()
        );
    }

    #[test]
    fn binary_roundtrip() {
        let g = generators::barabasi_albert(300, 3, 11);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = generators::path_graph(10);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert!(read_binary(&buf[..10]).is_err());
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_binary(&bad[..]).is_err());
        let mut trunc = buf.clone();
        trunc.pop();
        assert!(read_binary(&trunc[..]).is_err());
    }

    /// Offsets into the header region of a binary graph buffer: `[24, 32)`
    /// holds `offsets[index]` (after magic, version, n, m2).
    fn offset_slot(index: usize) -> std::ops::Range<usize> {
        let start = 24 + index * 8;
        start..start + 8
    }

    /// A header promising more half-edges than the buffer carries must be
    /// a clean error (the length check), not a short read or a panic.
    #[test]
    fn binary_rejects_truncated_neighbor_array() {
        let g = generators::cycle_graph(8);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Drop the last neighbor's 4 bytes but keep the header intact.
        let cut = buf.len() - 4;
        assert!(read_binary(&buf[..cut]).is_err());
        // Inflate m2 instead: the offsets/neighbors regions no longer add
        // up to the remaining length.
        let mut inflated = buf.clone();
        let m2 = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        inflated[16..24].copy_from_slice(&(m2 + 1).to_le_bytes());
        assert!(read_binary(&inflated[..]).is_err());
    }

    /// Corrupt offsets arrays — decreasing neighbors ranges, or a single
    /// offset pointing past the neighbor array — must be rejected, not
    /// slice out of bounds.
    #[test]
    fn binary_rejects_non_monotone_offsets() {
        let g = generators::cycle_graph(8);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let m2 = u64::from_le_bytes(buf[16..24].try_into().unwrap());

        // Swap two interior offsets so the array decreases.
        let mut swapped = buf.clone();
        let (a, b) = (offset_slot(2), offset_slot(3));
        let (va, vb) = (buf[a.clone()].to_vec(), buf[b.clone()].to_vec());
        assert_ne!(va, vb, "cycle graph offsets strictly increase");
        swapped[a].copy_from_slice(&vb);
        swapped[b].copy_from_slice(&va);
        let err = read_binary(&swapped[..]).unwrap_err();
        assert!(err.to_string().contains("non-monotone"), "{err}");

        // One offset beyond m2 (still monotone up to it): previously a
        // panic in the neighbor slice, now a clean error.
        let mut oob = buf.clone();
        oob[offset_slot(1)].copy_from_slice(&(m2 + 100).to_le_bytes());
        assert!(read_binary(&oob[..]).is_err());
    }

    /// Text → binary → text is the identity on canonical edge-list text,
    /// and `write_edge_list` is a normal form (messy spellings of the same
    /// graph converge to one serialization).
    #[test]
    fn text_binary_text_roundtrip_is_identity() {
        let canonical = "0 1\n0 2\n1 2\n1 3\n2 4\n3 4\n";
        let g = read_edge_list(canonical.as_bytes()).unwrap();
        let mut binary = Vec::new();
        write_binary(&g, &mut binary).unwrap();
        let h = read_binary(&binary[..]).unwrap();
        let mut text = Vec::new();
        write_edge_list(&h, &mut text).unwrap();
        assert_eq!(String::from_utf8(text).unwrap(), canonical);

        // A messy spelling (tabs, comments, duplicates, trailing tokens,
        // reversed endpoints) normalizes to the same canonical text.
        let messy = "# messy\n2\t1\n1 0 9.5\n4 2\n% dup\n1 2\n3 1\n4 3 t\n0 2\n";
        let mut text = Vec::new();
        write_edge_list(&read_edge_list(messy.as_bytes()).unwrap(), &mut text).unwrap();
        assert_eq!(String::from_utf8(text).unwrap(), canonical);

        // And on a generated graph, text roundtrip preserves equality.
        let g = generators::barabasi_albert(200, 3, 5);
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        assert_eq!(read_edge_list(&text[..]).unwrap(), g);
    }

    #[test]
    fn file_roundtrip() {
        let g = generators::cycle_graph(17);
        let dir = std::env::temp_dir().join("motivo-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle.mtvg");
        save_binary(&g, &path).unwrap();
        assert_eq!(load_binary(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }
}
