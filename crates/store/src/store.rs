//! [`UrnStore`]: the repository. Owns a directory of built urns the way an
//! LSM engine owns its SSTables — a manifest snapshot plus journal for
//! durability, a background worker for builds, and an LRU cache for
//! serving.
//!
//! Directory layout (documented in DESIGN.md):
//!
//! ```text
//! store/
//!   MANIFEST            checksummed snapshot of the manifest state
//!   journal.log         length-prefixed CRC32 records since the snapshot
//!   graphs/<fp>.mtvg    host graphs, keyed by fingerprint
//!   urns/urn-<id>/      one save_urn directory per built urn
//! ```

use motivo_core::{build_urn, graph_fingerprint, load_urn, save_urn, BuildConfig};
use motivo_graph::{io as graph_io, Graph};
use motivo_obs::{Counter, Histogram, Obs, Registry};
use motivo_table::storage::StorageKind;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::cache::{CacheStats, UrnCache};
use crate::error::StoreError;
use crate::journal::Journal;
use crate::manifest::{
    self, BuildKey, BuildStatus, GraphMeta, ManifestRecord, ManifestState, UrnId, UrnMeta,
};
use crate::owned::StoreUrn;

/// Store tuning knobs.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Byte budget of the loaded-urn LRU cache.
    pub cache_bytes: usize,
    /// Worker threads per urn build (`0` = all cores).
    pub build_threads: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            cache_bytes: 256 << 20,
            build_threads: 0,
        }
    }
}

/// What `gc` did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Urn directories on disk that no live manifest entry claims.
    pub orphan_dirs_removed: usize,
    /// Graph files no live urn references.
    pub orphan_graphs_removed: usize,
    /// Journal bytes folded into the snapshot.
    pub journal_bytes_compacted: u64,
}

/// What `open` found and repaired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Builds that were in flight at crash time, now failed + swept.
    pub interrupted_builds: usize,
    /// Torn journal tail bytes dropped.
    pub torn_journal_bytes: u64,
}

pub(crate) struct State {
    pub(crate) manifest: ManifestState,
    pub(crate) journal: Journal,
    pub(crate) cache: UrnCache,
    /// Loaded host graphs by fingerprint (separate from the urn cache:
    /// several urns share one graph).
    pub(crate) graphs: HashMap<u64, Arc<Graph>>,
    /// `store.journal.appends` counter.
    pub(crate) journal_appends: Counter,
    /// `store.journal.append` latency histogram.
    pub(crate) journal_append_hist: Arc<Histogram>,
}

impl State {
    /// Journals a record (durability first), then folds it into the
    /// in-memory manifest. The in-memory state advances even if the append
    /// fails — readers must not see an urn stuck pending — and the error
    /// is reported to the caller.
    pub(crate) fn commit(&mut self, rec: &ManifestRecord) -> Result<(), StoreError> {
        let t0 = Instant::now();
        let res = self.journal.append(&rec.encode());
        self.journal_appends.inc();
        self.journal_append_hist.record_duration(t0.elapsed());
        self.manifest.apply(rec);
        res
    }
}

pub(crate) struct Inner {
    pub(crate) dir: PathBuf,
    pub(crate) state: Mutex<State>,
    pub(crate) built: Condvar,
    /// The store's metric registry: journal, cache, build, and query
    /// metrics all land here, and a server wrapping this store registers
    /// its per-request metrics in the same registry so one `Metrics`
    /// rendering covers the full stack.
    pub(crate) obs: Arc<Registry>,
    /// Set on replica stores: every local mutation path refuses with
    /// [`StoreError::ReadOnly`]; the only writer is
    /// [`UrnStore::apply_replicated`], which mirrors the leader's journal
    /// byte-for-byte. Cleared by [`UrnStore::promote`].
    pub(crate) read_only: AtomicBool,
}

impl Inner {
    pub(crate) fn urn_dir(&self, id: UrnId) -> PathBuf {
        self.dir.join("urns").join(id.dir_name())
    }

    pub(crate) fn graph_path(&self, fingerprint: u64) -> PathBuf {
        self.dir
            .join("graphs")
            .join(format!("{fingerprint:016x}.mtvg"))
    }

    /// Serves `id` through the cache, loading from disk on miss. The disk
    /// load runs with the state lock *released* — a cache miss on one urn
    /// must not stall cache hits, listings, or the build worker — so two
    /// racing misses may both load; the loser adopts the winner's entry.
    ///
    /// The boolean reports whether *this call* was served straight from the
    /// resident cache. It is the authoritative hit/miss attribution: a
    /// racing loader that adopts the winner's entry still did the disk work
    /// and still reports a miss, exactly once (the historical
    /// check-`is_cached`-then-`get` pattern could count the same load as
    /// both a hit and a miss across the two calls).
    fn get_urn(&self, id: UrnId) -> Result<(Arc<StoreUrn>, bool), StoreError> {
        let (fingerprint, resident_graph) = {
            let mut state = self.state.lock().expect("store state poisoned");
            let meta = match state.manifest.urns.get(&id) {
                Some(m) => m.clone(),
                None => return Err(StoreError::UnknownUrn(id)),
            };
            if meta.status != BuildStatus::Built {
                return Err(StoreError::NotBuilt(id));
            }
            if let Some(urn) = state.cache.get(id) {
                return Ok((urn, true));
            }
            (
                meta.key.fingerprint,
                state.graphs.get(&meta.key.fingerprint).cloned(),
            )
        };

        let graph = match resident_graph {
            Some(g) => g,
            None => Arc::new(
                graph_io::load_binary(self.graph_path(fingerprint))
                    .map_err(|_| StoreError::GraphMissing(fingerprint))?,
            ),
        };
        let dir = self.urn_dir(id);
        let urn = Arc::new(
            StoreUrn::assemble(graph.clone(), |g| load_urn(g, &dir)).map_err(StoreError::Build)?,
        );

        let mut state = self.state.lock().expect("store state poisoned");
        state.graphs.entry(fingerprint).or_insert(graph);
        if let Some(existing) = state.cache.peek(id) {
            return Ok((existing, false)); // a racing loader published first
        }
        match state.manifest.urns.get(&id) {
            // Re-check: the urn may have been removed while we loaded.
            Some(m) if m.status == BuildStatus::Built => {
                state.cache.insert(id, urn.clone());
                Ok((urn, false))
            }
            Some(_) => Err(StoreError::NotBuilt(id)),
            None => Err(StoreError::UnknownUrn(id)),
        }
    }
}

enum Job {
    Build {
        id: UrnId,
        graph: Arc<Graph>,
        cfg: BuildConfig,
    },
    Shutdown,
}

/// A crash-safe repository of built urns with a background build worker
/// and an LRU serving cache.
pub struct UrnStore {
    pub(crate) inner: Arc<Inner>,
    tx: mpsc::Sender<Job>,
    worker: Option<JoinHandle<()>>,
    recovery: RecoveryReport,
}

impl UrnStore {
    /// Opens (creating if absent) the store at `dir` with default options.
    pub fn open(dir: impl AsRef<Path>) -> Result<UrnStore, StoreError> {
        UrnStore::open_with(dir, StoreOptions::default())
    }

    /// Opens the store, replaying the journal and garbage-collecting any
    /// build that a previous process left unfinished.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<UrnStore, StoreError> {
        UrnStore::open_impl(dir.as_ref(), opts, false)
    }

    /// Opens the store as a **read-only replica**: journal replay and
    /// torn-tail truncation happen exactly as on a leader, but the
    /// crash-recovery sweep of `Pending` urns is skipped — on a replica a
    /// `BuildStarted` without its finish record is normal mid-stream
    /// state, not an interrupted build, and sweeping it would append
    /// records the leader never wrote, breaking the invariant that the
    /// replica's journal is a byte-identical prefix of the leader's.
    /// Every local mutation path ([`UrnStore::build_or_get`],
    /// [`UrnStore::remove`], [`UrnStore::gc`]) refuses with
    /// [`StoreError::ReadOnly`] until [`UrnStore::promote`] is called.
    pub fn open_replica(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<UrnStore, StoreError> {
        UrnStore::open_impl(dir.as_ref(), opts, true)
    }

    fn open_impl(dir: &Path, opts: StoreOptions, replica: bool) -> Result<UrnStore, StoreError> {
        let dir = dir.to_path_buf();
        std::fs::create_dir_all(dir.join("urns"))?;
        std::fs::create_dir_all(dir.join("graphs"))?;

        let mut manifest = manifest::load_snapshot(&dir.join("MANIFEST"))?.unwrap_or_default();
        let replay = Journal::open(dir.join("journal.log"))?;
        let mut journal = replay.journal;
        for payload in &replay.entries {
            manifest.apply(&ManifestRecord::decode(payload)?);
        }

        // Crash recovery: a Pending urn means a build was interrupted.
        // Sweep its half-written directory and record the failure. (On a
        // replica this is deferred to `promote` — see `open_replica`.)
        let interrupted: Vec<UrnId> = if replica {
            Vec::new()
        } else {
            manifest
                .urns
                .values()
                .filter(|m| m.status == BuildStatus::Pending)
                .map(|m| m.id)
                .collect()
        };
        for &id in &interrupted {
            std::fs::remove_dir_all(dir.join("urns").join(id.dir_name())).ok();
            let rec = ManifestRecord::BuildFailed { id };
            journal.append(&rec.encode())?;
            manifest.apply(&rec);
        }
        let recovery = RecoveryReport {
            interrupted_builds: interrupted.len(),
            torn_journal_bytes: replay.truncated_bytes,
        };

        let obs = Arc::new(Registry::new());
        let inner = Arc::new(Inner {
            dir,
            state: Mutex::new(State {
                manifest,
                journal,
                cache: UrnCache::new(opts.cache_bytes).with_obs(&obs),
                graphs: HashMap::new(),
                journal_appends: obs.counter("store.journal.appends"),
                journal_append_hist: obs.histogram("store.journal.append"),
            }),
            built: Condvar::new(),
            obs,
            read_only: AtomicBool::new(replica),
        });

        let (tx, rx) = mpsc::channel();
        let worker_inner = inner.clone();
        let build_threads = opts.build_threads;
        let worker = std::thread::Builder::new()
            .name("motivo-store-build".into())
            .spawn(move || worker_loop(worker_inner, rx, build_threads))
            .map_err(StoreError::Io)?;

        Ok(UrnStore {
            inner,
            tx,
            worker: Some(worker),
            recovery,
        })
    }

    /// What recovery found when this store was opened.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    /// Whether this store is a read-only replica (opened with
    /// [`UrnStore::open_replica`] and not yet promoted).
    pub fn is_read_only(&self) -> bool {
        self.inner.read_only.load(Ordering::SeqCst)
    }

    /// Promotes a replica to a leader: clears the read-only flag, then
    /// runs the crash-recovery sweep that [`UrnStore::open_replica`]
    /// deferred — any urn still `Pending` was a build the dead leader
    /// never finished, so it is failed (journaled) and its half-fetched
    /// directory is removed. Returns how many such builds were swept.
    /// Idempotent; a no-op (0) on a store that is already a leader.
    pub fn promote(&self) -> Result<usize, StoreError> {
        self.inner.read_only.store(false, Ordering::SeqCst);
        let mut state = self.inner.state.lock().expect("store state poisoned");
        let interrupted: Vec<UrnId> = state
            .manifest
            .urns
            .values()
            .filter(|m| m.status == BuildStatus::Pending)
            .map(|m| m.id)
            .collect();
        for &id in &interrupted {
            std::fs::remove_dir_all(self.inner.urn_dir(id)).ok();
            state.commit(&ManifestRecord::BuildFailed { id })?;
        }
        drop(state);
        self.inner.built.notify_all();
        Ok(interrupted.len())
    }

    /// The store's metric registry. Journal appends, LRU admissions and
    /// evictions, and background build/persist spans report here; attach
    /// it to sampling configs (or a server) to fold the whole stack's
    /// metrics into one rendering.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.inner.obs
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Returns a handle to the urn for (`graph`, `cfg`): immediately ready
    /// if an identical build is already stored, joined to an in-flight
    /// build if one is running, otherwise enqueued on the build worker.
    /// The caller can [`BuildHandle::wait`] or [`BuildHandle::poll`].
    pub fn build_or_get(
        &self,
        graph: &Graph,
        cfg: &BuildConfig,
    ) -> Result<BuildHandle, StoreError> {
        if self.is_read_only() {
            return Err(StoreError::ReadOnly);
        }
        let fingerprint = graph_fingerprint(graph);
        let key = BuildKey::derive(fingerprint, cfg)?;
        let mut state = self.inner.state.lock().expect("store state poisoned");

        if let Some(m) = state.manifest.find_built(&key) {
            return Ok(self.handle(m.id));
        }
        if let Some(m) = state.manifest.find_pending(&key) {
            return Ok(self.handle(m.id));
        }

        // First sighting of this graph: persist it so the urn can be
        // served in a fresh process without the caller resupplying it.
        let graph_arc = match state.graphs.get(&fingerprint) {
            Some(g) => g.clone(),
            None => {
                let arc = Arc::new(graph.clone());
                if !state.manifest.graphs.contains_key(&fingerprint) {
                    graph_io::save_binary(graph, self.inner.graph_path(fingerprint))?;
                    state.commit(&ManifestRecord::GraphAdded(GraphMeta {
                        fingerprint,
                        nodes: graph.num_nodes(),
                        edges: graph.num_edges() as u64,
                    }))?;
                }
                state.graphs.insert(fingerprint, arc.clone());
                arc
            }
        };

        let id = UrnId(state.manifest.next_id);
        // If the start record can't be journaled, or the worker is gone,
        // fail the in-memory entry immediately — it must not linger as
        // Pending, where waiters would block forever and future requests
        // for the same key would join a build nobody is running.
        if let Err(e) = state.commit(&ManifestRecord::BuildStarted { id, key }) {
            state.manifest.apply(&ManifestRecord::BuildFailed { id });
            return Err(e);
        }
        let send = self.tx.send(Job::Build {
            id,
            graph: graph_arc,
            cfg: cfg.clone(),
        });
        if send.is_err() {
            if let Err(e) = state.commit(&ManifestRecord::BuildFailed { id }) {
                eprintln!("motivo-store: journal append for {id} failed: {e}");
            }
            return Err(StoreError::WorkerGone);
        }
        Ok(self.handle(id))
    }

    fn handle(&self, id: UrnId) -> BuildHandle {
        BuildHandle {
            inner: self.inner.clone(),
            id,
        }
    }

    /// Fetches a built urn through the cache.
    pub fn get(&self, id: UrnId) -> Result<Arc<StoreUrn>, StoreError> {
        self.inner.get_urn(id).map(|(urn, _)| urn)
    }

    /// Like [`UrnStore::get`], but also reports whether this call was
    /// served from the resident cache (`true`) or had to load the urn from
    /// disk (`false`). The query layer uses this for hit/miss accounting —
    /// unlike an [`UrnStore::is_cached`] probe followed by a `get`, the
    /// attribution cannot race with concurrent loads or evictions.
    pub fn get_traced(&self, id: UrnId) -> Result<(Arc<StoreUrn>, bool), StoreError> {
        self.inner.get_urn(id)
    }

    /// The manifest entry for one urn, if it exists.
    pub fn meta(&self, id: UrnId) -> Option<UrnMeta> {
        let state = self.inner.state.lock().expect("store state poisoned");
        state.manifest.urns.get(&id).cloned()
    }

    /// Every urn the manifest knows, ascending by id.
    pub fn list(&self) -> Vec<UrnMeta> {
        let state = self.inner.state.lock().expect("store state poisoned");
        state.manifest.urns.values().cloned().collect()
    }

    /// Registered host graphs.
    pub fn graphs(&self) -> Vec<GraphMeta> {
        let state = self.inner.state.lock().expect("store state poisoned");
        state.manifest.graphs.values().copied().collect()
    }

    /// Whether `id` is currently resident in the cache (no recency or
    /// counter update — a pure observation, used by the query layer to
    /// attribute hits and misses).
    pub fn is_cached(&self, id: UrnId) -> bool {
        let state = self.inner.state.lock().expect("store state poisoned");
        state.cache.contains(id)
    }

    /// Drops an urn from the cache (it stays on disk); returns whether it
    /// was resident.
    pub fn evict(&self, id: UrnId) -> bool {
        let mut state = self.inner.state.lock().expect("store state poisoned");
        state.cache.remove(id)
    }

    /// Deletes an urn: journaled, dropped from cache, directory removed.
    pub fn remove(&self, id: UrnId) -> Result<(), StoreError> {
        if self.is_read_only() {
            return Err(StoreError::ReadOnly);
        }
        let mut state = self.inner.state.lock().expect("store state poisoned");
        if !state.manifest.urns.contains_key(&id) {
            return Err(StoreError::UnknownUrn(id));
        }
        state.commit(&ManifestRecord::Removed { id })?;
        state.cache.remove(id);
        match std::fs::remove_dir_all(self.inner.urn_dir(id)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
        Ok(())
    }

    /// Writes a serving-stats sidecar (`server-stats.json`) into the store
    /// directory, atomically (temp file + rename). The store does not
    /// interpret the body — the server composes it from
    /// [`crate::StoreQuery::per_urn_stats`] and [`UrnStore::cache_stats`]
    /// at shutdown — but owning the write here keeps every file under the
    /// store directory written by the store itself.
    pub fn flush_stats(&self, body: &[u8]) -> Result<PathBuf, StoreError> {
        self.write_sidecar("server-stats.json", body)
    }

    /// Writes an arbitrary sidecar file into the store directory through
    /// the shared atomic temp-file+rename helper ([`motivo_obs::atomic_write`]).
    /// Used for `server-stats.json` and the periodic `metrics-<ts>.json`
    /// snapshots; a crash mid-write never shadows a previous good file.
    pub fn write_sidecar(&self, name: &str, body: &[u8]) -> Result<PathBuf, StoreError> {
        let path = self.inner.dir.join(name);
        motivo_obs::atomic_write(&path, body)?;
        Ok(path)
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        let state = self.inner.state.lock().expect("store state poisoned");
        state.cache.stats()
    }

    /// Garbage-collects the directory: sweeps orphan urn dirs and graph
    /// files, then compacts the journal into a fresh MANIFEST snapshot.
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        if self.is_read_only() {
            return Err(StoreError::ReadOnly);
        }
        let mut state = self.inner.state.lock().expect("store state poisoned");
        let mut report = GcReport::default();

        // Orphan urn directories: on disk but not owned by a live entry.
        let urns_root = self.inner.dir.join("urns");
        for entry in std::fs::read_dir(&urns_root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let claimed = state
                .manifest
                .urns
                .values()
                .any(|m| m.status != BuildStatus::Failed && m.dir_name() == name);
            if !claimed {
                std::fs::remove_dir_all(entry.path())?;
                report.orphan_dirs_removed += 1;
            }
        }

        // Orphan graphs: referenced by no live urn.
        let live_fps: std::collections::HashSet<u64> = state
            .manifest
            .urns
            .values()
            .filter(|m| m.status != BuildStatus::Failed)
            .map(|m| m.key.fingerprint)
            .collect();
        let dead: Vec<u64> = state
            .manifest
            .graphs
            .keys()
            .copied()
            .filter(|fp| !live_fps.contains(fp))
            .collect();
        for fp in dead {
            match std::fs::remove_file(self.inner.graph_path(fp)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StoreError::Io(e)),
            }
            state.manifest.graphs.remove(&fp);
            state.graphs.remove(&fp);
            report.orphan_graphs_removed += 1;
        }

        // Failed urns have no directory; drop their manifest entries now
        // that the snapshot will not carry them.
        let failed: Vec<UrnId> = state
            .manifest
            .urns
            .values()
            .filter(|m| m.status == BuildStatus::Failed)
            .map(|m| m.id)
            .collect();
        for id in failed {
            state.manifest.urns.remove(&id);
        }

        report.journal_bytes_compacted = state.journal.len_bytes();
        manifest::write_snapshot(&self.inner.dir.join("MANIFEST"), &state.manifest)?;
        state.journal.reset()?;
        Ok(report)
    }
}

impl Drop for UrnStore {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl UrnMeta {
    /// Directory name of this urn under the store's `urns/` tree.
    pub fn dir_name(&self) -> String {
        self.id.dir_name()
    }
}

/// The background build worker: drains the queue, builds with greedy
/// flushing straight into the urn's directory, journals the outcome, and
/// wakes every waiter.
fn worker_loop(inner: Arc<Inner>, rx: mpsc::Receiver<Job>, build_threads: usize) {
    while let Ok(job) = rx.recv() {
        let (id, graph, cfg) = match job {
            Job::Shutdown => return,
            Job::Build { id, graph, cfg } => (id, graph, cfg),
        };
        let dir = inner.urn_dir(id);
        let started = Instant::now();
        // Panics inside the build must not kill the worker: a dead worker
        // would leave this urn Pending forever, wedging every waiter and
        // every future request for the same key. Catch, record a failure,
        // and keep draining the queue.
        let dir_for_build = dir.clone();
        let obs = Obs::enabled(inner.obs.clone());
        let outcome: Result<(u64, u64), StoreError> =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                std::fs::create_dir_all(&dir_for_build)?;
                let mut cfg = cfg;
                // The build always lands in the urn's own directory, but a
                // caller-requested memory budget (out-of-core block build)
                // is preserved — only the directory is rewritten. The
                // budget stays out of BuildKey: budgeted and unbudgeted
                // builds produce byte-identical tables.
                cfg.storage = match cfg.storage {
                    StorageKind::Block { mem_budget, .. } => StorageKind::Block {
                        dir: dir_for_build.clone(),
                        mem_budget,
                    },
                    _ => StorageKind::Disk {
                        dir: dir_for_build.clone(),
                    },
                };
                cfg.threads = build_threads;
                // Build-phase spans and the encode histogram land in the
                // store's registry (a side channel only — the urn bytes
                // are identical with or without it).
                cfg.obs = obs.clone();
                let urn = {
                    let _span = obs.span("store.build");
                    build_urn(graph.as_ref(), &cfg)?
                };
                {
                    let _span = obs.span("store.persist");
                    save_urn(&urn, &dir_for_build)?;
                }
                let st = urn.build_stats();
                Ok((st.table_bytes as u64, st.records as u64))
            })) {
                Ok(result) => result,
                Err(_) => Err(StoreError::Corrupt("build panicked".to_string())),
            };

        let mut state = inner.state.lock().expect("store state poisoned");
        let commit_result = match outcome {
            Ok((table_bytes, records)) => state.commit(&ManifestRecord::BuildFinished {
                id,
                table_bytes,
                records,
                build_secs: started.elapsed().as_secs_f64(),
            }),
            Err(e) => {
                std::fs::remove_dir_all(&dir).ok();
                eprintln!("motivo-store: build of {id} failed: {e}");
                state.commit(&ManifestRecord::BuildFailed { id })
            }
        };
        if let Err(e) = commit_result {
            eprintln!("motivo-store: journal append for {id} failed: {e}");
        }
        drop(state);
        inner.built.notify_all();
    }
}

/// A ticket for one requested build; cheap to clone conceptually (hold the
/// store open), blocking or polling as the caller prefers.
pub struct BuildHandle {
    inner: Arc<Inner>,
    id: UrnId,
}

impl BuildHandle {
    /// The id this build was assigned.
    pub fn id(&self) -> UrnId {
        self.id
    }

    /// Non-blocking status check: `None` while the build runs.
    pub fn poll(&self) -> Option<Result<UrnId, StoreError>> {
        let state = self.inner.state.lock().expect("store state poisoned");
        match state.manifest.urns.get(&self.id).map(|m| m.status) {
            None => Some(Err(StoreError::UnknownUrn(self.id))),
            Some(BuildStatus::Pending) => None,
            Some(BuildStatus::Built) => Some(Ok(self.id)),
            Some(BuildStatus::Failed) => Some(Err(StoreError::NotBuilt(self.id))),
        }
    }

    /// Blocks until the build finishes, then returns the loaded urn.
    pub fn wait(&self) -> Result<Arc<StoreUrn>, StoreError> {
        let mut state = self.inner.state.lock().expect("store state poisoned");
        loop {
            match state.manifest.urns.get(&self.id).map(|m| m.status) {
                None => return Err(StoreError::UnknownUrn(self.id)),
                Some(BuildStatus::Pending) => {
                    state = self.inner.built.wait(state).expect("store state poisoned");
                }
                Some(BuildStatus::Built) => break,
                Some(BuildStatus::Failed) => return Err(StoreError::NotBuilt(self.id)),
            }
        }
        drop(state);
        self.inner.get_urn(self.id).map(|(urn, _)| urn)
    }
}
