//! [`StoreQuery`]: the query front-end. Routes estimator calls through
//! the store's cache and keeps per-urn serving statistics (hits, misses,
//! latency), which is what a long-lived service wants to watch.
//!
//! Statistics are **sharded per urn and lock-free on the hot path**: each
//! urn owns a cell of atomic counters behind an `Arc`, and the map from
//! urn id to cell sits under an `RwLock` that queries only ever *read*
//! (the write lock is taken once per urn, on its first query). Concurrent
//! readers therefore never serialize behind one another — neither on the
//! counters (atomic adds) nor on the map (shared read locks) — which is
//! what lets one `StoreQuery` serve many sampling threads at full speed.

use motivo_core::{
    ags, naive_estimates, sample_tally, AgsConfig, AgsResult, Estimates, SampleConfig,
};
use motivo_graphlet::GraphletRegistry;
use motivo_obs::{Histogram, HistogramSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::error::StoreError;
use crate::manifest::UrnId;
use crate::store::UrnStore;

/// Serving counters for one urn (or aggregated over all of them) — a
/// consistent-enough snapshot of the live atomic cells.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries answered.
    pub queries: u64,
    /// Queries whose urn was already resident.
    pub cache_hits: u64,
    /// Queries that had to load the urn from disk first.
    pub cache_misses: u64,
    /// Total wall-clock spent answering (load + sampling).
    pub total_latency: Duration,
    /// Median per-query latency (log-bucket histogram estimate, ≤ 12.5%
    /// relative error — see `motivo_obs::Histogram`).
    pub p50_latency: Duration,
    /// 90th-percentile latency (same estimator).
    pub p90_latency: Duration,
    /// 99th-percentile latency (same estimator).
    pub p99_latency: Duration,
    /// Exact maximum observed latency.
    pub max_latency: Duration,
}

impl QueryStats {
    fn from_counts(
        queries: u64,
        cache_hits: u64,
        cache_misses: u64,
        total_latency: Duration,
        hist: &HistogramSnapshot,
    ) -> QueryStats {
        QueryStats {
            queries,
            cache_hits,
            cache_misses,
            total_latency,
            p50_latency: Duration::from_nanos(hist.quantile(0.5)),
            p90_latency: Duration::from_nanos(hist.quantile(0.9)),
            p99_latency: Duration::from_nanos(hist.quantile(0.99)),
            max_latency: Duration::from_nanos(hist.max),
        }
    }

    /// Mean latency per query.
    pub fn mean_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.queries as u32
        }
    }
}

/// The live counters of one urn. Updated with relaxed atomic adds — the
/// counters are independent monotone sums, so no ordering between them is
/// needed; a snapshot may be mid-update by at most one query per field.
#[derive(Default)]
struct StatsCell {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    latency_nanos: AtomicU64,
    /// Per-urn latency distribution: a lock-free log-bucket histogram, so
    /// `per_urn_stats` reports p50/p99 instead of just a mean. Same
    /// relaxed-atomic discipline as the counters above.
    latency_hist: Histogram,
}

impl StatsCell {
    fn record(&self, cache_hit: bool, elapsed: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.latency_hist.record_duration(elapsed);
    }

    fn snapshot(&self) -> QueryStats {
        QueryStats::from_counts(
            self.queries.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
            Duration::from_nanos(self.latency_nanos.load(Ordering::Relaxed)),
            &self.latency_hist.snapshot(),
        )
    }
}

/// A query layer over one store. Thread-safe; borrows the store; cheap to
/// share by reference across however many serving threads you run.
///
/// ```
/// use motivo_core::{BuildConfig, SampleConfig};
/// use motivo_graphlet::GraphletRegistry;
/// use motivo_store::{StoreQuery, UrnStore};
///
/// let dir = std::env::temp_dir().join(format!("motivo-query-doc-{}", std::process::id()));
/// let store = UrnStore::open(&dir).unwrap();
/// let graph = motivo_graph::generators::complete_graph(6);
/// let handle = store.build_or_get(&graph, &BuildConfig::new(3).seed(1)).unwrap();
/// handle.wait().unwrap();
/// let id = handle.id();
///
/// let query = StoreQuery::new(&store);
/// let mut registry = GraphletRegistry::new(3);
/// let est = query
///     .naive_estimates(id, &mut registry, 2_000, &SampleConfig::seeded(2))
///     .unwrap();
/// assert_eq!(est.samples, 2_000);
/// assert_eq!(query.stats(id).queries, 1);
/// # drop(store); std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct StoreQuery<'s> {
    store: &'s UrnStore,
    stats: RwLock<HashMap<UrnId, Arc<StatsCell>>>,
}

impl<'s> StoreQuery<'s> {
    pub fn new(store: &'s UrnStore) -> StoreQuery<'s> {
        StoreQuery {
            store,
            stats: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &UrnStore {
        self.store
    }

    /// The manifest entry of `id`, if the store knows it — the query-side
    /// passthrough serving layers use so they never reach around the
    /// query front-end to the store.
    pub fn meta(&self, id: UrnId) -> Option<crate::manifest::UrnMeta> {
        self.store.meta(id)
    }

    /// The build-key content identity of `id`
    /// ([`crate::manifest::BuildKey::content_id`]): graph fingerprint +
    /// k + coloring seed + bias + 0-rooting + codec, folded to 64 bits.
    /// This is what a result-cache key must bind to — urn *ids* are
    /// store-local handles, but two urns with one content id hold
    /// identical tables and therefore serve byte-identical seeded
    /// responses.
    pub fn content_id(&self, id: UrnId) -> Option<u64> {
        self.store.meta(id).map(|m| m.key.content_id())
    }

    /// The stats cell for `id` — read lock on the fast path, write lock
    /// only the first time an urn is queried.
    fn cell(&self, id: UrnId) -> Arc<StatsCell> {
        if let Some(cell) = self.stats.read().expect("query stats poisoned").get(&id) {
            return cell.clone();
        }
        self.stats
            .write()
            .expect("query stats poisoned")
            .entry(id)
            .or_default()
            .clone()
    }

    fn record<T>(
        &self,
        id: UrnId,
        run: impl FnOnce(&crate::owned::StoreUrn) -> T,
    ) -> Result<T, StoreError> {
        let t0 = Instant::now();
        // One traced fetch both serves the urn and attributes the hit/miss,
        // so a load racing with another thread is counted exactly once.
        let (urn, cache_hit) = self.store.get_traced(id)?;
        let out = run(&urn);
        self.cell(id).record(cache_hit, t0.elapsed());
        Ok(out)
    }

    /// Naive estimation (uniform treelet sampling) through the cache.
    /// `registry` grows with discovered classes, exactly as in
    /// [`motivo_core::naive_estimates`]; its `k` must match the urn's.
    /// `cfg.threads` sets the sampling fan-out.
    pub fn naive_estimates(
        &self,
        id: UrnId,
        registry: &mut GraphletRegistry,
        samples: u64,
        cfg: &SampleConfig,
    ) -> Result<Estimates, StoreError> {
        self.record(id, |urn| naive_estimates(urn.urn(), registry, samples, cfg))
    }

    /// Adaptive graphlet sampling through the cache. `cfg.sample.threads`
    /// sets the per-epoch sampling fan-out.
    pub fn ags(
        &self,
        id: UrnId,
        registry: &mut GraphletRegistry,
        cfg: &AgsConfig,
    ) -> Result<AgsResult, StoreError> {
        self.record(id, |urn| ags(urn.urn(), registry, cfg))
    }

    /// Raw canonical-code tally through the cache: `samples` treelet
    /// copies, tallied per canonical graphlet code. This is the
    /// registry-free half of [`StoreQuery::naive_estimates`] — what a
    /// server exposes as "graphlet occurrences" without committing to any
    /// particular class indexing.
    pub fn sample_tally(
        &self,
        id: UrnId,
        samples: u64,
        cfg: &SampleConfig,
    ) -> Result<HashMap<u128, u64>, StoreError> {
        self.record(id, |urn| sample_tally(urn.urn(), samples, cfg).0)
    }

    /// Counters for one urn. Never blocks behind writers for long: takes
    /// the map's read lock and snapshots the atomics.
    pub fn stats(&self, id: UrnId) -> QueryStats {
        self.stats
            .read()
            .expect("query stats poisoned")
            .get(&id)
            .map(|cell| cell.snapshot())
            .unwrap_or_default()
    }

    /// Per-urn counters for every urn this query layer has served,
    /// ascending by id — the snapshot a shutting-down server flushes to
    /// disk ([`crate::UrnStore::flush_stats`]).
    pub fn per_urn_stats(&self) -> Vec<(UrnId, QueryStats)> {
        let stats = self.stats.read().expect("query stats poisoned");
        let mut rows: Vec<(UrnId, QueryStats)> = stats
            .iter()
            .map(|(&id, cell)| (id, cell.snapshot()))
            .collect();
        rows.sort_unstable_by_key(|&(id, _)| id);
        rows
    }

    /// Counters summed over every urn served. Latency quantiles come from
    /// merging the per-urn histograms (merge is exact: the bucket layout
    /// is global), not from averaging per-urn quantiles.
    pub fn total_stats(&self) -> QueryStats {
        let stats = self.stats.read().expect("query stats poisoned");
        let (mut queries, mut hits, mut misses) = (0u64, 0u64, 0u64);
        let mut latency = Duration::ZERO;
        let mut hist = HistogramSnapshot::empty();
        for cell in stats.values() {
            queries += cell.queries.load(Ordering::Relaxed);
            hits += cell.cache_hits.load(Ordering::Relaxed);
            misses += cell.cache_misses.load(Ordering::Relaxed);
            latency += Duration::from_nanos(cell.latency_nanos.load(Ordering::Relaxed));
            hist.merge(&cell.latency_hist.snapshot());
        }
        QueryStats::from_counts(queries, hits, misses, latency, &hist)
    }
}
