//! [`StoreQuery`]: the query front-end. Routes estimator calls through
//! the store's cache and keeps per-urn serving statistics (hits, misses,
//! latency), which is what a long-lived service wants to watch.

use motivo_core::{ags, naive_estimates, AgsConfig, AgsResult, Estimates, SampleConfig};
use motivo_graphlet::GraphletRegistry;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::error::StoreError;
use crate::manifest::UrnId;
use crate::store::UrnStore;

/// Serving counters for one urn (or aggregated over all of them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries answered.
    pub queries: u64,
    /// Queries whose urn was already resident.
    pub cache_hits: u64,
    /// Queries that had to load the urn from disk first.
    pub cache_misses: u64,
    /// Total wall-clock spent answering (load + sampling).
    pub total_latency: Duration,
}

impl QueryStats {
    fn absorb(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.total_latency += other.total_latency;
    }

    /// Mean latency per query.
    pub fn mean_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.queries as u32
        }
    }
}

/// A query layer over one store. Thread-safe; borrows the store.
pub struct StoreQuery<'s> {
    store: &'s UrnStore,
    stats: Mutex<HashMap<UrnId, QueryStats>>,
}

impl<'s> StoreQuery<'s> {
    pub fn new(store: &'s UrnStore) -> StoreQuery<'s> {
        StoreQuery {
            store,
            stats: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &UrnStore {
        self.store
    }

    fn record<T>(
        &self,
        id: UrnId,
        run: impl FnOnce(&crate::owned::StoreUrn) -> T,
    ) -> Result<T, StoreError> {
        let t0 = Instant::now();
        let was_cached = self.store.is_cached(id);
        let urn = self.store.get(id)?;
        let out = run(&urn);
        let mut stats = self.stats.lock().expect("query stats poisoned");
        let entry = stats.entry(id).or_default();
        entry.queries += 1;
        if was_cached {
            entry.cache_hits += 1;
        } else {
            entry.cache_misses += 1;
        }
        entry.total_latency += t0.elapsed();
        Ok(out)
    }

    /// Naive estimation (uniform treelet sampling) through the cache.
    /// `registry` grows with discovered classes, exactly as in
    /// [`motivo_core::naive_estimates`]; its `k` must match the urn's.
    pub fn naive_estimates(
        &self,
        id: UrnId,
        registry: &mut GraphletRegistry,
        samples: u64,
        threads: usize,
        cfg: &SampleConfig,
    ) -> Result<Estimates, StoreError> {
        self.record(id, |urn| {
            naive_estimates(urn.urn(), registry, samples, threads, cfg)
        })
    }

    /// Adaptive graphlet sampling through the cache.
    pub fn ags(
        &self,
        id: UrnId,
        registry: &mut GraphletRegistry,
        cfg: &AgsConfig,
    ) -> Result<AgsResult, StoreError> {
        self.record(id, |urn| ags(urn.urn(), registry, cfg))
    }

    /// Counters for one urn.
    pub fn stats(&self, id: UrnId) -> QueryStats {
        self.stats
            .lock()
            .expect("query stats poisoned")
            .get(&id)
            .copied()
            .unwrap_or_default()
    }

    /// Counters summed over every urn served.
    pub fn total_stats(&self) -> QueryStats {
        let stats = self.stats.lock().expect("query stats poisoned");
        let mut total = QueryStats::default();
        for s in stats.values() {
            total.absorb(s);
        }
        total
    }
}
