//! Store-level error type, wrapping build and I/O failures.

use motivo_core::BuildError;
use std::fmt;

use crate::manifest::UrnId;

/// Failures of the urn repository.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (journal, manifest, urn directories).
    Io(std::io::Error),
    /// A persisted structure failed validation (bad magic, checksum, …).
    Corrupt(String),
    /// The underlying build-up phase failed.
    Build(BuildError),
    /// No urn with this id (or it was removed).
    UnknownUrn(UrnId),
    /// The urn exists but its build has not finished successfully.
    NotBuilt(UrnId),
    /// The host graph file for a stored urn is missing.
    GraphMissing(u64),
    /// The store only manages reusable builds; per-vertex fixed colorings
    /// are test-only and cannot be keyed.
    UnsupportedColoring,
    /// The background build worker is gone (store is shutting down).
    WorkerGone,
    /// The store is a read-only replica; mutations must go to the leader
    /// (or wait for a `promote`).
    ReadOnly,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Build(e) => write!(f, "urn build failed: {e}"),
            StoreError::UnknownUrn(id) => write!(f, "unknown urn {id}"),
            StoreError::NotBuilt(id) => write!(f, "urn {id} is not built"),
            StoreError::GraphMissing(fp) => {
                write!(f, "host graph {fp:016x} missing from the store")
            }
            StoreError::UnsupportedColoring => {
                write!(f, "fixed colorings cannot be stored; use Uniform or Biased")
            }
            StoreError::WorkerGone => write!(f, "build worker has shut down"),
            StoreError::ReadOnly => {
                write!(f, "store is a read-only replica; send writes to the leader")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<BuildError> for StoreError {
    fn from(e: BuildError) -> StoreError {
        StoreError::Build(e)
    }
}
