//! Journal-shipping replication (DESIGN.md §8): the store-side halves of
//! the leader/replica protocol.
//!
//! The CRC32 journal *is* the replication log. A replica's `journal.log`
//! is maintained as a **byte-identical prefix** of the leader's: the
//! leader hands out decoded frame payloads from a byte offset
//! ([`UrnStore::journal_segment`]), and the replica re-appends them
//! through the same framing code ([`UrnStore::apply_replicated`]), which
//! deterministically reproduces the exact frame bytes (`len:u32le`
//! `crc:u32le` `payload`). A replica's replication offset is therefore
//! just its own journal length — after a crash, `Journal::open`'s
//! torn-tail truncation lands it back on its last durable offset with no
//! extra bookkeeping.
//!
//! Two things identify a leader's log lineage:
//!
//! - **`log_id`** — CRC32 of the leader's `MANIFEST` snapshot bytes (0
//!   while no snapshot exists). A `gc` folds the journal into a fresh
//!   snapshot and resets the journal, changing the `log_id`; a replica
//!   presenting the old one is told it is stale and re-bootstraps.
//! - **`prefix_crc`** — CRC32 of the replica's own journal bytes, checked
//!   by the leader against its first `offset` bytes. Matching offsets on
//!   divergent logs (say, a replica re-pointed at a different leader)
//!   cannot silently stream garbage.
//!
//! Sealed urn payloads and host graphs travel as plain files
//! ([`UrnStore::urn_file_list`] + chunked reads), installed on the
//! replica via temp-file + rename *before* the journal record that makes
//! them visible is applied — a crash between the two leaves an invisible
//! file, never a visible urn with missing bytes, and files already
//! present (matched by length + CRC32) are never fetched again.

use motivo_core::checksum::crc32;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::time::Instant;

use crate::error::StoreError;
use crate::manifest::{self, ManifestRecord, ManifestState, UrnId};
use crate::store::UrnStore;

/// Cap on raw journal bytes returned by one [`UrnStore::journal_segment`]
/// call; hex encoding on the wire doubles it, comfortably inside the
/// 8 MiB frame cap.
pub const SEGMENT_MAX_BYTES: usize = 1 << 20;

/// Cap on raw bytes of one file chunk served to a replica.
pub const FILE_CHUNK_BYTES: usize = 1 << 20;

/// One leader response to a journal poll.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalSegment {
    /// The offset the segment starts at (the replica's request offset).
    pub from: u64,
    /// Decoded frame payloads from `from` onward, in append order
    /// (empty when the replica is caught up, or when `stale`).
    pub payloads: Vec<Vec<u8>>,
    /// The leader's total journal length, for lag accounting.
    pub leader_len: u64,
    /// CRC32 of the leader's `MANIFEST` bytes (0 if absent).
    pub log_id: u32,
    /// The requested offset is not a prefix of this log (journal reset by
    /// gc, divergent lineage, or a mid-frame offset): the replica must
    /// re-bootstrap from the snapshot instead of applying `payloads`.
    pub stale: bool,
}

/// One file a replica may need to mirror: name, length, and content CRC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMeta {
    pub name: String,
    pub len: u64,
    pub crc: u32,
}

/// Rejects file names that could escape the store directory: replication
/// moves plain files within known directories, so a name with a path
/// separator (or a relative component) is corrupt or hostile.
pub fn check_plain_name(name: &str) -> Result<(), StoreError> {
    if name.is_empty() || name == "." || name == ".." || name.contains(['/', '\\']) {
        return Err(StoreError::Corrupt(format!(
            "replication file name `{name}` is not a plain file name"
        )));
    }
    Ok(())
}

fn file_meta(path: &Path) -> Result<FileMeta, StoreError> {
    let bytes = std::fs::read(path)?;
    Ok(FileMeta {
        name: path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default(),
        len: bytes.len() as u64,
        crc: crc32(&bytes),
    })
}

fn read_chunk(path: &Path, offset: u64, max: usize) -> Result<(Vec<u8>, u64), StoreError> {
    let mut f = std::fs::File::open(path)?;
    let total = f.metadata()?.len();
    let mut data = Vec::new();
    if offset < total {
        f.seek(SeekFrom::Start(offset))?;
        let want = ((total - offset) as usize).min(max);
        data.resize(want, 0);
        f.read_exact(&mut data)?;
    }
    Ok((data, total))
}

impl UrnStore {
    /// This store's replication offset: the length of its valid journal
    /// prefix. On a replica this is exactly how much of the leader's log
    /// it holds durably.
    pub fn replication_offset(&self) -> u64 {
        let state = self.inner.state.lock().expect("store state poisoned");
        state.journal.len_bytes()
    }

    /// The replication offset together with the CRC32 of the journal
    /// bytes up to it — the `(offset, prefix_crc)` pair a replica sends
    /// with every fetch. Reads both under one lock hold so the crc always
    /// matches the offset.
    pub fn replication_cursor(&self) -> Result<(u64, u32), StoreError> {
        let state = self.inner.state.lock().expect("store state poisoned");
        let len = state.journal.len_bytes();
        let raw = match std::fs::read(state.journal.path()) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        if (len as usize) > raw.len() {
            return Err(StoreError::Corrupt(format!(
                "journal shorter on disk ({}) than its valid prefix ({len})",
                raw.len()
            )));
        }
        Ok((len, crc32(&raw[..len as usize])))
    }

    /// The log lineage id: CRC32 of the `MANIFEST` snapshot bytes, 0 if
    /// no snapshot has been written yet. Changes whenever `gc` compacts
    /// the journal into a fresh snapshot.
    pub fn log_id(&self) -> Result<u32, StoreError> {
        let _state = self.inner.state.lock().expect("store state poisoned");
        self.log_id_locked()
    }

    fn log_id_locked(&self) -> Result<u32, StoreError> {
        match std::fs::read(self.inner.dir.join("MANIFEST")) {
            Ok(bytes) => Ok(crc32(&bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// The raw `MANIFEST` snapshot bytes (empty if none exists): what
    /// bootstraps an empty or stale replica.
    pub fn manifest_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let _state = self.inner.state.lock().expect("store state poisoned");
        match std::fs::read(self.inner.dir.join("MANIFEST")) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Serves the journal suffix starting at byte `from`, provided
    /// `prefix_crc` (the CRC32 of the replica's first `from` journal
    /// bytes) proves the replica's log is a prefix of this one. At most
    /// `max_bytes` of raw frame bytes are returned per call; the replica
    /// polls again for more. Runs under the state lock so it cannot race
    /// an append or a gc journal reset.
    pub fn journal_segment(
        &self,
        from: u64,
        prefix_crc: u32,
        max_bytes: usize,
    ) -> Result<JournalSegment, StoreError> {
        let state = self.inner.state.lock().expect("store state poisoned");
        let log_id = self.log_id_locked()?;
        let leader_len = state.journal.len_bytes();
        let raw = match std::fs::read(state.journal.path()) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        drop(state);

        let stale_segment = |from: u64| JournalSegment {
            from,
            payloads: Vec::new(),
            leader_len,
            log_id,
            stale: true,
        };
        if from > leader_len
            || from as usize > raw.len()
            || crc32(&raw[..from as usize]) != prefix_crc
        {
            return Ok(stale_segment(from));
        }

        let mut payloads = Vec::new();
        let mut at = from as usize;
        let end = leader_len as usize;
        let mut served = 0usize;
        while at + 8 <= end && served < max_bytes {
            let len = u32::from_le_bytes(raw[at..at + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(raw[at + 4..at + 8].try_into().unwrap());
            if at + 8 + len > end {
                // `from` was inside a frame — not a boundary of this log.
                return Ok(stale_segment(from));
            }
            let payload = raw[at + 8..at + 8 + len].to_vec();
            if crc32(&payload) != crc {
                return Ok(stale_segment(from));
            }
            served += 8 + len;
            at += 8 + len;
            payloads.push(payload);
        }
        if served < max_bytes && at < end {
            // The parse stopped short of the end with less than a frame
            // header remaining. Every frame is ≥ 8 bytes and the log ends
            // on a frame boundary, so `from` was inside the tail frame.
            return Ok(stale_segment(from));
        }
        Ok(JournalSegment {
            from,
            payloads,
            leader_len,
            log_id,
            stale: false,
        })
    }

    /// Applies a batch of leader journal payloads to this replica:
    /// each record is **decoded first** (a corrupt payload is rejected
    /// before anything is journaled), then appended to the local journal
    /// (fsynced — this is what makes the offset durable), then folded
    /// into the in-memory manifest; `Removed` records also drop the urn
    /// from the cache and delete its directory. An I/O failure stops the
    /// batch at a record boundary: the journal keeps a clean prefix and
    /// no record is ever half-applied. Returns the new offset.
    pub fn apply_replicated(&self, payloads: &[Vec<u8>]) -> Result<u64, StoreError> {
        let hist = self.inner.obs.histogram("store.repl.apply");
        let applied = self.inner.obs.counter("store.repl.applied");
        let mut state = self.inner.state.lock().expect("store state poisoned");
        for payload in payloads {
            let rec = ManifestRecord::decode(payload)?;
            let t0 = Instant::now();
            state.journal.append(payload)?;
            state.manifest.apply(&rec);
            if let ManifestRecord::Removed { id } = rec {
                state.cache.remove(id);
                match std::fs::remove_dir_all(self.inner.urn_dir(id)) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(StoreError::Io(e)),
                }
            }
            applied.inc();
            hist.record_duration(t0.elapsed());
        }
        let offset = state.journal.len_bytes();
        drop(state);
        // A BuildFinished may have unblocked `BuildHandle::wait`ers.
        self.inner.built.notify_all();
        Ok(offset)
    }

    /// Installs a leader `MANIFEST` snapshot on this replica (the
    /// re-bootstrap path after a stale poll): validates the bytes, writes
    /// them atomically, resets the local journal (its lineage just
    /// changed), and swaps in the decoded manifest. The urn cache and
    /// resident graphs are dropped — ids are stable across a leader gc,
    /// but entries removed by the compaction must not stay servable.
    /// Files already on disk are left in place; the caller re-verifies
    /// them against the leader's file lists (matching files are *not*
    /// re-fetched).
    pub fn install_manifest(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let fresh = if bytes.is_empty() {
            ManifestState::default()
        } else {
            manifest::decode_snapshot(bytes)?
        };
        let mut state = self.inner.state.lock().expect("store state poisoned");
        let path = self.inner.dir.join("MANIFEST");
        if bytes.is_empty() {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StoreError::Io(e)),
            }
        } else {
            motivo_obs::atomic_write(&path, bytes)?;
        }
        state.journal.reset()?;
        state.manifest = fresh;
        state.cache.clear();
        state.graphs.clear();
        Ok(())
    }

    /// Lists the files of one urn's sealed directory (empty if the
    /// directory doesn't exist), with length and content CRC so a replica
    /// can diff against what it already holds.
    pub fn urn_file_list(&self, id: UrnId) -> Result<Vec<FileMeta>, StoreError> {
        let dir = self.inner.urn_dir(id);
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                files.push(file_meta(&entry.path())?);
            }
        }
        files.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(files)
    }

    /// Reads up to `max` bytes of one urn file at `offset`; returns the
    /// chunk and the file's total length.
    pub fn read_urn_file(
        &self,
        id: UrnId,
        name: &str,
        offset: u64,
        max: usize,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        check_plain_name(name)?;
        read_chunk(&self.inner.urn_dir(id).join(name), offset, max)
    }

    /// Installs one urn file on this replica, atomically (temp + rename).
    pub fn install_urn_file(&self, id: UrnId, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        check_plain_name(name)?;
        let dir = self.inner.urn_dir(id);
        std::fs::create_dir_all(&dir)?;
        motivo_obs::atomic_write(&dir.join(name), bytes)?;
        Ok(())
    }

    /// The metadata of one registered host-graph file, `None` if the file
    /// is absent.
    pub fn graph_file_meta(&self, fingerprint: u64) -> Result<Option<FileMeta>, StoreError> {
        let path = self.inner.graph_path(fingerprint);
        match file_meta(&path) {
            Ok(meta) => Ok(Some(meta)),
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Reads up to `max` bytes of one host-graph file at `offset`.
    pub fn read_graph_file(
        &self,
        fingerprint: u64,
        offset: u64,
        max: usize,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        read_chunk(&self.inner.graph_path(fingerprint), offset, max)
    }

    /// Installs one host-graph file on this replica, atomically.
    pub fn install_graph_file(&self, fingerprint: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let path = self.inner.graph_path(fingerprint);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        motivo_obs::atomic_write(&path, bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreOptions;
    use crate::BuildStatus;
    use motivo_core::BuildConfig;

    fn workdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("motivo-store-repl-tests")
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tiny_graph() -> motivo_graph::Graph {
        motivo_graph::generators::barabasi_albert(60, 2, 11)
    }

    #[test]
    fn plain_name_guard_rejects_traversal() {
        for bad in ["", ".", "..", "a/b", "..\\up", "/etc/passwd"] {
            assert!(check_plain_name(bad).is_err(), "{bad:?} must be rejected");
        }
        check_plain_name("table.bin").unwrap();
    }

    /// The byte-mirror invariant in one process: re-appending the decoded
    /// payloads reproduces the leader's journal bytes exactly, and the
    /// replica's manifest converges to the leader's.
    #[test]
    fn segment_payloads_reproduce_leader_bytes_exactly() {
        let leader_dir = workdir("mirror-leader");
        let replica_dir = workdir("mirror-replica");
        let leader = UrnStore::open(&leader_dir).unwrap();
        let g = tiny_graph();
        let handle = leader
            .build_or_get(&g, &BuildConfig::new(3).seed(5))
            .unwrap();
        handle.wait().unwrap();

        let replica = UrnStore::open_replica(&replica_dir, StoreOptions::default()).unwrap();
        let seg = leader
            .journal_segment(0, crc32(&[]), SEGMENT_MAX_BYTES)
            .unwrap();
        assert!(!seg.stale);
        assert!(!seg.payloads.is_empty());
        let offset = replica.apply_replicated(&seg.payloads).unwrap();
        assert_eq!(offset, seg.leader_len);

        let leader_bytes = std::fs::read(leader_dir.join("journal.log")).unwrap();
        let replica_bytes = std::fs::read(replica_dir.join("journal.log")).unwrap();
        assert_eq!(
            leader_bytes, replica_bytes,
            "journals must be byte-identical"
        );
        assert_eq!(replica.replication_offset(), leader.replication_offset());
        let metas = replica.list();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].status, BuildStatus::Built);
    }

    /// A divergent or out-of-range offset is reported stale, never served.
    #[test]
    fn stale_offsets_and_divergent_prefixes_are_flagged() {
        let leader = UrnStore::open(workdir("stale-leader")).unwrap();
        let g = tiny_graph();
        leader
            .build_or_get(&g, &BuildConfig::new(3).seed(5))
            .unwrap()
            .wait()
            .unwrap();
        let len = leader.replication_offset();
        assert!(len > 0);
        // Beyond the end: stale.
        let seg = leader
            .journal_segment(len + 8, 0, SEGMENT_MAX_BYTES)
            .unwrap();
        assert!(seg.stale);
        // Right length, wrong prefix CRC (a different log lineage): stale.
        let seg = leader
            .journal_segment(len, 0xBAD0_BAD0, SEGMENT_MAX_BYTES)
            .unwrap();
        assert!(seg.stale);
        // Mid-frame offset (with a *correct* prefix CRC, so the boundary
        // check itself is what trips): stale, not garbage frames.
        let raw = std::fs::read(leader.dir().join("journal.log")).unwrap();
        let seg = leader
            .journal_segment(2, crc32(&raw[..2]), SEGMENT_MAX_BYTES)
            .unwrap();
        assert!(seg.stale);
    }

    /// Read-only gating: replica stores refuse every local mutation until
    /// promoted, and promotion sweeps builds the dead leader left pending.
    #[test]
    fn replica_refuses_mutations_until_promoted() {
        let replica = UrnStore::open_replica(workdir("gate"), StoreOptions::default()).unwrap();
        assert!(replica.is_read_only());
        let g = tiny_graph();
        assert!(matches!(
            replica.build_or_get(&g, &BuildConfig::new(3).seed(5)),
            Err(StoreError::ReadOnly)
        ));
        assert!(matches!(replica.gc(), Err(StoreError::ReadOnly)));
        assert!(matches!(
            replica.remove(UrnId(0)),
            Err(StoreError::UnknownUrn(_)) | Err(StoreError::ReadOnly)
        ));
        assert_eq!(replica.promote().unwrap(), 0);
        assert!(!replica.is_read_only());
        let handle = replica
            .build_or_get(&g, &BuildConfig::new(3).seed(5))
            .unwrap();
        handle.wait().unwrap();
    }

    /// Promotion fails a build the leader never finished (a replicated
    /// `BuildStarted` without its finish record).
    #[test]
    fn promote_sweeps_pending_replicated_builds() {
        let leader = UrnStore::open(workdir("sweep-leader")).unwrap();
        let g = tiny_graph();
        leader
            .build_or_get(&g, &BuildConfig::new(3).seed(5))
            .unwrap()
            .wait()
            .unwrap();
        let seg = leader
            .journal_segment(0, crc32(&[]), SEGMENT_MAX_BYTES)
            .unwrap();
        // Replicate everything but the final BuildFinished record.
        let n = seg.payloads.len();
        assert!(n >= 3, "GraphAdded + BuildStarted + BuildFinished");
        let replica =
            UrnStore::open_replica(workdir("sweep-replica"), StoreOptions::default()).unwrap();
        replica.apply_replicated(&seg.payloads[..n - 1]).unwrap();
        assert_eq!(replica.list()[0].status, BuildStatus::Pending);
        assert_eq!(replica.promote().unwrap(), 1);
        assert_eq!(replica.list()[0].status, BuildStatus::Failed);
    }

    /// A gc on the leader resets its journal and rewrites MANIFEST: the
    /// replica's old offset goes stale, and a snapshot install restores
    /// convergence with ids intact.
    #[test]
    fn gc_goes_stale_and_snapshot_reinstall_recovers() {
        let leader_dir = workdir("gc-leader");
        let leader = UrnStore::open(&leader_dir).unwrap();
        let g = tiny_graph();
        leader
            .build_or_get(&g, &BuildConfig::new(3).seed(5))
            .unwrap()
            .wait()
            .unwrap();

        // Replica fully caught up.
        let replica =
            UrnStore::open_replica(workdir("gc-replica"), StoreOptions::default()).unwrap();
        let seg = leader
            .journal_segment(0, crc32(&[]), SEGMENT_MAX_BYTES)
            .unwrap();
        replica.apply_replicated(&seg.payloads).unwrap();
        let old_offset = replica.replication_offset();
        let old_log_id = leader.log_id().unwrap();

        leader.gc().unwrap();
        assert_ne!(
            leader.log_id().unwrap(),
            old_log_id,
            "gc changes the log id"
        );
        let replica_journal = std::fs::read(replica.dir().join("journal.log")).unwrap();
        let seg = leader
            .journal_segment(old_offset, crc32(&replica_journal), SEGMENT_MAX_BYTES)
            .unwrap();
        assert!(seg.stale, "pre-gc offset must be stale");

        replica
            .install_manifest(&leader.manifest_bytes().unwrap())
            .unwrap();
        assert_eq!(replica.replication_offset(), 0);
        assert_eq!(replica.log_id().unwrap(), leader.log_id().unwrap());
        let metas = replica.list();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].status, BuildStatus::Built);
    }

    #[test]
    fn urn_files_roundtrip_with_chunked_reads() {
        let leader = UrnStore::open(workdir("files-leader")).unwrap();
        let g = tiny_graph();
        let handle = leader
            .build_or_get(&g, &BuildConfig::new(3).seed(5))
            .unwrap();
        handle.wait().unwrap();
        let id = handle.id();

        let files = leader.urn_file_list(id).unwrap();
        assert!(!files.is_empty());
        let replica =
            UrnStore::open_replica(workdir("files-replica"), StoreOptions::default()).unwrap();
        for f in &files {
            // Deliberately tiny chunks to exercise reassembly.
            let mut bytes = Vec::new();
            loop {
                let (chunk, total) = leader
                    .read_urn_file(id, &f.name, bytes.len() as u64, 7)
                    .unwrap();
                bytes.extend_from_slice(&chunk);
                if bytes.len() as u64 >= total {
                    break;
                }
            }
            assert_eq!(bytes.len() as u64, f.len);
            assert_eq!(crc32(&bytes), f.crc);
            replica.install_urn_file(id, &f.name, &bytes).unwrap();
        }
        assert_eq!(replica.urn_file_list(id).unwrap(), files);
    }
}
