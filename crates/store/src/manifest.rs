//! The manifest: which urns exist, what they were built from, and where
//! each build stands. The durable form is a `MANIFEST` snapshot plus the
//! append-only journal of every mutation since the snapshot
//! ([`crate::journal`]); the in-memory form is [`ManifestState`], produced
//! by loading the snapshot and replaying the journal over it.
//!
//! A build that has a `BuildStarted` record but no matching
//! `BuildFinished`/`BuildFailed` was interrupted by a crash; recovery
//! marks it failed and deletes its half-written urn directory.

use bytes::{Buf, BufMut};
use motivo_core::checksum::crc32;
use motivo_core::{BuildConfig, ColoringSpec, RecordCodec};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::error::StoreError;

/// Identifies one urn within a store, assigned sequentially.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UrnId(pub u64);

impl fmt::Display for UrnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "urn-{}", self.0)
    }
}

impl UrnId {
    /// Directory name of this urn under the store's `urns/` tree.
    pub fn dir_name(&self) -> String {
        self.to_string()
    }
}

/// Everything that determines a build's output (the deduplication key):
/// host graph, graphlet size, coloring distribution and seed, 0-rooting,
/// and the record codec the table is sealed under. Threads and storage
/// backend affect only speed, so they are excluded. The codec never
/// changes counts, but it *is* the stored artifact's byte layout, so a
/// plain and a succinct build of the same graph are distinct urns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BuildKey {
    /// Fingerprint of the host graph ([`motivo_core::graph_fingerprint`]).
    pub fingerprint: u64,
    /// Graphlet size.
    pub k: u32,
    /// Coloring RNG seed.
    pub seed: u64,
    /// Biased-coloring `λ` as stored bits; `None` means uniform.
    pub lambda_bits: Option<u64>,
    /// Whether size-k treelets were 0-rooted.
    pub zero_rooting: bool,
    /// Record codec of the persisted count table.
    pub codec: RecordCodec,
}

impl BuildKey {
    /// Derives the key for building `cfg` against a graph with the given
    /// fingerprint. Fixed colorings are rejected: they cannot be re-keyed.
    pub fn derive(fingerprint: u64, cfg: &BuildConfig) -> Result<BuildKey, StoreError> {
        let lambda_bits = match cfg.coloring {
            ColoringSpec::Uniform => None,
            ColoringSpec::Biased { lambda } => Some(lambda.to_bits()),
            ColoringSpec::Fixed(_) => return Err(StoreError::UnsupportedColoring),
        };
        Ok(BuildKey {
            fingerprint,
            k: cfg.k,
            seed: cfg.seed,
            lambda_bits,
            zero_rooting: cfg.zero_rooting,
            codec: cfg.codec,
            // (content_id below must fold every field added here)
        })
    }

    /// The biased-coloring `λ`, if any.
    pub fn lambda(&self) -> Option<f64> {
        self.lambda_bits.map(f64::from_bits)
    }

    /// A single 64-bit **content identity** folding every build input —
    /// graph fingerprint, `k`, coloring seed, bias, 0-rooting, codec —
    /// through a SplitMix64 fold. Two keys agree on it iff they agree on
    /// every field (up to 64-bit mixing collisions), which is what a
    /// serving-layer result cache must bind its entries to: the graph
    /// fingerprint alone would let two different builds of one graph
    /// (different `k` or seed) collide (DESIGN.md §6.5).
    pub fn content_id(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = h ^ v.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h = mix(0, self.fingerprint);
        h = mix(h, self.k as u64);
        h = mix(h, self.seed);
        // Distinguish "uniform" from any biased λ, including λ = +0.0.
        h = mix(h, self.lambda_bits.map_or(0, |b| b.wrapping_add(1)));
        h = mix(h, self.zero_rooting as u64);
        h = mix(
            h,
            match self.codec {
                RecordCodec::Plain => 0,
                RecordCodec::Succinct => 1,
            },
        );
        h
    }
}

/// Lifecycle of one urn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildStatus {
    /// `BuildStarted` journaled; the worker is (or was) building.
    Pending,
    /// Built and persisted; servable.
    Built,
    /// The build errored, or was interrupted by a crash.
    Failed,
}

/// One urn's manifest entry.
#[derive(Clone, Debug)]
pub struct UrnMeta {
    pub id: UrnId,
    pub key: BuildKey,
    pub status: BuildStatus,
    /// Count-table payload bytes (0 until built).
    pub table_bytes: u64,
    /// Non-empty records stored (0 until built).
    pub records: u64,
    /// Build wall-clock seconds (0 until built).
    pub build_secs: f64,
}

/// A host graph registered with the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphMeta {
    pub fingerprint: u64,
    pub nodes: u32,
    pub edges: u64,
}

/// One journal record (also the snapshot's row format).
#[derive(Clone, Debug, PartialEq)]
pub enum ManifestRecord {
    GraphAdded(GraphMeta),
    BuildStarted {
        id: UrnId,
        key: BuildKey,
    },
    BuildFinished {
        id: UrnId,
        table_bytes: u64,
        records: u64,
        build_secs: f64,
    },
    BuildFailed {
        id: UrnId,
    },
    Removed {
        id: UrnId,
    },
}

const TAG_GRAPH_ADDED: u8 = 1;
/// Legacy `BuildStarted` without the codec byte (pre-codec journals);
/// decoded as [`RecordCodec::Plain`], never written anymore.
const TAG_BUILD_STARTED_V1: u8 = 2;
const TAG_BUILD_FINISHED: u8 = 3;
const TAG_BUILD_FAILED: u8 = 4;
const TAG_REMOVED: u8 = 5;
/// `BuildStarted` carrying the record-codec tag.
const TAG_BUILD_STARTED: u8 = 6;

impl ManifestRecord {
    /// Serializes the record as a journal payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match *self {
            ManifestRecord::GraphAdded(g) => {
                out.put_u8(TAG_GRAPH_ADDED);
                out.put_u64_le(g.fingerprint);
                out.put_u32_le(g.nodes);
                out.put_u64_le(g.edges);
            }
            ManifestRecord::BuildStarted { id, key } => {
                out.put_u8(TAG_BUILD_STARTED);
                out.put_u64_le(id.0);
                out.put_u64_le(key.fingerprint);
                out.put_u32_le(key.k);
                out.put_u64_le(key.seed);
                match key.lambda_bits {
                    None => out.put_u8(0),
                    Some(bits) => {
                        out.put_u8(1);
                        out.put_u64_le(bits);
                    }
                }
                out.put_u8(key.zero_rooting as u8);
                out.put_u8(key.codec.tag());
            }
            ManifestRecord::BuildFinished {
                id,
                table_bytes,
                records,
                build_secs,
            } => {
                out.put_u8(TAG_BUILD_FINISHED);
                out.put_u64_le(id.0);
                out.put_u64_le(table_bytes);
                out.put_u64_le(records);
                out.put_f64_le(build_secs);
            }
            ManifestRecord::BuildFailed { id } => {
                out.put_u8(TAG_BUILD_FAILED);
                out.put_u64_le(id.0);
            }
            ManifestRecord::Removed { id } => {
                out.put_u8(TAG_REMOVED);
                out.put_u64_le(id.0);
            }
        }
        out
    }

    /// Parses one journal payload.
    pub fn decode(payload: &[u8]) -> Result<ManifestRecord, StoreError> {
        let corrupt = |msg: &str| StoreError::Corrupt(msg.to_string());
        let mut buf = payload;
        if buf.remaining() < 1 {
            return Err(corrupt("empty manifest record"));
        }
        let tag = buf.get_u8();
        let need = |buf: &&[u8], n: usize| {
            if buf.remaining() < n {
                Err(corrupt("short manifest record"))
            } else {
                Ok(())
            }
        };
        let rec = match tag {
            TAG_GRAPH_ADDED => {
                need(&buf, 20)?;
                ManifestRecord::GraphAdded(GraphMeta {
                    fingerprint: buf.get_u64_le(),
                    nodes: buf.get_u32_le(),
                    edges: buf.get_u64_le(),
                })
            }
            tag @ (TAG_BUILD_STARTED | TAG_BUILD_STARTED_V1) => {
                // 28 fixed bytes + coloring tag + zero_rooting (+ codec on
                // the v2 tag); the biased variant re-checks for its 8
                // extra λ bytes below.
                need(&buf, if tag == TAG_BUILD_STARTED { 31 } else { 30 })?;
                let id = UrnId(buf.get_u64_le());
                let fingerprint = buf.get_u64_le();
                let k = buf.get_u32_le();
                let seed = buf.get_u64_le();
                let lambda_bits = match buf.get_u8() {
                    0 => None,
                    1 => {
                        need(&buf, if tag == TAG_BUILD_STARTED { 10 } else { 9 })?;
                        Some(buf.get_u64_le())
                    }
                    _ => return Err(corrupt("bad coloring tag")),
                };
                let zero_rooting = buf.get_u8() != 0;
                let codec = if tag == TAG_BUILD_STARTED {
                    RecordCodec::from_tag(buf.get_u8()).ok_or_else(|| corrupt("bad codec tag"))?
                } else {
                    // Pre-codec journals only ever built plain tables.
                    RecordCodec::Plain
                };
                ManifestRecord::BuildStarted {
                    id,
                    key: BuildKey {
                        fingerprint,
                        k,
                        seed,
                        lambda_bits,
                        zero_rooting,
                        codec,
                    },
                }
            }
            TAG_BUILD_FINISHED => {
                need(&buf, 32)?;
                ManifestRecord::BuildFinished {
                    id: UrnId(buf.get_u64_le()),
                    table_bytes: buf.get_u64_le(),
                    records: buf.get_u64_le(),
                    build_secs: buf.get_f64_le(),
                }
            }
            TAG_BUILD_FAILED => {
                need(&buf, 8)?;
                ManifestRecord::BuildFailed {
                    id: UrnId(buf.get_u64_le()),
                }
            }
            TAG_REMOVED => {
                need(&buf, 8)?;
                ManifestRecord::Removed {
                    id: UrnId(buf.get_u64_le()),
                }
            }
            _ => return Err(corrupt("unknown manifest record tag")),
        };
        Ok(rec)
    }
}

/// The replayed, in-memory manifest.
#[derive(Clone, Debug, Default)]
pub struct ManifestState {
    /// Every live urn (removed ones are dropped eagerly).
    pub urns: BTreeMap<UrnId, UrnMeta>,
    /// Registered host graphs.
    pub graphs: BTreeMap<u64, GraphMeta>,
    /// Next id to assign.
    pub next_id: u64,
}

impl ManifestState {
    /// Folds one record into the state.
    pub fn apply(&mut self, rec: &ManifestRecord) {
        match *rec {
            ManifestRecord::GraphAdded(g) => {
                self.graphs.insert(g.fingerprint, g);
            }
            ManifestRecord::BuildStarted { id, key } => {
                self.next_id = self.next_id.max(id.0 + 1);
                self.urns.insert(
                    id,
                    UrnMeta {
                        id,
                        key,
                        status: BuildStatus::Pending,
                        table_bytes: 0,
                        records: 0,
                        build_secs: 0.0,
                    },
                );
            }
            ManifestRecord::BuildFinished {
                id,
                table_bytes,
                records,
                build_secs,
            } => {
                if let Some(meta) = self.urns.get_mut(&id) {
                    meta.status = BuildStatus::Built;
                    meta.table_bytes = table_bytes;
                    meta.records = records;
                    meta.build_secs = build_secs;
                }
            }
            ManifestRecord::BuildFailed { id } => {
                if let Some(meta) = self.urns.get_mut(&id) {
                    meta.status = BuildStatus::Failed;
                }
            }
            ManifestRecord::Removed { id } => {
                self.urns.remove(&id);
            }
        }
    }

    /// The built urn matching `key`, if any.
    pub fn find_built(&self, key: &BuildKey) -> Option<&UrnMeta> {
        self.urns
            .values()
            .find(|m| m.status == BuildStatus::Built && m.key == *key)
    }

    /// The pending build matching `key`, if any.
    pub fn find_pending(&self, key: &BuildKey) -> Option<&UrnMeta> {
        self.urns
            .values()
            .find(|m| m.status == BuildStatus::Pending && m.key == *key)
    }

    /// Serializes the full state as snapshot records (graphs first, then
    /// urns). Built urns keep both lifecycle records; pending urns keep
    /// their `BuildStarted` so an in-flight build survives a concurrent
    /// snapshot — dropping it would orphan the urn once the journal is
    /// reset, because the finish record would then replay against
    /// nothing. Failed urns are dropped: their directories are gone.
    pub fn snapshot_records(&self) -> Vec<ManifestRecord> {
        let mut recs: Vec<ManifestRecord> = Vec::new();
        for g in self.graphs.values() {
            recs.push(ManifestRecord::GraphAdded(*g));
        }
        for m in self.urns.values() {
            if m.status == BuildStatus::Failed {
                continue;
            }
            recs.push(ManifestRecord::BuildStarted {
                id: m.id,
                key: m.key,
            });
            if m.status == BuildStatus::Built {
                recs.push(ManifestRecord::BuildFinished {
                    id: m.id,
                    table_bytes: m.table_bytes,
                    records: m.records,
                    build_secs: m.build_secs,
                });
            }
        }
        recs
    }
}

const MANIFEST_MAGIC: &[u8; 4] = b"MTVS";
const MANIFEST_VERSION: u32 = 1;

/// Writes a checksummed snapshot atomically (temp file + rename).
pub fn write_snapshot(path: &Path, state: &ManifestState) -> Result<(), StoreError> {
    let mut body = Vec::new();
    body.put_u64_le(state.next_id);
    let recs = state.snapshot_records();
    body.put_u32_le(recs.len() as u32);
    for rec in &recs {
        let payload = rec.encode();
        body.put_u32_le(payload.len() as u32);
        body.put_slice(&payload);
    }
    let mut out = Vec::with_capacity(12 + body.len());
    out.put_slice(MANIFEST_MAGIC);
    out.put_u32_le(MANIFEST_VERSION);
    out.put_u32_le(crc32(&body));
    out.put_slice(&body);

    let tmp = path.with_extension("new");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&out)?;
        // Sync before the rename so a crash can't promote an empty or
        // partial snapshot over the old one.
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a snapshot written by [`write_snapshot`]; `Ok(None)` if the file
/// doesn't exist (a fresh store).
pub fn load_snapshot(path: &Path) -> Result<Option<ManifestState>, StoreError> {
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    decode_snapshot(&raw).map(Some)
}

/// Parses snapshot bytes (the body of a `MANIFEST` file) — the validation
/// half of [`load_snapshot`], also used to vet a snapshot fetched over the
/// replication stream before it is installed.
pub fn decode_snapshot(raw: &[u8]) -> Result<ManifestState, StoreError> {
    let corrupt = |msg: &str| StoreError::Corrupt(format!("MANIFEST: {msg}"));
    let mut buf = raw;
    if buf.remaining() < 12 {
        return Err(corrupt("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MANIFEST_MAGIC || buf.get_u32_le() != MANIFEST_VERSION {
        return Err(corrupt("bad magic or version"));
    }
    let want = buf.get_u32_le();
    if crc32(buf) != want {
        return Err(corrupt("checksum mismatch"));
    }
    if buf.remaining() < 12 {
        return Err(corrupt("truncated body"));
    }
    let mut state = ManifestState {
        next_id: buf.get_u64_le(),
        ..Default::default()
    };
    let n = buf.get_u32_le() as usize;
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated record header"));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(corrupt("truncated record"));
        }
        let mut payload = vec![0u8; len];
        buf.copy_to_slice(&mut payload);
        state.apply(&ManifestRecord::decode(&payload)?);
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64, k: u32) -> BuildKey {
        BuildKey {
            fingerprint: fp,
            k,
            seed: 7,
            lambda_bits: None,
            zero_rooting: true,
            codec: RecordCodec::Plain,
        }
    }

    #[test]
    fn records_roundtrip_through_codec() {
        let recs = vec![
            ManifestRecord::GraphAdded(GraphMeta {
                fingerprint: 0xFEED,
                nodes: 9,
                edges: 12,
            }),
            ManifestRecord::BuildStarted {
                id: UrnId(3),
                key: key(0xFEED, 5),
            },
            ManifestRecord::BuildStarted {
                id: UrnId(4),
                key: BuildKey {
                    lambda_bits: Some(0.125f64.to_bits()),
                    zero_rooting: false,
                    codec: RecordCodec::Succinct,
                    ..key(1, 4)
                },
            },
            ManifestRecord::BuildFinished {
                id: UrnId(3),
                table_bytes: 1 << 20,
                records: 512,
                build_secs: 1.25,
            },
            ManifestRecord::BuildFailed { id: UrnId(4) },
            ManifestRecord::Removed { id: UrnId(3) },
        ];
        for rec in recs {
            let back = ManifestRecord::decode(&rec.encode()).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ManifestRecord::decode(&[]).is_err());
        assert!(ManifestRecord::decode(&[99, 0, 0]).is_err());
        assert!(ManifestRecord::decode(&[TAG_BUILD_FAILED, 1, 2]).is_err());
        // A CRC-valid but short BuildStarted must error at every truncation
        // point, not panic (uniform needs 31 bytes after the tag's frame;
        // the 30-byte form ends exactly before the codec byte).
        let full = ManifestRecord::BuildStarted {
            id: UrnId(7),
            key: key(1, 4),
        }
        .encode();
        for cut in 1..full.len() {
            assert!(
                ManifestRecord::decode(&full[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        // An out-of-range codec byte is rejected too.
        let mut bad_codec = full.clone();
        *bad_codec.last_mut().unwrap() = 99;
        assert!(ManifestRecord::decode(&bad_codec).is_err());
    }

    /// Journals written before the codec column used tag 2 without a
    /// trailing codec byte; they decode as plain builds.
    #[test]
    fn legacy_build_started_decodes_as_plain() {
        let modern = ManifestRecord::BuildStarted {
            id: UrnId(9),
            key: key(0xC0FFEE, 5),
        };
        let mut legacy = modern.encode();
        legacy[0] = TAG_BUILD_STARTED_V1;
        legacy.pop(); // drop the codec byte
        assert_eq!(ManifestRecord::decode(&legacy).unwrap(), modern);
        // Truncations of the legacy frame are still rejected.
        for cut in 1..legacy.len() {
            assert!(ManifestRecord::decode(&legacy[..cut]).is_err());
        }
    }

    #[test]
    fn state_machine_tracks_lifecycle() {
        let mut st = ManifestState::default();
        let k5 = key(10, 5);
        st.apply(&ManifestRecord::BuildStarted {
            id: UrnId(0),
            key: k5,
        });
        assert_eq!(st.next_id, 1);
        assert!(st.find_pending(&k5).is_some());
        assert!(st.find_built(&k5).is_none());
        st.apply(&ManifestRecord::BuildFinished {
            id: UrnId(0),
            table_bytes: 100,
            records: 5,
            build_secs: 0.5,
        });
        assert!(st.find_pending(&k5).is_none());
        assert_eq!(st.find_built(&k5).unwrap().table_bytes, 100);
        // A different key does not match.
        assert!(st.find_built(&key(10, 4)).is_none());
        st.apply(&ManifestRecord::Removed { id: UrnId(0) });
        assert!(st.find_built(&k5).is_none());
        assert_eq!(st.next_id, 1, "ids are never reused");
    }

    #[test]
    fn snapshot_roundtrip_drops_dead_urns() {
        let dir = std::env::temp_dir().join("motivo-store-manifest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("MANIFEST-roundtrip");
        let mut st = ManifestState::default();
        st.apply(&ManifestRecord::GraphAdded(GraphMeta {
            fingerprint: 0xAB,
            nodes: 50,
            edges: 99,
        }));
        st.apply(&ManifestRecord::BuildStarted {
            id: UrnId(0),
            key: key(0xAB, 4),
        });
        st.apply(&ManifestRecord::BuildFinished {
            id: UrnId(0),
            table_bytes: 7,
            records: 3,
            build_secs: 0.1,
        });
        st.apply(&ManifestRecord::BuildStarted {
            id: UrnId(1),
            key: key(0xAB, 5),
        });
        st.apply(&ManifestRecord::BuildFailed { id: UrnId(1) });
        // An in-flight build at snapshot time must survive as Pending: a
        // post-snapshot BuildFinished has to replay against something, and
        // recovery (not the snapshot) decides whether it was interrupted.
        st.apply(&ManifestRecord::BuildStarted {
            id: UrnId(2),
            key: key(0xAB, 6),
        });
        write_snapshot(&path, &st).unwrap();
        let back = load_snapshot(&path).unwrap().unwrap();
        assert_eq!(back.next_id, 3);
        assert_eq!(back.graphs.len(), 1);
        assert_eq!(back.urns.len(), 2, "failed urn dropped at snapshot");
        assert_eq!(back.urns[&UrnId(0)].status, BuildStatus::Built);
        assert_eq!(back.urns[&UrnId(2)].status, BuildStatus::Pending);
        let mut after = back;
        after.apply(&ManifestRecord::BuildFinished {
            id: UrnId(2),
            table_bytes: 11,
            records: 4,
            build_secs: 0.2,
        });
        assert_eq!(after.urns[&UrnId(2)].status, BuildStatus::Built);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_checksum_detects_corruption() {
        let dir = std::env::temp_dir().join("motivo-store-manifest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("MANIFEST-corrupt");
        write_snapshot(&path, &ManifestState::default()).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0x80;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(load_snapshot(&path), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_is_a_fresh_store() {
        let path = std::env::temp_dir().join("motivo-store-manifest-tests/none");
        assert!(load_snapshot(&path).unwrap().is_none());
    }
}
