//! The append-only journal: every manifest mutation is a length-prefixed,
//! CRC32-checksummed record appended and fsynced before it takes effect,
//! in the style of an LSM engine's write-ahead log.
//!
//! Frame layout:
//!
//! ```text
//! entry := len:u32le  crc:u32le  payload[len]      (crc over payload)
//! ```
//!
//! Recovery tolerates a torn tail: replay stops at the first frame whose
//! length runs past EOF or whose checksum mismatches, and the file is
//! truncated back to the last valid frame, so a crash mid-append never
//! poisons the store.

use bytes::{Buf, BufMut};
use motivo_core::checksum::crc32;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::StoreError;

/// An open journal file, positioned for appends.
pub struct Journal {
    file: File,
    path: PathBuf,
    len: u64,
}

/// What [`Journal::open`] found on disk.
pub struct Replay {
    /// The journal, ready for appends after the valid prefix.
    pub journal: Journal,
    /// Decoded payloads of every valid frame, in append order.
    pub entries: Vec<Vec<u8>>,
    /// Bytes of torn/corrupt tail that were discarded, if any.
    pub truncated_bytes: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replaying the valid
    /// prefix and truncating any torn tail.
    pub fn open(path: impl AsRef<Path>) -> Result<Replay, StoreError> {
        let path = path.as_ref().to_path_buf();
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };

        let mut entries = Vec::new();
        let mut buf = &raw[..];
        let mut valid: u64 = 0;
        loop {
            if buf.remaining() < 8 {
                break;
            }
            let mut header = buf;
            let len = header.get_u32_le() as usize;
            let crc = header.get_u32_le();
            if header.remaining() < len {
                break; // torn mid-payload
            }
            let mut payload = vec![0u8; len];
            header.copy_to_slice(&mut payload);
            if crc32(&payload) != crc {
                break; // torn mid-frame or bit rot: stop at last good frame
            }
            entries.push(payload);
            buf = header;
            valid += 8 + len as u64;
        }
        let truncated_bytes = raw.len() as u64 - valid;

        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        if truncated_bytes > 0 {
            file.set_len(valid)?;
        }
        let journal = Journal {
            file,
            path,
            len: valid,
        };
        Ok(Replay {
            journal,
            entries,
            truncated_bytes,
        })
    }

    /// Appends one record; returns only after the frame is written *and*
    /// synced to stable storage (`fdatasync`), so an acknowledged commit
    /// survives power loss, not just a process crash.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(payload));
        frame.put_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Current length in bytes (valid frames only).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Empties the journal (after its contents were folded into a manifest
    /// snapshot).
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        self.len = 0;
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("motivo-store-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        p
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let path = tmp("roundtrip.log");
        {
            let mut j = Journal::open(&path).unwrap().journal;
            j.append(b"alpha").unwrap();
            j.append(b"").unwrap();
            j.append(&[0xFF; 300]).unwrap();
        }
        let replay = Journal::open(&path).unwrap();
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.entries[0], b"alpha");
        assert_eq!(replay.entries[1], b"");
        assert_eq!(replay.entries[2], vec![0xFF; 300]);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn.log");
        {
            let mut j = Journal::open(&path).unwrap().journal;
            j.append(b"keep-1").unwrap();
            j.append(b"keep-2").unwrap();
        }
        // Simulate a crash mid-append: a frame header promising more bytes
        // than were written.
        let good_len = std::fs::metadata(&path).unwrap().len();
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&100u32.to_le_bytes());
        raw.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        raw.extend_from_slice(b"only a few bytes");
        std::fs::write(&path, &raw).unwrap();

        let replay = Journal::open(&path).unwrap();
        assert_eq!(replay.entries, vec![b"keep-1".to_vec(), b"keep-2".to_vec()]);
        assert!(replay.truncated_bytes > 0);
        // The file itself was healed.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // And appends continue cleanly after recovery.
        let mut j = replay.journal;
        j.append(b"keep-3").unwrap();
        drop(j);
        let replay = Journal::open(&path).unwrap();
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.truncated_bytes, 0);
    }

    #[test]
    fn corrupt_crc_stops_replay_at_last_good_frame() {
        let path = tmp("crc.log");
        {
            let mut j = Journal::open(&path).unwrap().journal;
            j.append(b"good").unwrap();
            j.append(b"soon-bad").unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0x01; // flip a payload bit of the second frame
        std::fs::write(&path, &raw).unwrap();
        let replay = Journal::open(&path).unwrap();
        assert_eq!(replay.entries, vec![b"good".to_vec()]);
        assert!(replay.truncated_bytes > 0);
    }

    #[test]
    fn reset_empties_the_file() {
        let path = tmp("reset.log");
        let mut j = Journal::open(&path).unwrap().journal;
        j.append(b"ephemeral").unwrap();
        j.reset().unwrap();
        assert_eq!(j.len_bytes(), 0);
        j.append(b"fresh").unwrap();
        drop(j);
        let replay = Journal::open(&path).unwrap();
        assert_eq!(replay.entries, vec![b"fresh".to_vec()]);
    }
}
