//! [`StoreUrn`]: an urn that owns its host graph, so the store can cache
//! and hand out urns without borrowing from the caller.
//!
//! [`motivo_core::Urn`] borrows its graph (`Urn<'g>`), which is the right
//! shape for one-shot runs but not for a repository whose urns outlive any
//! caller stack frame. `StoreUrn` pins the graph behind an `Arc` and keeps
//! an `Urn` pointing into that allocation.

use motivo_core::error::BuildError;
use motivo_core::Urn;
use motivo_graph::Graph;
use std::sync::Arc;

/// A self-contained urn: graph + assembled urn, shareable across threads
/// and cacheable by the store.
pub struct StoreUrn {
    /// Borrows `graph`'s heap allocation; declared first so it drops
    /// before the `Arc` it points into.
    urn: Urn<'static>,
    graph: Arc<Graph>,
    /// Resident footprint estimate (table payload + CSR bytes), the unit
    /// of the cache's byte budget. The table half is the *encoded* size
    /// under the urn's record codec, so succinct tables consume
    /// proportionally less of the LRU budget than plain ones.
    bytes: usize,
}

impl StoreUrn {
    /// Assembles a `StoreUrn` by running `make` (a load or build) against
    /// the pinned graph.
    pub fn assemble<F>(graph: Arc<Graph>, make: F) -> Result<StoreUrn, BuildError>
    where
        F: FnOnce(&'static Graph) -> Result<Urn<'static>, BuildError>,
    {
        // SAFETY: the reference points into the Arc's heap allocation,
        // which is stable (Arc never moves its payload), never handed out
        // mutably, and outlives `urn`: the Arc lives in the same struct
        // and field order drops `urn` first. The 'static lifetime never
        // escapes this struct — accessors reborrow at `&self`'s lifetime.
        let graph_ref: &'static Graph = unsafe { &*Arc::as_ptr(&graph) };
        let urn = make(graph_ref)?;
        let bytes = urn.table().byte_size() + graph_ref.byte_size();
        Ok(StoreUrn { urn, graph, bytes })
    }

    /// The urn, reborrowed at the caller's lifetime (covariance shortens
    /// the internal `'static`).
    pub fn urn(&self) -> &Urn<'_> {
        &self.urn
    }

    /// The pinned host graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Resident footprint estimate in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_core::{build_urn, naive_estimates, BuildConfig, SampleConfig};
    use motivo_graph::generators;
    use motivo_graphlet::GraphletRegistry;

    #[test]
    fn outlives_the_construction_scope_and_samples() {
        let owned = {
            let graph = Arc::new(generators::barabasi_albert(150, 3, 4));
            StoreUrn::assemble(graph, |g| {
                build_urn(
                    g,
                    &BuildConfig {
                        threads: 1,
                        ..BuildConfig::new(4)
                    }
                    .seed(2),
                )
            })
            .unwrap()
        };
        assert!(owned.bytes() > 0);
        assert_eq!(owned.urn().k(), 4);
        let mut registry = GraphletRegistry::new(4);
        let est = naive_estimates(
            owned.urn(),
            &mut registry,
            2_000,
            &SampleConfig::seeded(1).threads(1),
        );
        assert!(est.total_count() > 0.0);
    }

    #[test]
    fn clones_of_the_graph_arc_stay_valid_after_drop() {
        let graph = Arc::new(generators::complete_graph(10));
        let owned = StoreUrn::assemble(graph.clone(), |g| {
            build_urn(
                g,
                &BuildConfig {
                    threads: 1,
                    ..BuildConfig::new(3)
                }
                .seed(1),
            )
        })
        .unwrap();
        let total = owned.urn().total_treelets();
        assert!(total > 0);
        drop(owned);
        // The graph Arc handed in is untouched by the urn's lifecycle.
        assert_eq!(graph.num_nodes(), 10);
    }
}
