//! Byte-budgeted LRU cache of loaded urns: hot graphs answer queries from
//! memory, cold urns stay on disk and are reloaded on demand. Entries are
//! `Arc`s, so eviction never invalidates an urn a query is still using —
//! it only drops the cache's reference.

use motivo_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::Arc;

use crate::manifest::UrnId;
use crate::owned::StoreUrn;

/// Aggregate cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that had to load from disk.
    pub misses: u64,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Resident payload bytes right now.
    pub resident_bytes: usize,
    /// Resident entries right now.
    pub resident_urns: usize,
}

struct Entry {
    urn: Arc<StoreUrn>,
    last_used: u64,
}

/// The LRU itself. Not thread-safe; the store wraps it in its state lock.
pub struct UrnCache {
    entries: HashMap<UrnId, Entry>,
    budget_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Mirrors of the counters above in an [`motivo_obs::Registry`]
    /// (`store.lru.*`), when one is attached.
    obs: Option<CacheObs>,
}

struct CacheObs {
    hits: Counter,
    misses: Counter,
    admissions: Counter,
    evictions: Counter,
}

impl UrnCache {
    /// A cache holding at most `budget_bytes` of urn payload (0 = cache
    /// nothing; every lookup reloads).
    pub fn new(budget_bytes: usize) -> UrnCache {
        UrnCache {
            entries: HashMap::new(),
            budget_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            obs: None,
        }
    }

    /// Mirrors hit/miss/admission/eviction counts into `registry` under
    /// `store.lru.*`.
    pub fn with_obs(mut self, registry: &Registry) -> UrnCache {
        self.obs = Some(CacheObs {
            hits: registry.counter("store.lru.hits"),
            misses: registry.counter("store.lru.misses"),
            admissions: registry.counter("store.lru.admissions"),
            evictions: registry.counter("store.lru.evictions"),
        });
        self
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Looks up `id`, refreshing its recency on hit and counting the
    /// outcome either way.
    pub fn get(&mut self, id: UrnId) -> Option<Arc<StoreUrn>> {
        self.tick += 1;
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                if let Some(obs) = &self.obs {
                    obs.hits.inc();
                }
                Some(e.urn.clone())
            }
            None => {
                self.misses += 1;
                if let Some(obs) = &self.obs {
                    obs.misses.inc();
                }
                None
            }
        }
    }

    /// Whether `id` is resident (no recency update, no counter update).
    pub fn contains(&self, id: UrnId) -> bool {
        self.entries.contains_key(&id)
    }

    /// The resident entry without touching recency or counters (used for
    /// the publish-race recheck, which is not a user-visible lookup).
    pub fn peek(&self, id: UrnId) -> Option<Arc<StoreUrn>> {
        self.entries.get(&id).map(|e| e.urn.clone())
    }

    /// Inserts a freshly loaded urn, evicting least-recently-used entries
    /// first if the budget would overflow. An urn larger than the whole
    /// budget is not cached at all.
    pub fn insert(&mut self, id: UrnId, urn: Arc<StoreUrn>) {
        if urn.bytes() > self.budget_bytes {
            return;
        }
        self.tick += 1;
        self.entries.insert(
            id,
            Entry {
                urn,
                last_used: self.tick,
            },
        );
        if let Some(obs) = &self.obs {
            obs.admissions.inc();
        }
        while self.resident_bytes() > self.budget_bytes {
            let coldest = self
                .entries
                .iter()
                .filter(|(&eid, _)| eid != id)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&eid, _)| eid);
            match coldest {
                Some(eid) => {
                    self.entries.remove(&eid);
                    self.evictions += 1;
                    if let Some(obs) = &self.obs {
                        obs.evictions.inc();
                    }
                }
                None => break, // only the new entry left; keep it
            }
        }
    }

    /// Drops `id` from the cache (explicit `evict`/`remove`); returns
    /// whether it was resident.
    pub fn remove(&mut self, id: UrnId) -> bool {
        self.entries.remove(&id).is_some()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn resident_bytes(&self) -> usize {
        self.entries.values().map(|e| e.urn.bytes()).sum()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident_bytes(),
            resident_urns: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_core::{build_urn, BuildConfig};
    use motivo_graph::generators;

    fn make_urn(seed: u64) -> Arc<StoreUrn> {
        let graph = Arc::new(generators::barabasi_albert(60, 2, seed));
        Arc::new(
            StoreUrn::assemble(graph, |g| {
                build_urn(
                    g,
                    &BuildConfig {
                        threads: 1,
                        ..BuildConfig::new(3)
                    }
                    .seed(seed),
                )
            })
            .unwrap(),
        )
    }

    #[test]
    fn hit_miss_accounting() {
        let mut cache = UrnCache::new(usize::MAX);
        let urn = make_urn(1);
        assert!(cache.get(UrnId(0)).is_none());
        cache.insert(UrnId(0), urn);
        assert!(cache.get(UrnId(0)).is_some());
        assert!(cache.get(UrnId(1)).is_none());
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (1, 2));
        assert_eq!(st.resident_urns, 1);
        assert!(st.resident_bytes > 0);
    }

    #[test]
    fn lru_evicts_coldest_under_byte_budget() {
        let urns: Vec<Arc<StoreUrn>> = (1..=3).map(make_urn).collect();
        let one = urns[0].bytes();
        // Budget fits two of the three (they're near-identical in size).
        let mut cache = UrnCache::new(one * 2 + one / 2);
        cache.insert(UrnId(1), urns[0].clone());
        cache.insert(UrnId(2), urns[1].clone());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(UrnId(1)).is_some());
        cache.insert(UrnId(3), urns[2].clone());
        assert!(cache.contains(UrnId(1)), "recently used survives");
        assert!(!cache.contains(UrnId(2)), "coldest entry evicted");
        assert!(cache.contains(UrnId(3)), "new entry resident");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_urn_is_not_cached() {
        let urn = make_urn(4);
        let mut cache = UrnCache::new(urn.bytes() - 1);
        cache.insert(UrnId(7), urn);
        assert!(!cache.contains(UrnId(7)));
        assert_eq!(cache.stats().resident_urns, 0);
    }

    #[test]
    fn remove_and_clear() {
        let mut cache = UrnCache::new(usize::MAX);
        cache.insert(UrnId(0), make_urn(5));
        cache.insert(UrnId(1), make_urn(6));
        assert!(cache.remove(UrnId(0)));
        assert!(!cache.remove(UrnId(0)));
        cache.clear();
        assert_eq!(cache.stats().resident_urns, 0);
    }
}
