//! Test support: I/O fault injection for crash and replication tests.
//!
//! Production code never calls into this module; it exists so the
//! integration suites (`tests/store.rs`, `tests/replication.rs`) and the
//! crate's own unit tests share one honest way to simulate the two
//! failure shapes that matter to a journaled store:
//!
//! - a **failing write** ([`FaultyLevelStore`]): the Nth `put` into a
//!   count-table level errors, as a full disk or yanked volume would —
//!   proving write paths propagate the error instead of recording a
//!   half-written artifact as good;
//! - a **torn append** ([`torn_journal_append`]): a journal frame whose
//!   tail never reached the disk, as a crash mid-`append` leaves behind —
//!   proving recovery truncates back to the last durable record (the
//!   offset a replica resumes from).

use bytes::BufMut;
use motivo_core::checksum::crc32;
use motivo_table::{LevelStore, Record, RecordHandle};
use std::io;
use std::path::Path;

/// A [`LevelStore`] wrapper that injects an I/O error on the Nth write
/// (1-based) and every write after it. Reads pass through untouched, so a
/// test can verify that everything written *before* the fault is still
/// served correctly.
pub struct FaultyLevelStore<S: LevelStore> {
    inner: S,
    writes: u64,
    fail_from: u64,
}

impl<S: LevelStore> FaultyLevelStore<S> {
    /// Wraps `inner`, failing the `n`-th write and all later ones
    /// (`n = 1` fails the very first write; `n = u64::MAX` never fails).
    pub fn fail_from(inner: S, n: u64) -> FaultyLevelStore<S> {
        FaultyLevelStore {
            inner,
            writes: 0,
            fail_from: n,
        }
    }

    /// How many writes were attempted (failed ones included).
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl<S: LevelStore> LevelStore for FaultyLevelStore<S> {
    fn put(&mut self, v: u32, rec: Record) -> io::Result<()> {
        self.writes += 1;
        if self.writes >= self.fail_from {
            return Err(io::Error::other(format!(
                "injected write fault on write {}",
                self.writes
            )));
        }
        self.inner.put(v, rec)
    }

    fn get(&self, v: u32) -> io::Result<RecordHandle<'_>> {
        self.inner.get(v)
    }

    fn byte_size(&self) -> usize {
        self.inner.byte_size()
    }

    fn record_count(&self) -> usize {
        self.inner.record_count()
    }

    fn seal(&mut self) -> io::Result<()> {
        self.inner.seal()
    }

    fn num_vertices(&self) -> u32 {
        self.inner.num_vertices()
    }

    fn scan(&self) -> motivo_table::LevelScan<'_> {
        self.inner.scan()
    }

    fn profile(&self) -> motivo_table::LevelProfile {
        self.inner.profile()
    }
}

/// Appends a **torn** journal frame to the file at `path`: a frame for
/// `payload` is built exactly as [`crate::Journal::append`] would
/// (`len:u32le crc:u32le payload`), but only its first `keep` bytes are
/// written — clamped so at least the last byte is always missing. This is
/// what a crash between `write_all` and `sync_data` can leave on disk;
/// `Journal::open` must truncate it away and resume at the previous
/// frame boundary.
pub fn torn_journal_append(path: &Path, payload: &[u8], keep: usize) -> io::Result<()> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.put_u32_le(payload.len() as u32);
    frame.put_u32_le(crc32(payload));
    frame.put_slice(payload);
    let keep = keep.min(frame.len() - 1);
    let mut existing = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    existing.extend_from_slice(&frame[..keep]);
    std::fs::write(path, &existing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use motivo_table::{CountTable, MemoryLevel, RecordCodec};

    #[test]
    fn faulty_level_fails_from_the_nth_write_onward() {
        let mut level = FaultyLevelStore::fail_from(MemoryLevel::new(8, RecordCodec::Plain), 3);
        let rec = |v: u32| {
            let mut b = motivo_table::RecordBuilder::new();
            b.add((v as u64 + 1) << 16 | 0b0011, v as u128 + 1);
            b.freeze()
        };
        level.put(0, rec(0)).unwrap();
        level.put(1, rec(1)).unwrap();
        assert!(level.put(2, rec(2)).is_err(), "third write must fail");
        assert!(level.put(3, rec(3)).is_err(), "and it stays failed");
        assert_eq!(level.writes(), 4);
        // What landed before the fault is intact and servable.
        assert_eq!(level.record_count(), 2);
        let table = CountTable::from_levels(vec![Box::new(level)], RecordCodec::Plain);
        assert_eq!(table.level(1).record_count(), 2);
    }

    /// Fault injection composes with the block backend: writes before the
    /// fault survive sealing (spills included) and are served back; the
    /// fault itself surfaces as an error, never a silent half-level.
    #[test]
    fn faulty_block_level_serves_pre_fault_records_after_seal() {
        let dir = std::env::temp_dir().join("motivo-store-testing-block");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let inner = motivo_table::BlockLevel::create(
            dir.join("l.mtvb"),
            16,
            RecordCodec::Plain,
            64, // tiny budget: the surviving puts spill at least once
        )
        .unwrap();
        let mut level = FaultyLevelStore::fail_from(inner, 5);
        let rec = |v: u32| {
            let mut b = motivo_table::RecordBuilder::new();
            b.add((v as u64 + 1) << 16 | 0b0011, v as u128 + 1);
            b.freeze()
        };
        for v in 0..4u32 {
            level.put(v, rec(v)).unwrap();
        }
        assert!(level.put(4, rec(4)).is_err(), "fifth write must fail");
        level.seal().unwrap();
        assert_eq!(level.record_count(), 4);
        for v in 0..4u32 {
            assert_eq!(level.get(v).unwrap().total(), rec(v).total());
        }
        assert!(level.get(4).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_is_truncated_on_reopen() {
        let dir = std::env::temp_dir().join("motivo-store-testing-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn-append.log");
        std::fs::remove_file(&path).ok();
        {
            let mut j = Journal::open(&path).unwrap().journal;
            j.append(b"durable").unwrap();
        }
        let durable_len = std::fs::metadata(&path).unwrap().len();
        // Tear at every prefix length of a would-be second frame: none may
        // survive recovery, and the durable frame always must.
        for keep in 0..(8 + 5) {
            torn_journal_append(&path, b"later", keep).unwrap();
            let replay = Journal::open(&path).unwrap();
            assert_eq!(replay.entries, vec![b"durable".to_vec()], "keep={keep}");
            assert_eq!(replay.journal.len_bytes(), durable_len, "keep={keep}");
        }
    }
}
