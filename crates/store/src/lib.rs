//! # motivo-store
//!
//! A crash-safe repository of built urns, turning the paper's two-phase
//! design into a long-lived service: the build-up phase is the expensive
//! half of a Motivo run, and the count tables live on external storage
//! precisely so they can be built once and queried many times (§3.1,
//! §3.3). `motivo-store` owns a directory of such tables the way an LSM
//! engine owns its SSTables:
//!
//! - **Durability** ([`journal`], [`manifest`]): every mutation is a
//!   length-prefixed, CRC32-checksummed record appended to `journal.log`
//!   before it takes effect; `MANIFEST` snapshots fold the journal down.
//!   Opening a store replays the journal, truncates torn tails, and
//!   garbage-collects builds a crash left half-written.
//! - **Serving** ([`cache`], [`query`]): loaded urns live in a
//!   byte-budgeted LRU, so hot graphs answer from memory while cold ones
//!   stay on disk. [`StoreQuery`] routes `naive_estimates`/`ags` calls
//!   through the cache and records per-urn hit/miss/latency statistics.
//! - **Builds** ([`store`]): [`UrnStore::build_or_get`] deduplicates on
//!   the build key (graph fingerprint, k, coloring, 0-rooting) and
//!   enqueues cache-missing builds on a background worker thread; callers
//!   poll or block on a [`BuildHandle`].
//!
//! ```no_run
//! use motivo_store::{StoreQuery, UrnStore};
//! use motivo_core::{BuildConfig, SampleConfig};
//!
//! let graph = motivo_graph::generators::barabasi_albert(10_000, 3, 7);
//! let store = UrnStore::open("motif-store")?;
//! let handle = store.build_or_get(&graph, &BuildConfig::new(5).seed(1))?;
//! let id = handle.wait()?.urn().k(); // blocks until built (or instant if stored)
//!
//! let query = StoreQuery::new(&store);
//! let mut registry = motivo_graphlet::GraphletRegistry::new(5);
//! let est =
//!     query.naive_estimates(handle.id(), &mut registry, 100_000, &SampleConfig::seeded(2))?;
//! println!("~{:.3e} copies, {:?} cache", est.total_count(), store.cache_stats());
//! # Ok::<(), motivo_store::StoreError>(())
//! ```

pub mod cache;
pub mod error;
pub mod journal;
pub mod manifest;
pub mod owned;
pub mod query;
pub mod replication;
pub mod store;
pub mod testing;

pub use cache::CacheStats;
pub use error::StoreError;
pub use journal::Journal;
pub use manifest::{BuildKey, BuildStatus, GraphMeta, ManifestRecord, UrnId, UrnMeta};
pub use owned::StoreUrn;
pub use query::{QueryStats, StoreQuery};
pub use replication::{FileMeta, JournalSegment, FILE_CHUNK_BYTES, SEGMENT_MAX_BYTES};
pub use store::{BuildHandle, GcReport, RecoveryReport, StoreOptions, UrnStore};
