//! Pluggable record codecs — the paper's succinct count-table encoding.
//!
//! Motivo's headline memory win (§3.1 and the extended version's "succinct
//! color coding") comes from *not* storing each record entry as a fixed
//! `(u64 key, u128 cumulative count)` pair. Keys within a record are sorted,
//! so consecutive keys are close and their differences fit in a byte or two;
//! per-entry counts are mostly tiny. [`RecordCodec`] names the two
//! representations a [`crate::Record`] can take:
//!
//! * [`RecordCodec::Plain`] — the original fixed-width layout (176 bits per
//!   pair). Fast, simple, and the v1 on-disk format.
//! * [`RecordCodec::Succinct`] — ascending keys stored as LEB128 varint
//!   deltas plus LEB128 per-entry counts, with a sparse anchor every
//!   [`ANCHOR_BLOCK`] entries so point queries stay logarithmic.
//!
//! The codec changes *bytes, never counts*: every query (`total`,
//! `count_of`, `tree_total`, `select`, `select_in_tree`, iteration) returns
//! bit-identical answers under either codec, so sampling from a succinct
//! table is deterministic-equal to sampling from a plain one.
//!
//! ## The succinct stream
//!
//! Entries are grouped in blocks of [`ANCHOR_BLOCK`]. In the byte stream,
//! the first entry of a block stores its *absolute* key as a varint; every
//! other entry stores the strictly-positive delta from its predecessor.
//! Each key is followed by the entry's (non-cumulative) count as a varint.
//! For records spanning more than one block, three parallel anchor arrays —
//! first key, cumulative count before the block, and byte offset of the
//! block start — are kept decoded in memory. A query binary-searches the
//! anchors (`O(log(n/B))`) and then decodes at most one block (`O(B)`),
//! so nothing ever decompresses the whole record. Single-block records
//! carry no anchors at all: the block trivially starts at offset 0.
//!
//! The set of codecs is sealed: `RecordCodec` is a plain enum, every match
//! in the table/build/persist/store stack is exhaustive, and on-disk format
//! tags are assigned here and nowhere else.

use bytes::{Buf, BufMut};
use std::fmt;
use std::str::FromStr;

/// Largest value a packed colored-treelet key may take (48 significant
/// bits); decoded keys beyond this are rejected as corruption.
const MAX_KEY: u64 = 0xFFFF_FFFF_FFFF;

/// Entries per anchor block of the succinct encoding. 32 keeps the anchor
/// overhead under one byte per entry while bounding every point query to
/// one block decode.
pub const ANCHOR_BLOCK: usize = 32;

/// Which byte-level representation a record (and, uniformly, a whole count
/// table) uses. This is the closed, sealed set of codecs — the on-disk
/// format tag ([`RecordCodec::tag`]) is part of the `table.meta` v2 and
/// store-manifest formats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RecordCodec {
    /// Fixed-width layout: `u64` key plus `u128` cumulative count per
    /// entry (24 bytes/pair). The v1 format; the default.
    #[default]
    Plain,
    /// Varint key deltas + varint counts with sparse cumulative anchors
    /// every [`ANCHOR_BLOCK`] entries (typically 4–8 bytes/pair).
    Succinct,
}

impl RecordCodec {
    /// Every codec, in tag order.
    pub const ALL: [RecordCodec; 2] = [RecordCodec::Plain, RecordCodec::Succinct];

    /// Stable one-byte format tag used by `table.meta` v2 and the store
    /// manifest.
    pub fn tag(self) -> u8 {
        match self {
            RecordCodec::Plain => 0,
            RecordCodec::Succinct => 1,
        }
    }

    /// Inverse of [`RecordCodec::tag`].
    pub fn from_tag(tag: u8) -> Option<RecordCodec> {
        match tag {
            0 => Some(RecordCodec::Plain),
            1 => Some(RecordCodec::Succinct),
            _ => None,
        }
    }

    /// Lower-case name, as accepted by the CLI's `--codec` flag.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordCodec::Plain => "plain",
            RecordCodec::Succinct => "succinct",
        }
    }
}

impl fmt::Display for RecordCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for RecordCodec {
    type Err = String;

    fn from_str(s: &str) -> Result<RecordCodec, String> {
        match s {
            "plain" => Ok(RecordCodec::Plain),
            "succinct" => Ok(RecordCodec::Succinct),
            other => Err(format!("unknown codec `{other}` (plain|succinct)")),
        }
    }
}

// ---------------------------------------------------------------------------
// LEB128 varints
// ---------------------------------------------------------------------------

pub(crate) fn put_varint_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_varint_u128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn read_varint_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        let chunk = (b & 0x7F) as u64;
        if shift >= 64 || (chunk << shift) >> shift != chunk {
            return None; // overflow: more than 64 significant bits
        }
        v |= chunk << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

pub(crate) fn read_varint_u128(data: &[u8], pos: &mut usize) -> Option<u128> {
    let mut v = 0u128;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        let chunk = (b & 0x7F) as u128;
        if shift >= 128 || (chunk << shift) >> shift != chunk {
            return None;
        }
        v |= chunk << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Reads one varint from a stream that already passed
/// [`SuccinctRepr::parse`]. The overwhelmingly common one-byte encoding
/// (values `< 128`) is decoded inline; longer encodings fall back to the
/// full loop from the unadvanced position.
#[inline(always)]
fn read_varint_u64_trusted(data: &[u8], pos: &mut usize) -> u64 {
    let b = data[*pos];
    if b < 0x80 {
        *pos += 1;
        return b as u64;
    }
    read_varint_u64(data, pos).expect("invariant: validated stream")
}

/// `u128` twin of [`read_varint_u64_trusted`].
#[inline(always)]
fn read_varint_u128_trusted(data: &[u8], pos: &mut usize) -> u128 {
    let b = data[*pos];
    if b < 0x80 {
        *pos += 1;
        return b as u128;
    }
    read_varint_u128(data, pos).expect("invariant: validated stream")
}

// ---------------------------------------------------------------------------
// The succinct representation
// ---------------------------------------------------------------------------

/// One anchor block, fully materialized: absolute keys (deltas already
/// prefix-summed) and per-entry counts, decoded in a single pass. All
/// point queries and iteration work over these flat arrays instead of
/// chasing a per-entry varint call chain.
#[derive(Clone, Debug)]
pub(crate) struct DecodedBlock {
    /// Absolute keys of the block's entries (`[..len]` valid).
    keys: [u64; ANCHOR_BLOCK],
    /// Per-entry (non-cumulative) counts (`[..len]` valid).
    counts: [u128; ANCHOR_BLOCK],
    /// Global index of the block's first entry.
    first_idx: usize,
    /// Decoded entries (a full `ANCHOR_BLOCK` except for the last block).
    len: usize,
    /// Byte offset one past the block — where the next block starts.
    end_pos: usize,
}

impl DecodedBlock {
    fn new() -> DecodedBlock {
        DecodedBlock {
            keys: [0; ANCHOR_BLOCK],
            counts: [0; ANCHOR_BLOCK],
            first_idx: 0,
            len: 0,
            end_pos: 0,
        }
    }
}

/// A sealed, immutable record in the succinct encoding. Constructed either
/// from sorted pairs ([`SuccinctRepr::from_sorted`]) or by validating a
/// decoded stream ([`SuccinctRepr::parse`]); all query methods assume the
/// stream invariants and are panic-free on any value that passed one of
/// those constructors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct SuccinctRepr {
    len: u32,
    total: u128,
    /// First key of each block; empty for records of at most one block.
    anchor_keys: Vec<u64>,
    /// Cumulative count before each block.
    anchor_cumul: Vec<u128>,
    /// Byte offset of each block start in `data`.
    anchor_offs: Vec<u32>,
    data: Vec<u8>,
}

impl SuccinctRepr {
    /// Builds from strictly-ascending `(key, count)` pairs with nonzero
    /// counts (the post-`from_counts` invariant).
    pub fn from_sorted(pairs: &[(u64, u128)]) -> SuccinctRepr {
        let nblocks = pairs.len().div_ceil(ANCHOR_BLOCK);
        let anchored = nblocks > 1;
        let mut repr = SuccinctRepr {
            len: pairs.len() as u32,
            ..SuccinctRepr::default()
        };
        if anchored {
            repr.anchor_keys.reserve(nblocks);
            repr.anchor_cumul.reserve(nblocks);
            repr.anchor_offs.reserve(nblocks);
        }
        let mut prev = 0u64;
        for (i, &(key, count)) in pairs.iter().enumerate() {
            debug_assert!(i == 0 || key > prev, "keys must be strictly ascending");
            debug_assert!(count > 0, "zero counts must be dropped before freezing");
            debug_assert!(key <= MAX_KEY, "key exceeds the 48-bit packing");
            if i.is_multiple_of(ANCHOR_BLOCK) {
                if anchored {
                    repr.anchor_keys.push(key);
                    repr.anchor_cumul.push(repr.total);
                    repr.anchor_offs.push(repr.data.len() as u32);
                }
                put_varint_u64(&mut repr.data, key);
            } else {
                put_varint_u64(&mut repr.data, key - prev);
            }
            put_varint_u128(&mut repr.data, count);
            repr.total = repr
                .total
                .checked_add(count)
                .expect("record total overflows u128");
            prev = key;
        }
        repr
    }

    /// Validates a stream of `len` entries and rebuilds the anchors.
    /// Rejects truncated or trailing bytes, zero deltas/counts, overflow,
    /// and keys beyond the 48-bit packing.
    pub fn parse(len: u32, data: Vec<u8>) -> Option<SuccinctRepr> {
        let n = len as usize;
        let nblocks = n.div_ceil(ANCHOR_BLOCK);
        let anchored = nblocks > 1;
        let mut anchor_keys = Vec::new();
        let mut anchor_cumul = Vec::new();
        let mut anchor_offs = Vec::new();
        let mut pos = 0usize;
        let mut total = 0u128;
        let mut prev = 0u64;
        for i in 0..n {
            let block_start = i.is_multiple_of(ANCHOR_BLOCK);
            if block_start && anchored {
                anchor_cumul.push(total);
                anchor_offs.push(u32::try_from(pos).ok()?);
            }
            let key = if block_start {
                let key = read_varint_u64(&data, &mut pos)?;
                if i > 0 && key <= prev {
                    return None;
                }
                key
            } else {
                let delta = read_varint_u64(&data, &mut pos)?;
                if delta == 0 {
                    return None;
                }
                prev.checked_add(delta)?
            };
            if key > MAX_KEY {
                return None;
            }
            if block_start && anchored {
                anchor_keys.push(key);
            }
            let count = read_varint_u128(&data, &mut pos)?;
            if count == 0 {
                return None;
            }
            total = total.checked_add(count)?;
            prev = key;
        }
        if pos != data.len() {
            return None; // trailing garbage
        }
        Some(SuccinctRepr {
            len,
            total,
            anchor_keys,
            anchor_cumul,
            anchor_offs,
            data,
        })
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Heap bytes of the representation: stream plus anchor arrays.
    pub fn byte_size(&self) -> usize {
        self.data.len()
            + self.anchor_keys.len() * 8
            + self.anchor_cumul.len() * 16
            + self.anchor_offs.len() * 4
    }

    /// The raw stream (appended verbatim by the encoder).
    pub fn stream(&self) -> &[u8] {
        &self.data
    }

    /// Decodes the block whose first entry is `first_idx` (stream offset
    /// `pos`) into `out`, materializing absolute keys and counts in one
    /// pass — the deltas are prefix-summed here, so no caller ever walks
    /// a per-entry `read_varint` chain again.
    fn decode_block_into(&self, first_idx: usize, pos: usize, out: &mut DecodedBlock) {
        let n = (self.len() - first_idx).min(ANCHOR_BLOCK);
        let data = &self.data[..];
        let mut p = pos;
        let mut prev = 0u64;
        for j in 0..n {
            let d = read_varint_u64_trusted(data, &mut p);
            // The block's first entry stores an absolute key; the rest
            // store deltas. `prev` is 0 at j == 0, so the sum is uniform.
            let key = prev + d;
            out.keys[j] = key;
            out.counts[j] = read_varint_u128_trusted(data, &mut p);
            prev = key;
        }
        out.first_idx = first_idx;
        out.len = n;
        out.end_pos = p;
    }

    /// Start `(first_idx, stream offset)` of the last block whose first
    /// key is `<= x` (block 0 when every anchor key exceeds `x`, or when
    /// unanchored).
    fn block_start_by_key(&self, x: u64) -> (usize, usize) {
        if self.anchor_keys.is_empty() {
            return (0, 0);
        }
        let b = self
            .anchor_keys
            .partition_point(|&k| k <= x)
            .saturating_sub(1);
        (b * ANCHOR_BLOCK, self.anchor_offs[b] as usize)
    }

    /// Index of the first entry with key `>= x` (or `len` when every key
    /// is smaller), paired with the cumulative count of entries before it.
    pub fn index_of_key_ge(&self, x: u64) -> (usize, u128) {
        if self.len == 0 {
            return (0, 0);
        }
        let (first_idx, pos) = self.block_start_by_key(x);
        let cum_before = if self.anchor_cumul.is_empty() {
            0
        } else {
            self.anchor_cumul[first_idx / ANCHOR_BLOCK]
        };
        let mut block = DecodedBlock::new();
        self.decode_block_into(first_idx, pos, &mut block);
        let j = block.keys[..block.len].partition_point(|&k| k < x);
        let cum = cum_before + block.counts[..j].iter().sum::<u128>();
        (first_idx + j, cum)
    }

    /// The count stored under `x`, or 0.
    pub fn count_of(&self, x: u64) -> u128 {
        if self.len == 0 {
            return 0;
        }
        let (first_idx, pos) = self.block_start_by_key(x);
        let mut block = DecodedBlock::new();
        self.decode_block_into(first_idx, pos, &mut block);
        match block.keys[..block.len].binary_search(&x) {
            Ok(j) => block.counts[j],
            Err(_) => 0,
        }
    }

    /// The key whose cumulative range contains `r`, for `r ∈ 1..=total`.
    pub fn select(&self, r: u128) -> u64 {
        debug_assert!(r >= 1 && r <= self.total);
        let (mut first_idx, mut pos, mut cum) = if self.anchor_cumul.is_empty() {
            (0, 0, 0u128)
        } else {
            // `anchor_cumul[0] == 0 < r`, so the partition point is >= 1.
            let b = self.anchor_cumul.partition_point(|&c| c < r) - 1;
            (
                b * ANCHOR_BLOCK,
                self.anchor_offs[b] as usize,
                self.anchor_cumul[b],
            )
        };
        let mut block = DecodedBlock::new();
        loop {
            self.decode_block_into(first_idx, pos, &mut block);
            for j in 0..block.len {
                cum += block.counts[j];
                if cum >= r {
                    return block.keys[j];
                }
            }
            first_idx += ANCHOR_BLOCK;
            pos = block.end_pos;
        }
    }

    /// Iterates `(key, count)` for entries `start_idx..end_idx`.
    pub fn iter_from(&self, start_idx: usize, end_idx: usize) -> SuccinctIter<'_> {
        let end = end_idx.min(self.len());
        let mut it = SuccinctIter {
            repr: self,
            block: DecodedBlock::new(),
            j: 0,
            idx: start_idx,
            end,
        };
        if start_idx < end {
            let b = start_idx / ANCHOR_BLOCK;
            let pos = if self.anchor_offs.is_empty() {
                0
            } else {
                self.anchor_offs[b] as usize
            };
            self.decode_block_into(b * ANCHOR_BLOCK, pos, &mut it.block);
            it.j = start_idx - b * ANCHOR_BLOCK;
        }
        it
    }

    /// Iterates every `(key, count)` in key order.
    pub fn iter(&self) -> SuccinctIter<'_> {
        self.iter_from(0, self.len())
    }
}

/// Streaming decoder over a slice of a succinct record: holds one
/// materialized [`DecodedBlock`] and refills it block-at-a-time as the
/// walk crosses an anchor boundary.
pub(crate) struct SuccinctIter<'a> {
    repr: &'a SuccinctRepr,
    block: DecodedBlock,
    /// In-block offset of the next entry to yield.
    j: usize,
    /// Global index of the next entry.
    idx: usize,
    end: usize,
}

impl Iterator for SuccinctIter<'_> {
    type Item = (u64, u128);

    #[inline]
    fn next(&mut self) -> Option<(u64, u128)> {
        if self.idx >= self.end {
            return None;
        }
        if self.j >= self.block.len {
            // A short block is always the record's last, so running past
            // one implies `idx >= end` above — refills only see full
            // blocks behind them.
            let first = self.block.first_idx + ANCHOR_BLOCK;
            let pos = self.block.end_pos;
            self.repr.decode_block_into(first, pos, &mut self.block);
            self.j = 0;
        }
        let out = (self.block.keys[self.j], self.block.counts[self.j]);
        self.j += 1;
        self.idx += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end.saturating_sub(self.idx);
        (n, Some(n))
    }
}

impl ExactSizeIterator for SuccinctIter<'_> {}

/// Writes a succinct record's serialized form: `len: u32 LE | stream`.
pub(crate) fn encode_succinct<B: BufMut>(repr: &SuccinctRepr, buf: &mut B) {
    buf.put_u32_le(repr.len() as u32);
    buf.put_slice(repr.stream());
}

/// Reads a record serialized by [`encode_succinct`]. The stream is
/// externally length-delimited (the level index frames each record), so
/// everything remaining in `buf` must belong to this record.
pub(crate) fn decode_succinct<B: Buf>(buf: &mut B) -> Option<SuccinctRepr> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le();
    let mut data = vec![0u8; buf.remaining()];
    buf.copy_to_slice(&mut data);
    SuccinctRepr::parse(len, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for v in [0u128, 1, 127, 128, u64::MAX as u128 + 1, u128::MAX] {
            let mut buf = Vec::new();
            put_varint_u128(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint_u128(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes overflow a u64.
        let over = vec![0xFF; 10];
        let mut pos = 0;
        assert_eq!(read_varint_u64(&over, &mut pos), None);
        let mut pos = 0;
        assert_eq!(read_varint_u64(&[0x80, 0x80], &mut pos), None); // truncated
    }

    fn pairs(n: u64) -> Vec<(u64, u128)> {
        // Irregular gaps and counts, enough entries to span several blocks.
        (0..n)
            .map(|i| (i * i + 3 * i + 1, (i % 7 + 1) as u128 * (1 + i as u128)))
            .collect()
    }

    #[test]
    fn anchors_only_for_multi_block_records() {
        let small = SuccinctRepr::from_sorted(&pairs(ANCHOR_BLOCK as u64));
        assert!(small.anchor_keys.is_empty());
        let big = SuccinctRepr::from_sorted(&pairs(ANCHOR_BLOCK as u64 + 1));
        assert_eq!(big.anchor_keys.len(), 2);
    }

    #[test]
    fn queries_match_reference_across_blocks() {
        for n in [0u64, 1, 2, 31, 32, 33, 100, 257] {
            let ps = pairs(n);
            let repr = SuccinctRepr::from_sorted(&ps);
            let total: u128 = ps.iter().map(|&(_, c)| c).sum();
            assert_eq!(repr.total(), total, "n={n}");
            assert_eq!(repr.len(), ps.len());
            assert_eq!(repr.iter().collect::<Vec<_>>(), ps, "n={n}");
            // Point lookups, hits and misses.
            for &(k, c) in &ps {
                assert_eq!(repr.count_of(k), c);
                assert_eq!(repr.count_of(k + 1), 0, "gap after {k}");
            }
            assert_eq!(repr.count_of(0), 0);
            // Selection partitions 1..=total exactly like the counts.
            let mut cum = 0u128;
            for &(k, c) in &ps {
                assert_eq!(repr.select(cum + 1), k);
                assert_eq!(repr.select(cum + c), k);
                cum += c;
            }
            // index_of_key_ge: index and cumulative-before for every boundary.
            let mut cum = 0u128;
            for (i, &(k, c)) in ps.iter().enumerate() {
                assert_eq!(repr.index_of_key_ge(k), (i, cum), "key {k}");
                assert_eq!(repr.index_of_key_ge(k + 1), (i + 1, cum + c));
                cum += c;
            }
            // Sliced iteration stays consistent with the full walk for
            // every in-block and anchor-boundary start.
            for lo in 0..ps.len() {
                let got: Vec<_> = repr.iter_from(lo, ps.len()).collect();
                assert_eq!(got, ps[lo..], "n={n} lo={lo}");
            }
        }
    }

    /// Decodes a validated stream entry-by-entry with the raw varint
    /// readers — the pre-batching reference the block decoder must match.
    fn per_entry_reference(len: usize, data: &[u8]) -> Vec<(u64, u128)> {
        let mut out = Vec::with_capacity(len);
        let mut pos = 0;
        let mut prev = 0u64;
        for i in 0..len {
            let v = read_varint_u64(data, &mut pos).expect("validated stream");
            let key = if i.is_multiple_of(ANCHOR_BLOCK) {
                v
            } else {
                prev + v
            };
            let count = read_varint_u128(data, &mut pos).expect("validated stream");
            out.push((key, count));
            prev = key;
        }
        assert_eq!(pos, data.len());
        out
    }

    /// Validates a stream exactly as the format spec dictates, using only
    /// the per-entry varint readers — an independent twin of `parse` for
    /// corruption-rejection parity checks.
    fn per_entry_validate(len: usize, data: &[u8]) -> bool {
        let mut pos = 0;
        let mut total = 0u128;
        let mut prev = 0u64;
        for i in 0..len {
            let key = if i.is_multiple_of(ANCHOR_BLOCK) {
                match read_varint_u64(data, &mut pos) {
                    Some(k) if i == 0 || k > prev => k,
                    _ => return false,
                }
            } else {
                match read_varint_u64(data, &mut pos) {
                    Some(d) if d > 0 => match prev.checked_add(d) {
                        Some(k) => k,
                        None => return false,
                    },
                    _ => return false,
                }
            };
            if key > MAX_KEY {
                return false;
            }
            match read_varint_u128(data, &mut pos) {
                Some(c) if c > 0 => match total.checked_add(c) {
                    Some(t) => total = t,
                    None => return false,
                },
                _ => return false,
            }
            prev = key;
        }
        pos == data.len()
    }

    mod batched_decoder_props {
        use super::*;
        use proptest::prelude::*;

        /// Strictly-ascending `(key, count)` pairs whose length sweeps
        /// single-block, exact-boundary, and multi-block records.
        fn pairs_strategy() -> impl Strategy<Value = Vec<(u64, u128)>> {
            let len = (0usize..6).prop_flat_map(|sel| match sel {
                0 => (0usize..3).boxed(),
                1 => Just(ANCHOR_BLOCK - 1).boxed(),
                2 => Just(ANCHOR_BLOCK).boxed(),
                3 => Just(ANCHOR_BLOCK + 1).boxed(),
                4 => Just(2 * ANCHOR_BLOCK).boxed(),
                _ => (3usize..5 * ANCHOR_BLOCK).boxed(),
            });
            // Counts mix the one-byte varint fast path (tiny values) with
            // multi-chunk encodings (beyond u64).
            len.prop_flat_map(|n| {
                (
                    proptest::collection::vec(1u64..2000, n),
                    proptest::collection::vec(
                        (any::<bool>(), 1u128..200, (1u128 << 70)..(1u128 << 90))
                            .prop_map(|(big, small, huge)| if big { huge } else { small }),
                        n,
                    ),
                )
            })
            .prop_map(|(gaps, counts)| {
                let mut key = 0u64;
                gaps.into_iter()
                    .zip(counts)
                    .map(|(gap, c)| {
                        key += gap;
                        (key, c)
                    })
                    .collect()
            })
        }

        proptest! {
            /// The batched block decoder yields exactly the sequence the
            /// per-entry varint walk produces, from every start index.
            #[test]
            fn batched_decode_matches_per_entry_walk(ps in pairs_strategy()) {
                let repr = SuccinctRepr::from_sorted(&ps);
                let reference = per_entry_reference(ps.len(), &repr.data);
                prop_assert_eq!(&reference, &ps);
                let batched: Vec<_> = repr.iter().collect();
                prop_assert_eq!(&batched, &reference);
                // Anchor-boundary and mid-block starts agree too.
                for lo in [0, 1, ANCHOR_BLOCK - 1, ANCHOR_BLOCK, ANCHOR_BLOCK + 1] {
                    let lo = lo.min(ps.len());
                    let got: Vec<_> = repr.iter_from(lo, ps.len()).collect();
                    prop_assert_eq!(&got[..], &reference[lo..]);
                }
            }

            /// Point queries over the batched decoder agree with naive
            /// scans of the reference sequence.
            #[test]
            fn batched_queries_match_reference(ps in pairs_strategy()) {
                let repr = SuccinctRepr::from_sorted(&ps);
                let keys: std::collections::BTreeSet<u64> =
                    ps.iter().map(|&(k, _)| k).collect();
                let mut cum = 0u128;
                for (i, &(k, c)) in ps.iter().enumerate() {
                    prop_assert_eq!(repr.count_of(k), c);
                    if !keys.contains(&(k + 1)) {
                        prop_assert_eq!(repr.count_of(k + 1), 0);
                    }
                    prop_assert_eq!(repr.index_of_key_ge(k), (i, cum));
                    prop_assert_eq!(repr.select(cum + 1), k);
                    cum += c;
                    prop_assert_eq!(repr.select(cum), k);
                }
            }

            /// Truncations and random byte corruptions are rejected (or
            /// accepted, with identical content) by `parse` exactly when
            /// the per-entry reference validator says so.
            #[test]
            fn corruption_rejection_matches_per_entry_validator(
                ps in pairs_strategy(),
                cut_pmil in 0u64..=1000,
                do_poke in any::<bool>(),
                at in 0usize..4096,
                byte in 0u8..=255,
            ) {
                let repr = SuccinctRepr::from_sorted(&ps);
                let mut data = repr.data.clone();
                let cut = (data.len() as u64 * cut_pmil / 1000) as usize;
                data.truncate(cut);
                if do_poke && !data.is_empty() {
                    let at = at % data.len();
                    data[at] = byte;
                }
                let reference_ok = per_entry_validate(ps.len(), &data);
                let parsed = SuccinctRepr::parse(ps.len() as u32, data.clone());
                prop_assert_eq!(parsed.is_some(), reference_ok);
                if let Some(p) = parsed {
                    let batched: Vec<_> = p.iter().collect();
                    prop_assert_eq!(batched, per_entry_reference(ps.len(), &data));
                }
            }
        }
    }

    #[test]
    fn parse_rejects_corruption() {
        let repr = SuccinctRepr::from_sorted(&pairs(80));
        let mut buf = Vec::new();
        encode_succinct(&repr, &mut buf);
        assert_eq!(decode_succinct(&mut &buf[..]).as_ref(), Some(&repr));
        // Every truncation fails.
        for cut in 0..buf.len() {
            assert!(
                decode_succinct(&mut &buf[..cut]).is_none(),
                "cut at {cut} accepted"
            );
        }
        // Trailing garbage fails.
        let mut long = buf.clone();
        long.push(0);
        assert!(decode_succinct(&mut &long[..]).is_none());
        // A zero delta (duplicate key) fails: entry 1 starts right after the
        // first absolute key + count; force its delta byte to 0.
        let mut dup = buf.clone();
        let mut pos = 0;
        read_varint_u64(&repr.data, &mut pos).unwrap();
        read_varint_u128(&repr.data, &mut pos).unwrap();
        dup[4 + pos] = 0;
        assert!(decode_succinct(&mut &dup[..]).is_none());
    }
}
