//! Pluggable record codecs — the paper's succinct count-table encoding.
//!
//! Motivo's headline memory win (§3.1 and the extended version's "succinct
//! color coding") comes from *not* storing each record entry as a fixed
//! `(u64 key, u128 cumulative count)` pair. Keys within a record are sorted,
//! so consecutive keys are close and their differences fit in a byte or two;
//! per-entry counts are mostly tiny. [`RecordCodec`] names the two
//! representations a [`crate::Record`] can take:
//!
//! * [`RecordCodec::Plain`] — the original fixed-width layout (176 bits per
//!   pair). Fast, simple, and the v1 on-disk format.
//! * [`RecordCodec::Succinct`] — ascending keys stored as LEB128 varint
//!   deltas plus LEB128 per-entry counts, with a sparse anchor every
//!   [`ANCHOR_BLOCK`] entries so point queries stay logarithmic.
//!
//! The codec changes *bytes, never counts*: every query (`total`,
//! `count_of`, `tree_total`, `select`, `select_in_tree`, iteration) returns
//! bit-identical answers under either codec, so sampling from a succinct
//! table is deterministic-equal to sampling from a plain one.
//!
//! ## The succinct stream
//!
//! Entries are grouped in blocks of [`ANCHOR_BLOCK`]. In the byte stream,
//! the first entry of a block stores its *absolute* key as a varint; every
//! other entry stores the strictly-positive delta from its predecessor.
//! Each key is followed by the entry's (non-cumulative) count as a varint.
//! For records spanning more than one block, three parallel anchor arrays —
//! first key, cumulative count before the block, and byte offset of the
//! block start — are kept decoded in memory. A query binary-searches the
//! anchors (`O(log(n/B))`) and then decodes at most one block (`O(B)`),
//! so nothing ever decompresses the whole record. Single-block records
//! carry no anchors at all: the block trivially starts at offset 0.
//!
//! The set of codecs is sealed: `RecordCodec` is a plain enum, every match
//! in the table/build/persist/store stack is exhaustive, and on-disk format
//! tags are assigned here and nowhere else.

use bytes::{Buf, BufMut};
use std::fmt;
use std::str::FromStr;

/// Largest value a packed colored-treelet key may take (48 significant
/// bits); decoded keys beyond this are rejected as corruption.
const MAX_KEY: u64 = 0xFFFF_FFFF_FFFF;

/// Entries per anchor block of the succinct encoding. 32 keeps the anchor
/// overhead under one byte per entry while bounding every point query to
/// one block decode.
pub const ANCHOR_BLOCK: usize = 32;

/// Which byte-level representation a record (and, uniformly, a whole count
/// table) uses. This is the closed, sealed set of codecs — the on-disk
/// format tag ([`RecordCodec::tag`]) is part of the `table.meta` v2 and
/// store-manifest formats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RecordCodec {
    /// Fixed-width layout: `u64` key plus `u128` cumulative count per
    /// entry (24 bytes/pair). The v1 format; the default.
    #[default]
    Plain,
    /// Varint key deltas + varint counts with sparse cumulative anchors
    /// every [`ANCHOR_BLOCK`] entries (typically 4–8 bytes/pair).
    Succinct,
}

impl RecordCodec {
    /// Every codec, in tag order.
    pub const ALL: [RecordCodec; 2] = [RecordCodec::Plain, RecordCodec::Succinct];

    /// Stable one-byte format tag used by `table.meta` v2 and the store
    /// manifest.
    pub fn tag(self) -> u8 {
        match self {
            RecordCodec::Plain => 0,
            RecordCodec::Succinct => 1,
        }
    }

    /// Inverse of [`RecordCodec::tag`].
    pub fn from_tag(tag: u8) -> Option<RecordCodec> {
        match tag {
            0 => Some(RecordCodec::Plain),
            1 => Some(RecordCodec::Succinct),
            _ => None,
        }
    }

    /// Lower-case name, as accepted by the CLI's `--codec` flag.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordCodec::Plain => "plain",
            RecordCodec::Succinct => "succinct",
        }
    }
}

impl fmt::Display for RecordCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for RecordCodec {
    type Err = String;

    fn from_str(s: &str) -> Result<RecordCodec, String> {
        match s {
            "plain" => Ok(RecordCodec::Plain),
            "succinct" => Ok(RecordCodec::Succinct),
            other => Err(format!("unknown codec `{other}` (plain|succinct)")),
        }
    }
}

// ---------------------------------------------------------------------------
// LEB128 varints
// ---------------------------------------------------------------------------

pub(crate) fn put_varint_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_varint_u128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn read_varint_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        let chunk = (b & 0x7F) as u64;
        if shift >= 64 || (chunk << shift) >> shift != chunk {
            return None; // overflow: more than 64 significant bits
        }
        v |= chunk << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

pub(crate) fn read_varint_u128(data: &[u8], pos: &mut usize) -> Option<u128> {
    let mut v = 0u128;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        let chunk = (b & 0x7F) as u128;
        if shift >= 128 || (chunk << shift) >> shift != chunk {
            return None;
        }
        v |= chunk << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// The succinct representation
// ---------------------------------------------------------------------------

/// Decode position within a succinct stream: everything needed to read
/// entry `idx` and the cumulative count of all entries before it.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Cursor {
    /// Entry index the cursor is about to read.
    pub idx: usize,
    /// Byte offset in the stream.
    pub pos: usize,
    /// Cumulative count of entries `0..idx`.
    pub cum: u128,
    /// Key of entry `idx - 1` (unused when `idx` starts a block).
    pub prev: u64,
}

/// A sealed, immutable record in the succinct encoding. Constructed either
/// from sorted pairs ([`SuccinctRepr::from_sorted`]) or by validating a
/// decoded stream ([`SuccinctRepr::parse`]); all query methods assume the
/// stream invariants and are panic-free on any value that passed one of
/// those constructors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct SuccinctRepr {
    len: u32,
    total: u128,
    /// First key of each block; empty for records of at most one block.
    anchor_keys: Vec<u64>,
    /// Cumulative count before each block.
    anchor_cumul: Vec<u128>,
    /// Byte offset of each block start in `data`.
    anchor_offs: Vec<u32>,
    data: Vec<u8>,
}

impl SuccinctRepr {
    /// Builds from strictly-ascending `(key, count)` pairs with nonzero
    /// counts (the post-`from_counts` invariant).
    pub fn from_sorted(pairs: &[(u64, u128)]) -> SuccinctRepr {
        let nblocks = pairs.len().div_ceil(ANCHOR_BLOCK);
        let anchored = nblocks > 1;
        let mut repr = SuccinctRepr {
            len: pairs.len() as u32,
            ..SuccinctRepr::default()
        };
        if anchored {
            repr.anchor_keys.reserve(nblocks);
            repr.anchor_cumul.reserve(nblocks);
            repr.anchor_offs.reserve(nblocks);
        }
        let mut prev = 0u64;
        for (i, &(key, count)) in pairs.iter().enumerate() {
            debug_assert!(i == 0 || key > prev, "keys must be strictly ascending");
            debug_assert!(count > 0, "zero counts must be dropped before freezing");
            debug_assert!(key <= MAX_KEY, "key exceeds the 48-bit packing");
            if i.is_multiple_of(ANCHOR_BLOCK) {
                if anchored {
                    repr.anchor_keys.push(key);
                    repr.anchor_cumul.push(repr.total);
                    repr.anchor_offs.push(repr.data.len() as u32);
                }
                put_varint_u64(&mut repr.data, key);
            } else {
                put_varint_u64(&mut repr.data, key - prev);
            }
            put_varint_u128(&mut repr.data, count);
            repr.total = repr
                .total
                .checked_add(count)
                .expect("record total overflows u128");
            prev = key;
        }
        repr
    }

    /// Validates a stream of `len` entries and rebuilds the anchors.
    /// Rejects truncated or trailing bytes, zero deltas/counts, overflow,
    /// and keys beyond the 48-bit packing.
    pub fn parse(len: u32, data: Vec<u8>) -> Option<SuccinctRepr> {
        let n = len as usize;
        let nblocks = n.div_ceil(ANCHOR_BLOCK);
        let anchored = nblocks > 1;
        let mut anchor_keys = Vec::new();
        let mut anchor_cumul = Vec::new();
        let mut anchor_offs = Vec::new();
        let mut pos = 0usize;
        let mut total = 0u128;
        let mut prev = 0u64;
        for i in 0..n {
            let block_start = i.is_multiple_of(ANCHOR_BLOCK);
            if block_start && anchored {
                anchor_cumul.push(total);
                anchor_offs.push(u32::try_from(pos).ok()?);
            }
            let key = if block_start {
                let key = read_varint_u64(&data, &mut pos)?;
                if i > 0 && key <= prev {
                    return None;
                }
                key
            } else {
                let delta = read_varint_u64(&data, &mut pos)?;
                if delta == 0 {
                    return None;
                }
                prev.checked_add(delta)?
            };
            if key > MAX_KEY {
                return None;
            }
            if block_start && anchored {
                anchor_keys.push(key);
            }
            let count = read_varint_u128(&data, &mut pos)?;
            if count == 0 {
                return None;
            }
            total = total.checked_add(count)?;
            prev = key;
        }
        if pos != data.len() {
            return None; // trailing garbage
        }
        Some(SuccinctRepr {
            len,
            total,
            anchor_keys,
            anchor_cumul,
            anchor_offs,
            data,
        })
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Heap bytes of the representation: stream plus anchor arrays.
    pub fn byte_size(&self) -> usize {
        self.data.len()
            + self.anchor_keys.len() * 8
            + self.anchor_cumul.len() * 16
            + self.anchor_offs.len() * 4
    }

    /// The raw stream (appended verbatim by the encoder).
    pub fn stream(&self) -> &[u8] {
        &self.data
    }

    /// Reads the entry under `cur` and advances it.
    #[inline]
    fn entry_at(&self, cur: &mut Cursor) -> (u64, u128) {
        let valid = "invariant: validated stream";
        let key = if cur.idx.is_multiple_of(ANCHOR_BLOCK) {
            read_varint_u64(&self.data, &mut cur.pos).expect(valid)
        } else {
            cur.prev + read_varint_u64(&self.data, &mut cur.pos).expect(valid)
        };
        let count = read_varint_u128(&self.data, &mut cur.pos).expect(valid);
        cur.idx += 1;
        cur.cum += count;
        cur.prev = key;
        (key, count)
    }

    /// Cursor at the start of the last block whose first key is `<= x`
    /// (block 0 when every anchor key exceeds `x`, or when unanchored).
    fn block_start_by_key(&self, x: u64) -> Cursor {
        if self.anchor_keys.is_empty() {
            return Cursor::default();
        }
        let b = self
            .anchor_keys
            .partition_point(|&k| k <= x)
            .saturating_sub(1);
        Cursor {
            idx: b * ANCHOR_BLOCK,
            pos: self.anchor_offs[b] as usize,
            cum: self.anchor_cumul[b],
            prev: 0,
        }
    }

    /// Entry index one past the cursor's block (capped at `len`).
    #[inline]
    fn block_end(&self, cur: &Cursor) -> usize {
        ((cur.idx / ANCHOR_BLOCK + 1) * ANCHOR_BLOCK).min(self.len())
    }

    /// Cursor positioned at the first entry with key `>= x` (or at `len`
    /// when every key is smaller); `cum` is the count of entries before it.
    pub fn cursor_at_key(&self, x: u64) -> Cursor {
        if self.len == 0 {
            return Cursor::default();
        }
        let mut cur = self.block_start_by_key(x);
        let end = self.block_end(&cur);
        while cur.idx < end {
            let mut peek = cur;
            let (key, _) = self.entry_at(&mut peek);
            if key >= x {
                break;
            }
            cur = peek;
        }
        cur
    }

    /// The count stored under `x`, or 0.
    pub fn count_of(&self, x: u64) -> u128 {
        if self.len == 0 {
            return 0;
        }
        let mut cur = self.block_start_by_key(x);
        let end = self.block_end(&cur);
        while cur.idx < end {
            let (key, count) = self.entry_at(&mut cur);
            match key.cmp(&x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return count,
                std::cmp::Ordering::Greater => return 0,
            }
        }
        0
    }

    /// The key whose cumulative range contains `r`, for `r ∈ 1..=total`.
    pub fn select(&self, r: u128) -> u64 {
        debug_assert!(r >= 1 && r <= self.total);
        let mut cur = if self.anchor_cumul.is_empty() {
            Cursor::default()
        } else {
            // `anchor_cumul[0] == 0 < r`, so the partition point is >= 1.
            let b = self.anchor_cumul.partition_point(|&c| c < r) - 1;
            Cursor {
                idx: b * ANCHOR_BLOCK,
                pos: self.anchor_offs[b] as usize,
                cum: self.anchor_cumul[b],
                prev: 0,
            }
        };
        loop {
            let (key, _) = self.entry_at(&mut cur);
            if cur.cum >= r {
                return key;
            }
        }
    }

    /// Iterates `(key, count)` for entries `cur.idx..end_idx`.
    pub fn iter_from(&self, cur: Cursor, end_idx: usize) -> SuccinctIter<'_> {
        SuccinctIter {
            repr: self,
            cur,
            end: end_idx,
        }
    }

    /// Iterates every `(key, count)` in key order.
    pub fn iter(&self) -> SuccinctIter<'_> {
        self.iter_from(Cursor::default(), self.len())
    }
}

/// Streaming decoder over a slice of a succinct record.
pub(crate) struct SuccinctIter<'a> {
    repr: &'a SuccinctRepr,
    cur: Cursor,
    end: usize,
}

impl Iterator for SuccinctIter<'_> {
    type Item = (u64, u128);

    fn next(&mut self) -> Option<(u64, u128)> {
        if self.cur.idx >= self.end {
            return None;
        }
        Some(self.repr.entry_at(&mut self.cur))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.cur.idx;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SuccinctIter<'_> {}

/// Writes a succinct record's serialized form: `len: u32 LE | stream`.
pub(crate) fn encode_succinct<B: BufMut>(repr: &SuccinctRepr, buf: &mut B) {
    buf.put_u32_le(repr.len() as u32);
    buf.put_slice(repr.stream());
}

/// Reads a record serialized by [`encode_succinct`]. The stream is
/// externally length-delimited (the level index frames each record), so
/// everything remaining in `buf` must belong to this record.
pub(crate) fn decode_succinct<B: Buf>(buf: &mut B) -> Option<SuccinctRepr> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le();
    let mut data = vec![0u8; buf.remaining()];
    buf.copy_to_slice(&mut data);
    SuccinctRepr::parse(len, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for v in [0u128, 1, 127, 128, u64::MAX as u128 + 1, u128::MAX] {
            let mut buf = Vec::new();
            put_varint_u128(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint_u128(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes overflow a u64.
        let over = vec![0xFF; 10];
        let mut pos = 0;
        assert_eq!(read_varint_u64(&over, &mut pos), None);
        let mut pos = 0;
        assert_eq!(read_varint_u64(&[0x80, 0x80], &mut pos), None); // truncated
    }

    fn pairs(n: u64) -> Vec<(u64, u128)> {
        // Irregular gaps and counts, enough entries to span several blocks.
        (0..n)
            .map(|i| (i * i + 3 * i + 1, (i % 7 + 1) as u128 * (1 + i as u128)))
            .collect()
    }

    #[test]
    fn anchors_only_for_multi_block_records() {
        let small = SuccinctRepr::from_sorted(&pairs(ANCHOR_BLOCK as u64));
        assert!(small.anchor_keys.is_empty());
        let big = SuccinctRepr::from_sorted(&pairs(ANCHOR_BLOCK as u64 + 1));
        assert_eq!(big.anchor_keys.len(), 2);
    }

    #[test]
    fn queries_match_reference_across_blocks() {
        for n in [0u64, 1, 2, 31, 32, 33, 100, 257] {
            let ps = pairs(n);
            let repr = SuccinctRepr::from_sorted(&ps);
            let total: u128 = ps.iter().map(|&(_, c)| c).sum();
            assert_eq!(repr.total(), total, "n={n}");
            assert_eq!(repr.len(), ps.len());
            assert_eq!(repr.iter().collect::<Vec<_>>(), ps, "n={n}");
            // Point lookups, hits and misses.
            for &(k, c) in &ps {
                assert_eq!(repr.count_of(k), c);
                assert_eq!(repr.count_of(k + 1), 0, "gap after {k}");
            }
            assert_eq!(repr.count_of(0), 0);
            // Selection partitions 1..=total exactly like the counts.
            let mut cum = 0u128;
            for &(k, c) in &ps {
                assert_eq!(repr.select(cum + 1), k);
                assert_eq!(repr.select(cum + c), k);
                cum += c;
            }
            // cursor_at_key: index and cumulative-before for every boundary.
            let mut cum = 0u128;
            for (i, &(k, c)) in ps.iter().enumerate() {
                let cur = repr.cursor_at_key(k);
                assert_eq!((cur.idx, cur.cum), (i, cum), "key {k}");
                let cur = repr.cursor_at_key(k + 1);
                assert_eq!((cur.idx, cur.cum), (i + 1, cum + c));
                cum += c;
            }
        }
    }

    #[test]
    fn parse_rejects_corruption() {
        let repr = SuccinctRepr::from_sorted(&pairs(80));
        let mut buf = Vec::new();
        encode_succinct(&repr, &mut buf);
        assert_eq!(decode_succinct(&mut &buf[..]).as_ref(), Some(&repr));
        // Every truncation fails.
        for cut in 0..buf.len() {
            assert!(
                decode_succinct(&mut &buf[..cut]).is_none(),
                "cut at {cut} accepted"
            );
        }
        // Trailing garbage fails.
        let mut long = buf.clone();
        long.push(0);
        assert!(decode_succinct(&mut &long[..]).is_none());
        // A zero delta (duplicate key) fails: entry 1 starts right after the
        // first absolute key + count; force its delta byte to 0.
        let mut dup = buf.clone();
        let mut pos = 0;
        read_varint_u64(&repr.data, &mut pos).unwrap();
        read_varint_u128(&repr.data, &mut pos).unwrap();
        dup[4 + pos] = 0;
        assert!(decode_succinct(&mut &dup[..]).is_none());
    }
}
