//! The treelet count table — Motivo's central data structure (§3.1).
//!
//! For every vertex `v` and treelet size `h ∈ [k]`, the table holds the
//! record of `v`: the pairs `(s_{T_C}, c(T_C, v))` for every colored treelet
//! `(T, C)` on `h` nodes with nonzero count, sorted by the packed 48-bit key.
//! Instead of the raw counts, motivo stores the *cumulative* counts
//! `η(T_C, v) = Σ_{T'_{C'} ≤ T_C} c(T'_{C'}, v)`, so that
//!
//! * `occ(v)` — the total count — is the last entry, `O(1)`;
//! * `occ(T_C, v)` is a binary search plus one subtraction, `O(k)`;
//! * `sample(v)` — draw `T_C` with probability `c(T_C, v)/η_v` — is a
//!   uniform draw in `1..=η_v` plus one `partition_point`, `O(k)`;
//! * iteration is a linear scan with one subtraction per entry.
//!
//! Counts are 128-bit, as in the paper (64-bit counts overflow: a single
//! degree-2¹⁶ vertex roots ≈ 2⁸⁰ 6-stars).
//!
//! [`codec`] defines the sealed set of record representations
//! ([`RecordCodec`]): the fixed-width `Plain` layout above, and the
//! paper's `Succinct` layout — varint key deltas plus varint counts with
//! sparse cumulative anchors — which answers the same queries from a
//! fraction of the bytes. [`storage`] provides the backends: in-memory,
//! the on-disk "greedy flushing" layout where each completed record
//! leaves RAM immediately (§3.1), and [`block`] — sorted immutable ~16 KB
//! blocks built through a byte-budgeted memtable with spill-and-merge
//! ([`merge`]), bounding peak build memory for out-of-core builds.
//! [`alias`] implements Vose's alias method used to draw the root vertex
//! in `O(1)` (§3.3).

pub mod alias;
pub mod block;
pub mod builder;
pub mod codec;
pub mod merge;
pub mod record;
pub mod storage;

pub use alias::AliasTable;
pub use block::{BlockLevel, BlockWriter, BLOCK_TARGET_BYTES};
pub use builder::RecordBuilder;
pub use codec::RecordCodec;
pub use merge::{MergeIter, RunReader, RunWriter};
pub use record::Record;
pub use storage::{
    CountTable, DiskLevel, LevelProfile, LevelScan, LevelStore, MemoryLevel, RecordHandle,
    StorageKind,
};
