//! A single vertex's sorted count record with cumulative 128-bit counts.

use bytes::{Buf, BufMut};
use motivo_treelet::{ColorSet, ColoredTreelet, Treelet};

/// Sorted `(packed colored-treelet key, cumulative count)` pairs for one
/// vertex and one treelet size (§3.1, "Motivo's count table").
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Record {
    codes: Vec<u64>,
    cumul: Vec<u128>,
}

impl Record {
    /// Builds a record from raw `(key, count)` pairs (any order, keys
    /// unique, counts nonzero — zero counts are dropped).
    pub fn from_counts(mut pairs: Vec<(u64, u128)>) -> Record {
        pairs.retain(|&(_, c)| c > 0);
        pairs.sort_unstable_by_key(|&(code, _)| code);
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "duplicate keys");
        let mut codes = Vec::with_capacity(pairs.len());
        let mut cumul = Vec::with_capacity(pairs.len());
        let mut acc: u128 = 0;
        for (code, c) in pairs {
            acc = acc.checked_add(c).expect("record total overflows u128");
            codes.push(code);
            cumul.push(acc);
        }
        Record { codes, cumul }
    }

    /// Number of stored pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the record is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// `occ(v)`: total treelet count at this vertex — the last cumulative
    /// entry, `O(1)`.
    #[inline]
    pub fn total(&self) -> u128 {
        self.cumul.last().copied().unwrap_or(0)
    }

    /// `occ(T_C, v)`: the count of one colored treelet — binary search plus
    /// one subtraction.
    pub fn count_of(&self, ct: ColoredTreelet) -> u128 {
        match self.codes.binary_search(&ct.code()) {
            Ok(i) => self.cumul[i] - if i == 0 { 0 } else { self.cumul[i - 1] },
            Err(_) => 0,
        }
    }

    /// Iterates `(colored treelet, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (ColoredTreelet, u128)> + '_ {
        self.codes.iter().enumerate().map(move |(i, &code)| {
            let prev = if i == 0 { 0 } else { self.cumul[i - 1] };
            (
                ColoredTreelet::from_code(code).expect("invariant: valid key"),
                self.cumul[i] - prev,
            )
        })
    }

    /// `iter(T, v)`: the sub-range of entries with uncolored shape `T`
    /// (keys share the 32-bit tree prefix), as `(colors, count)` pairs.
    pub fn iter_tree(&self, tree: Treelet) -> impl Iterator<Item = (ColorSet, u128)> + '_ {
        let (lo, hi) = self.tree_range(tree);
        (lo..hi).map(move |i| {
            let prev = if i == 0 { 0 } else { self.cumul[i - 1] };
            (
                ColorSet((self.codes[i] & 0xFFFF) as u16),
                self.cumul[i] - prev,
            )
        })
    }

    /// `occ(T, v)`: total count over all colorings of shape `T` — two binary
    /// searches and one subtraction thanks to the cumulative layout.
    pub fn tree_total(&self, tree: Treelet) -> u128 {
        let (lo, hi) = self.tree_range(tree);
        if lo == hi {
            return 0;
        }
        let before = if lo == 0 { 0 } else { self.cumul[lo - 1] };
        self.cumul[hi - 1] - before
    }

    fn tree_range(&self, tree: Treelet) -> (usize, usize) {
        let lo = self
            .codes
            .partition_point(|&c| c < ColoredTreelet::range_start(tree));
        let hi = self
            .codes
            .partition_point(|&c| c <= ColoredTreelet::range_end(tree));
        (lo, hi)
    }

    /// `sample(v)`: the entry whose cumulative range contains `r`, for
    /// `r ∈ 1..=total()`. The caller draws `r` uniformly; the returned
    /// treelet then has probability `c(T_C, v)/η_v`.
    pub fn select(&self, r: u128) -> ColoredTreelet {
        debug_assert!(r >= 1 && r <= self.total());
        let i = self.cumul.partition_point(|&c| c < r);
        ColoredTreelet::from_code(self.codes[i]).expect("invariant: valid key")
    }

    /// Like [`Record::select`] but restricted to the entries of shape
    /// `tree`, with `r ∈ 1..=tree_total(tree)` — the per-shape urn of AGS.
    pub fn select_in_tree(&self, tree: Treelet, r: u128) -> ColoredTreelet {
        let (lo, hi) = self.tree_range(tree);
        debug_assert!(lo < hi);
        let before = if lo == 0 { 0 } else { self.cumul[lo - 1] };
        debug_assert!(r >= 1 && r <= self.cumul[hi - 1] - before);
        let i = lo + self.cumul[lo..hi].partition_point(|&c| c - before < r);
        ColoredTreelet::from_code(self.codes[i]).expect("invariant: valid key")
    }

    /// Bytes used by the in-memory representation (the paper's 176 bits per
    /// pair: 48-bit key stored in a u64 plus a 128-bit cumulative count).
    pub fn byte_size(&self) -> usize {
        self.codes.len() * (8 + 16)
    }

    /// Serialized length in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.codes.len() * (8 + 16)
    }

    /// Serializes as `len: u32 | codes: u64×len | cumul: u128×len` (LE).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32_le(self.codes.len() as u32);
        for &c in &self.codes {
            buf.put_u64_le(c);
        }
        for &c in &self.cumul {
            buf.put_u128_le(c);
        }
    }

    /// Deserializes a record written by [`Record::encode`].
    pub fn decode<B: Buf>(buf: &mut B) -> Option<Record> {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len * 24 {
            return None;
        }
        let mut codes = Vec::with_capacity(len);
        for _ in 0..len {
            codes.push(buf.get_u64_le());
        }
        let mut cumul = Vec::with_capacity(len);
        for _ in 0..len {
            cumul.push(buf.get_u128_le());
        }
        if !codes.windows(2).all(|w| w[0] < w[1]) || !cumul.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        Some(Record { codes, cumul })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_treelet::{path_treelet, star_treelet};

    fn ct(tree: Treelet, colors: u16) -> ColoredTreelet {
        ColoredTreelet::new(tree, ColorSet(colors))
    }

    fn sample_record() -> (Record, Vec<(ColoredTreelet, u128)>) {
        let s3 = star_treelet(3);
        let p3 = path_treelet(3);
        let pairs = vec![
            (ct(s3, 0b0111), 5u128),
            (ct(s3, 0b1011), 2),
            (ct(p3, 0b0111), 7),
            (ct(p3, 0b1110), 1),
        ];
        let rec = Record::from_counts(pairs.iter().map(|&(c, n)| (c.code(), n)).collect());
        (rec, pairs)
    }

    #[test]
    fn totals_and_counts() {
        let (rec, pairs) = sample_record();
        assert_eq!(rec.total(), 15);
        for (ct, n) in pairs {
            assert_eq!(rec.count_of(ct), n);
        }
        assert_eq!(rec.count_of(ct(star_treelet(3), 0b1101)), 0);
    }

    #[test]
    fn iteration_matches_counts() {
        let (rec, _) = sample_record();
        let total: u128 = rec.iter().map(|(_, c)| c).sum();
        assert_eq!(total, rec.total());
        assert_eq!(rec.iter().count(), 4);
    }

    #[test]
    fn per_tree_queries() {
        let (rec, _) = sample_record();
        let s3 = star_treelet(3);
        let p3 = path_treelet(3);
        assert_eq!(rec.tree_total(s3), 7);
        assert_eq!(rec.tree_total(p3), 8);
        assert_eq!(rec.tree_total(path_treelet(4)), 0);
        let colors: Vec<_> = rec.iter_tree(s3).collect();
        assert_eq!(colors, vec![(ColorSet(0b0111), 5), (ColorSet(0b1011), 2)]);
    }

    #[test]
    fn selection_covers_exact_ranges() {
        let (rec, _) = sample_record();
        // Counts in key order: star/0b0111 → 5, star/0b1011 → 2, path/0b0111 → 7, path/0b1110 → 1.
        let mut tally = std::collections::HashMap::new();
        for r in 1..=rec.total() {
            *tally.entry(rec.select(r).code()).or_insert(0u128) += 1;
        }
        for (ct, n) in rec.iter() {
            assert_eq!(tally[&ct.code()], n);
        }
    }

    #[test]
    fn selection_within_tree() {
        let (rec, _) = sample_record();
        let p3 = path_treelet(3);
        let mut tally = std::collections::HashMap::new();
        for r in 1..=rec.tree_total(p3) {
            let picked = rec.select_in_tree(p3, r);
            assert_eq!(picked.tree(), p3);
            *tally.entry(picked.colors().0).or_insert(0u128) += 1;
        }
        assert_eq!(tally[&0b0111], 7);
        assert_eq!(tally[&0b1110], 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (rec, _) = sample_record();
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(buf.len(), rec.encoded_len());
        let back = Record::decode(&mut &buf[..]).unwrap();
        assert_eq!(back, rec);
        // Corruption detected.
        assert!(Record::decode(&mut &buf[..buf.len() - 1]).is_none());
    }

    #[test]
    fn zero_counts_dropped_and_empty_ok() {
        let rec = Record::from_counts(vec![(123 << 16, 0)]);
        assert!(rec.is_empty());
        assert_eq!(rec.total(), 0);
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(Record::decode(&mut &buf[..]).unwrap(), rec);
    }
}
