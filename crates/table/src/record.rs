//! A single vertex's sorted count record, sealed under one of the
//! [`RecordCodec`] representations.
//!
//! The *build-side* accumulator is [`crate::RecordBuilder`] (a hash map);
//! freezing it yields a `Record`, which is immutable from then on. A record
//! answers every query of §3.1 — totals, point counts, per-shape ranges,
//! and cumulative selection — identically under either codec:
//!
//! * [`RecordCodec::Plain`] keeps the original layout: sorted `u64` keys
//!   plus `u128` *cumulative* counts (the paper's 176 bits per pair), so
//!   every query is a binary search.
//! * [`RecordCodec::Succinct`] keeps the paper's compressed layout: varint
//!   key deltas and varint counts with sparse cumulative anchors (see
//!   [`crate::codec`]), so queries binary-search the anchors and decode at
//!   most one block.

use crate::codec::{decode_succinct, encode_succinct, RecordCodec, SuccinctIter, SuccinctRepr};
use bytes::{Buf, BufMut};
use motivo_treelet::{ColorSet, ColoredTreelet, Treelet};

/// Sorted `(packed colored-treelet key, count)` pairs for one vertex and
/// one treelet size (§3.1, "Motivo's count table"), sealed in the byte
/// representation chosen at freeze time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record(Repr);

#[derive(Clone, PartialEq, Eq, Debug)]
enum Repr {
    Plain(PlainRepr),
    Succinct(SuccinctRepr),
}

impl Default for Record {
    fn default() -> Record {
        Record(Repr::Plain(PlainRepr::default()))
    }
}

/// The fixed-width representation: keys plus cumulative counts.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct PlainRepr {
    codes: Vec<u64>,
    cumul: Vec<u128>,
}

impl PlainRepr {
    /// Builds from strictly-ascending pairs with nonzero counts.
    fn from_sorted(pairs: &[(u64, u128)]) -> PlainRepr {
        let mut codes = Vec::with_capacity(pairs.len());
        let mut cumul = Vec::with_capacity(pairs.len());
        let mut acc: u128 = 0;
        for &(code, c) in pairs {
            acc = acc.checked_add(c).expect("record total overflows u128");
            codes.push(code);
            cumul.push(acc);
        }
        PlainRepr { codes, cumul }
    }

    fn total(&self) -> u128 {
        self.cumul.last().copied().unwrap_or(0)
    }

    fn count_of(&self, key: u64) -> u128 {
        match self.codes.binary_search(&key) {
            Ok(i) => self.cumul[i] - if i == 0 { 0 } else { self.cumul[i - 1] },
            Err(_) => 0,
        }
    }

    /// `(lo, hi)` index range of keys in `[start, end]`.
    fn key_range(&self, start: u64, end: u64) -> (usize, usize) {
        let lo = self.codes.partition_point(|&c| c < start);
        let hi = self.codes.partition_point(|&c| c <= end);
        (lo, hi)
    }

    fn cumul_before(&self, i: usize) -> u128 {
        if i == 0 {
            0
        } else {
            self.cumul[i - 1]
        }
    }

    fn select(&self, r: u128) -> u64 {
        debug_assert!(r >= 1 && r <= self.total());
        let i = self.cumul.partition_point(|&c| c < r);
        self.codes[i]
    }

    fn decode<B: Buf>(buf: &mut B) -> Option<PlainRepr> {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len * 24 {
            return None;
        }
        let mut codes = Vec::with_capacity(len);
        for _ in 0..len {
            codes.push(buf.get_u64_le());
        }
        let mut cumul = Vec::with_capacity(len);
        for _ in 0..len {
            cumul.push(buf.get_u128_le());
        }
        if !codes.windows(2).all(|w| w[0] < w[1]) || !cumul.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        Some(PlainRepr { codes, cumul })
    }
}

impl Record {
    /// Builds a record from raw `(key, count)` pairs (any order, keys
    /// unique, counts nonzero — zero counts are dropped), sealed in the
    /// [`RecordCodec::Plain`] representation.
    pub fn from_counts(pairs: Vec<(u64, u128)>) -> Record {
        Record::from_counts_in(RecordCodec::Plain, pairs)
    }

    /// Like [`Record::from_counts`] but sealed under `codec`.
    pub fn from_counts_in(codec: RecordCodec, mut pairs: Vec<(u64, u128)>) -> Record {
        pairs.retain(|&(_, c)| c > 0);
        pairs.sort_unstable_by_key(|&(code, _)| code);
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "duplicate keys");
        Record(match codec {
            RecordCodec::Plain => Repr::Plain(PlainRepr::from_sorted(&pairs)),
            RecordCodec::Succinct => Repr::Succinct(SuccinctRepr::from_sorted(&pairs)),
        })
    }

    /// The representation this record is sealed under.
    pub fn codec(&self) -> RecordCodec {
        match &self.0 {
            Repr::Plain(_) => RecordCodec::Plain,
            Repr::Succinct(_) => RecordCodec::Succinct,
        }
    }

    /// The same logical record sealed under `codec` (a clone when the
    /// codec already matches). Counts are preserved exactly.
    pub fn recode(&self, codec: RecordCodec) -> Record {
        if self.codec() == codec {
            return self.clone();
        }
        Record::from_counts_in(codec, self.raw_iter().collect())
    }

    /// Number of stored pairs.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Plain(p) => p.codes.len(),
            Repr::Succinct(s) => s.len(),
        }
    }

    /// Whether the record is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `occ(v)`: total treelet count at this vertex, `O(1)`.
    #[inline]
    pub fn total(&self) -> u128 {
        match &self.0 {
            Repr::Plain(p) => p.total(),
            Repr::Succinct(s) => s.total(),
        }
    }

    /// `occ(T_C, v)`: the count of one colored treelet — a binary search
    /// (plain: over all keys; succinct: over the anchors plus one block).
    pub fn count_of(&self, ct: ColoredTreelet) -> u128 {
        match &self.0 {
            Repr::Plain(p) => p.count_of(ct.code()),
            Repr::Succinct(s) => s.count_of(ct.code()),
        }
    }

    /// Iterates `(key, count)` in key order — the codec-agnostic core of
    /// the public iterators.
    fn raw_iter(&self) -> RawIter<'_> {
        match &self.0 {
            Repr::Plain(p) => RawIter::Plain {
                codes: &p.codes,
                cumul: &p.cumul,
                prev: 0,
            },
            Repr::Succinct(s) => RawIter::Succinct(s.iter()),
        }
    }

    /// Iterates `(colored treelet, count)` in key order.
    pub fn iter(&self) -> RecordIter<'_> {
        RecordIter(self.raw_iter())
    }

    /// `iter(T, v)`: the sub-range of entries with uncolored shape `T`
    /// (keys share the 32-bit tree prefix), as `(colors, count)` pairs.
    pub fn iter_tree(&self, tree: Treelet) -> TreeIter<'_> {
        let start = ColoredTreelet::range_start(tree);
        let end = ColoredTreelet::range_end(tree);
        TreeIter(match &self.0 {
            Repr::Plain(p) => {
                let (lo, hi) = p.key_range(start, end);
                RawIter::Plain {
                    codes: &p.codes[lo..hi],
                    cumul: &p.cumul[lo..hi],
                    prev: p.cumul_before(lo),
                }
            }
            Repr::Succinct(s) => {
                let (lo, _) = s.index_of_key_ge(start);
                let (hi, _) = s.index_of_key_ge(end + 1);
                RawIter::Succinct(s.iter_from(lo, hi))
            }
        })
    }

    /// `occ(T, v)`: total count over all colorings of shape `T` — two
    /// binary searches and one subtraction thanks to the cumulative layout
    /// (plain) or the cumulative anchors (succinct).
    pub fn tree_total(&self, tree: Treelet) -> u128 {
        let start = ColoredTreelet::range_start(tree);
        let end = ColoredTreelet::range_end(tree);
        match &self.0 {
            Repr::Plain(p) => {
                let (lo, hi) = p.key_range(start, end);
                if lo == hi {
                    return 0;
                }
                p.cumul[hi - 1] - p.cumul_before(lo)
            }
            Repr::Succinct(s) => s.index_of_key_ge(end + 1).1 - s.index_of_key_ge(start).1,
        }
    }

    /// `sample(v)`: the entry whose cumulative range contains `r`, for
    /// `r ∈ 1..=total()`. The caller draws `r` uniformly; the returned
    /// treelet then has probability `c(T_C, v)/η_v`.
    pub fn select(&self, r: u128) -> ColoredTreelet {
        let key = match &self.0 {
            Repr::Plain(p) => p.select(r),
            Repr::Succinct(s) => s.select(r),
        };
        ColoredTreelet::from_code(key).expect("invariant: valid key")
    }

    /// Like [`Record::select`] but restricted to the entries of shape
    /// `tree`, with `r ∈ 1..=tree_total(tree)` — the per-shape urn of AGS.
    pub fn select_in_tree(&self, tree: Treelet, r: u128) -> ColoredTreelet {
        debug_assert!(r >= 1 && r <= self.tree_total(tree));
        let start = ColoredTreelet::range_start(tree);
        let before = match &self.0 {
            Repr::Plain(p) => {
                let lo = p.codes.partition_point(|&c| c < start);
                p.cumul_before(lo)
            }
            Repr::Succinct(s) => s.index_of_key_ge(start).1,
        };
        // Entries of one shape are contiguous, so selecting at the global
        // cumulative rank `before + r` lands inside the shape's range.
        self.select(before + r)
    }

    /// Bytes used by the in-memory representation: 24 per pair for plain
    /// (the paper's 176 bits rounded to the `u64`/`u128` layout), the
    /// stream plus anchors for succinct.
    pub fn byte_size(&self) -> usize {
        match &self.0 {
            Repr::Plain(p) => p.codes.len() * (8 + 16),
            Repr::Succinct(s) => s.byte_size(),
        }
    }

    /// Bytes the *plain* representation of this record would take —
    /// the baseline of the succinct codec's compression ratio.
    pub fn plain_byte_size(&self) -> usize {
        self.len() * (8 + 16)
    }

    /// Serialized length in bytes.
    pub fn encoded_len(&self) -> usize {
        match &self.0 {
            Repr::Plain(p) => 4 + p.codes.len() * (8 + 16),
            Repr::Succinct(s) => 4 + s.stream().len(),
        }
    }

    /// Serializes the record. Plain: `len: u32 | codes: u64×len |
    /// cumul: u128×len` (LE) — byte-identical to the v1 format. Succinct:
    /// `len: u32 | varint stream`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        match &self.0 {
            Repr::Plain(p) => {
                buf.put_u32_le(p.codes.len() as u32);
                for &c in &p.codes {
                    buf.put_u64_le(c);
                }
                for &c in &p.cumul {
                    buf.put_u128_le(c);
                }
            }
            Repr::Succinct(s) => encode_succinct(s, buf),
        }
    }

    /// Deserializes a record written by [`Record::encode`] under `codec`.
    /// Succinct records are externally length-delimited: everything
    /// remaining in `buf` must belong to this record.
    pub fn decode<B: Buf>(codec: RecordCodec, buf: &mut B) -> Option<Record> {
        Some(Record(match codec {
            RecordCodec::Plain => Repr::Plain(PlainRepr::decode(buf)?),
            RecordCodec::Succinct => Repr::Succinct(decode_succinct(buf)?),
        }))
    }
}

/// Codec-agnostic `(key, count)` iteration.
///
/// The `Succinct` arm is much larger than `Plain`: it carries the
/// decoded-block arena inline. That is deliberate — iterators are
/// created per record visit on the sampling hot path, and boxing the
/// arena would turn every visit into a heap allocation.
#[allow(clippy::large_enum_variant)]
enum RawIter<'a> {
    Plain {
        codes: &'a [u64],
        cumul: &'a [u128],
        prev: u128,
    },
    Succinct(SuccinctIter<'a>),
}

impl Iterator for RawIter<'_> {
    type Item = (u64, u128);

    fn next(&mut self) -> Option<(u64, u128)> {
        match self {
            RawIter::Plain { codes, cumul, prev } => {
                let (&key, &cum) = (codes.first()?, cumul.first()?);
                *codes = &codes[1..];
                *cumul = &cumul[1..];
                let count = cum - *prev;
                *prev = cum;
                Some((key, count))
            }
            RawIter::Succinct(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RawIter::Plain { codes, .. } => (codes.len(), Some(codes.len())),
            RawIter::Succinct(it) => it.size_hint(),
        }
    }
}

/// Iterator over `(colored treelet, count)` pairs — see [`Record::iter`].
pub struct RecordIter<'a>(RawIter<'a>);

impl Iterator for RecordIter<'_> {
    type Item = (ColoredTreelet, u128);

    fn next(&mut self) -> Option<(ColoredTreelet, u128)> {
        let (key, count) = self.0.next()?;
        Some((
            ColoredTreelet::from_code(key).expect("invariant: valid key"),
            count,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for RecordIter<'_> {}

/// Iterator over one shape's `(colors, count)` pairs — see
/// [`Record::iter_tree`].
pub struct TreeIter<'a>(RawIter<'a>);

impl Iterator for TreeIter<'_> {
    type Item = (ColorSet, u128);

    fn next(&mut self) -> Option<(ColorSet, u128)> {
        let (key, count) = self.0.next()?;
        Some((ColorSet((key & 0xFFFF) as u16), count))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for TreeIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_treelet::{path_treelet, star_treelet};

    fn ct(tree: Treelet, colors: u16) -> ColoredTreelet {
        ColoredTreelet::new(tree, ColorSet(colors))
    }

    fn sample_pairs() -> Vec<(ColoredTreelet, u128)> {
        let s3 = star_treelet(3);
        let p3 = path_treelet(3);
        vec![
            (ct(s3, 0b0111), 5u128),
            (ct(s3, 0b1011), 2),
            (ct(p3, 0b0111), 7),
            (ct(p3, 0b1110), 1),
        ]
    }

    fn sample_record_in(codec: RecordCodec) -> (Record, Vec<(ColoredTreelet, u128)>) {
        let pairs = sample_pairs();
        let rec =
            Record::from_counts_in(codec, pairs.iter().map(|&(c, n)| (c.code(), n)).collect());
        (rec, pairs)
    }

    fn sample_record() -> (Record, Vec<(ColoredTreelet, u128)>) {
        sample_record_in(RecordCodec::Plain)
    }

    #[test]
    fn totals_and_counts() {
        for codec in RecordCodec::ALL {
            let (rec, pairs) = sample_record_in(codec);
            assert_eq!(rec.codec(), codec);
            assert_eq!(rec.total(), 15);
            for (ct, n) in pairs {
                assert_eq!(rec.count_of(ct), n);
            }
            assert_eq!(rec.count_of(ct(star_treelet(3), 0b1101)), 0);
        }
    }

    #[test]
    fn iteration_matches_counts() {
        for codec in RecordCodec::ALL {
            let (rec, _) = sample_record_in(codec);
            let total: u128 = rec.iter().map(|(_, c)| c).sum();
            assert_eq!(total, rec.total());
            assert_eq!(rec.iter().count(), 4);
        }
    }

    #[test]
    fn per_tree_queries() {
        for codec in RecordCodec::ALL {
            let (rec, _) = sample_record_in(codec);
            let s3 = star_treelet(3);
            let p3 = path_treelet(3);
            assert_eq!(rec.tree_total(s3), 7);
            assert_eq!(rec.tree_total(p3), 8);
            assert_eq!(rec.tree_total(path_treelet(4)), 0);
            let colors: Vec<_> = rec.iter_tree(s3).collect();
            assert_eq!(colors, vec![(ColorSet(0b0111), 5), (ColorSet(0b1011), 2)]);
        }
    }

    #[test]
    fn selection_covers_exact_ranges() {
        for codec in RecordCodec::ALL {
            let (rec, _) = sample_record_in(codec);
            // Counts in key order: star/0b0111 → 5, star/0b1011 → 2,
            // path/0b0111 → 7, path/0b1110 → 1.
            let mut tally = std::collections::HashMap::new();
            for r in 1..=rec.total() {
                *tally.entry(rec.select(r).code()).or_insert(0u128) += 1;
            }
            for (ct, n) in rec.iter() {
                assert_eq!(tally[&ct.code()], n);
            }
        }
    }

    #[test]
    fn selection_within_tree() {
        for codec in RecordCodec::ALL {
            let (rec, _) = sample_record_in(codec);
            let p3 = path_treelet(3);
            let mut tally = std::collections::HashMap::new();
            for r in 1..=rec.tree_total(p3) {
                let picked = rec.select_in_tree(p3, r);
                assert_eq!(picked.tree(), p3);
                *tally.entry(picked.colors().0).or_insert(0u128) += 1;
            }
            assert_eq!(tally[&0b0111], 7);
            assert_eq!(tally[&0b1110], 1);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for codec in RecordCodec::ALL {
            let (rec, _) = sample_record_in(codec);
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(buf.len(), rec.encoded_len());
            let back = Record::decode(codec, &mut &buf[..]).unwrap();
            assert_eq!(back, rec);
            // Corruption detected.
            assert!(Record::decode(codec, &mut &buf[..buf.len() - 1]).is_none());
        }
    }

    #[test]
    fn zero_counts_dropped_and_empty_ok() {
        for codec in RecordCodec::ALL {
            let rec = Record::from_counts_in(codec, vec![(123 << 16, 0)]);
            assert!(rec.is_empty());
            assert_eq!(rec.total(), 0);
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(Record::decode(codec, &mut &buf[..]).unwrap(), rec);
        }
    }

    #[test]
    fn recode_preserves_contents_and_shrinks() {
        let (plain, pairs) = sample_record();
        let succ = plain.recode(RecordCodec::Succinct);
        assert_eq!(succ.codec(), RecordCodec::Succinct);
        assert_eq!(
            succ.iter().collect::<Vec<_>>(),
            plain.iter().collect::<Vec<_>>()
        );
        assert_eq!(succ.recode(RecordCodec::Plain), plain);
        assert!(succ.byte_size() < plain.byte_size());
        assert_eq!(plain.plain_byte_size(), pairs.len() * 24);
        assert_eq!(succ.plain_byte_size(), plain.byte_size());
    }

    /// A record spanning several anchor blocks answers every query the
    /// same under both codecs — the multi-block paths of the succinct side.
    #[test]
    fn codecs_agree_on_large_records() {
        // Many colorings of two size-4 shapes: > 2 anchor blocks.
        let s4 = star_treelet(4);
        let p4 = path_treelet(4);
        let mut pairs = Vec::new();
        for (i, colors) in ColorSet::full(9).subsets_of_size(4).into_iter().enumerate() {
            pairs.push((ColoredTreelet::new(s4, colors).code(), (i % 11 + 1) as u128));
            pairs.push((
                ColoredTreelet::new(p4, colors).code(),
                (i % 5 + 1) as u128 * 3,
            ));
        }
        assert!(pairs.len() > 3 * crate::codec::ANCHOR_BLOCK);
        let plain = Record::from_counts(pairs.clone());
        let succ = Record::from_counts_in(RecordCodec::Succinct, pairs.clone());
        assert_eq!(plain.total(), succ.total());
        assert_eq!(
            plain.iter().collect::<Vec<_>>(),
            succ.iter().collect::<Vec<_>>()
        );
        for &(code, _) in &pairs {
            let ct = ColoredTreelet::from_code(code).unwrap();
            assert_eq!(plain.count_of(ct), succ.count_of(ct));
        }
        for tree in [s4, p4, path_treelet(3)] {
            assert_eq!(plain.tree_total(tree), succ.tree_total(tree));
            assert_eq!(
                plain.iter_tree(tree).collect::<Vec<_>>(),
                succ.iter_tree(tree).collect::<Vec<_>>()
            );
        }
        for r in (1..=plain.total()).step_by(7) {
            assert_eq!(plain.select(r), succ.select(r));
        }
        for tree in [s4, p4] {
            for r in (1..=plain.tree_total(tree)).step_by(5) {
                assert_eq!(plain.select_in_tree(tree, r), succ.select_in_tree(tree, r));
            }
        }
        // And the memory win is real even at this size.
        assert!(succ.byte_size() * 2 < plain.byte_size());
    }
}
