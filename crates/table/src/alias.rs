//! Vose's alias method for O(1) categorical sampling (§3.3, ref. \[24\]).
//!
//! The root vertex of every sample is drawn with probability proportional to
//! the number of colorful k-treelets rooted at it; the alias table makes
//! that an `O(1)` operation after an `O(n)` build. Weights arrive as `u128`
//! treelet counts; the conversion to `f64` loses at most 2⁻⁵³ relative mass
//! per vertex, which is far below sampling noise (documented substitution —
//! the paper's implementation does the same via `double`s).

use rand::Rng;

/// An alias table over `0..n` with fixed weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds from nonnegative weights; at least one must be positive.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        assert!(n <= u32::MAX as usize);
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be nonnegative and finite with positive sum"
        );
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Large donates the deficit of small.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are 1 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Builds from `u128` counts (e.g. per-vertex treelet totals).
    pub fn from_u128(weights: &[u128]) -> AliasTable {
        let as_f64: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
        AliasTable::new(&as_f64)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in `O(1)`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_distribution_tracks_weights() {
        let weights = [1.0, 0.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = [0u64; 4];
        let trials = 200_000;
        for _ in 0..trials {
            hits[table.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[1], 0, "zero-weight category sampled");
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = hits[i] as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn u128_weights() {
        let table = AliasTable::from_u128(&[u128::MAX / 2, u128::MAX / 2, 0]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hits = [0u64; 3];
        for _ in 0..10_000 {
            hits[table.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[2], 0);
        assert!(hits[0] > 4_000 && hits[1] > 4_000);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
