//! Vose's alias method for O(1) categorical sampling (§3.3, ref. \[24\]).
//!
//! The root vertex of every sample is drawn with probability proportional to
//! the number of colorful k-treelets rooted at it; the alias table makes
//! that an `O(1)` operation after an `O(n)` build. Weights arrive as `u128`
//! treelet counts; the conversion to `f64` loses at most 2⁻⁵³ relative mass
//! per vertex, which is far below sampling noise (documented substitution —
//! the paper's implementation does the same via `double`s).
//!
//! The walk is branchless: each draw reads one interleaved
//! `(prob, alias)` slot — a single cache line — and resolves the
//! keep-or-alias choice with arithmetic select instead of a data-dependent
//! branch the predictor cannot learn. The RNG stream is exactly the
//! classic two-draw walk (`gen_range(0..n)` then `gen::<f64>()`), so
//! results are bit-identical to the textbook formulation; see DESIGN.md
//! §5.5 for why the tempting one-draw variant was rejected.

use rand::Rng;

/// One category's share of its column: the probability of keeping the
/// column index, and the alias to jump to otherwise. Interleaved so a
/// draw touches one 16-byte slot instead of two parallel arrays.
#[derive(Clone, Copy, Debug)]
struct Slot {
    prob: f64,
    alias: u32,
}

/// An alias table over `0..n` with fixed weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    slots: Vec<Slot>,
}

impl AliasTable {
    /// Builds from nonnegative weights; at least one must be positive.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be nonnegative and finite with positive sum"
        );
        AliasTable::build(weights.len(), |i| weights[i])
    }

    /// Builds from `u128` counts (e.g. per-vertex treelet totals). The
    /// conversion to `f64` happens inside the build pass — no temporary
    /// `Vec<f64>` is materialized.
    pub fn from_u128(weights: &[u128]) -> AliasTable {
        // `w as f64` is always finite and nonnegative, so the `new`
        // preconditions hold by construction.
        AliasTable::build(weights.len(), |i| weights[i] as f64)
    }

    /// Shared build: `weight(i)` is read twice (sum pass, fill pass) in
    /// index order, so the float operations — and therefore the resulting
    /// table — are identical whichever public constructor ran.
    fn build(n: usize, weight: impl Fn(usize) -> f64) -> AliasTable {
        assert!(n > 0, "alias table needs at least one weight");
        assert!(n <= u32::MAX as usize);
        let total: f64 = (0..n).map(&weight).sum();
        assert!(
            total > 0.0,
            "weights must be nonnegative and finite with positive sum"
        );
        let mut prob: Vec<f64> = (0..n).map(|i| weight(i) * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Large donates the deficit of small.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are 1 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        let slots = prob
            .into_iter()
            .zip(alias)
            .map(|(prob, alias)| Slot { prob, alias })
            .collect();
        AliasTable { slots }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Draws one index in `O(1)`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.slots.len());
        let slot = self.slots[i];
        // Arithmetic select: `take` is 0 (keep `i`) or 1 (jump to the
        // alias); wrapping arithmetic keeps it branch-free for any pair.
        let take = (rng.gen::<f64>() >= slot.prob) as usize;
        i.wrapping_add(take.wrapping_mul((slot.alias as usize).wrapping_sub(i)))
    }

    /// Draws `out.len()` indices, producing exactly the sequence that
    /// `out.len()` successive [`AliasTable::sample`] calls would — a
    /// batched entry point that keeps the slot array hot and amortizes
    /// call overhead. Indices fit `u32` because `len() <= u32::MAX`.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u32]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_distribution_tracks_weights() {
        let weights = [1.0, 0.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = [0u64; 4];
        let trials = 200_000;
        for _ in 0..trials {
            hits[table.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[1], 0, "zero-weight category sampled");
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = hits[i] as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn u128_weights() {
        let table = AliasTable::from_u128(&[u128::MAX / 2, u128::MAX / 2, 0]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hits = [0u64; 3];
        for _ in 0..10_000 {
            hits[table.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[2], 0);
        assert!(hits[0] > 4_000 && hits[1] > 4_000);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    /// `from_u128` and `new` over the converted weights draw identical
    /// sequences — the in-build conversion changes no float operation.
    #[test]
    fn from_u128_matches_converted_new() {
        let counts: Vec<u128> = (0..257).map(|i| (i as u128 * 7919) % 1023).collect();
        let as_f64: Vec<f64> = counts.iter().map(|&w| w as f64).collect();
        let a = AliasTable::from_u128(&counts);
        let b = AliasTable::new(&as_f64);
        let mut ra = SmallRng::seed_from_u64(11);
        let mut rb = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }

    /// One positive weight among zeros always draws that index.
    #[test]
    fn single_positive_among_zeros() {
        let table = AliasTable::from_u128(&[0, 0, 0, 9, 0, 0]);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert_eq!(table.sample(&mut rng), 3);
        }
    }

    /// All-equal weights stay uniform through the branchless walk.
    #[test]
    fn all_equal_weights_are_uniform() {
        let table = AliasTable::from_u128(&[7; 8]);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut hits = [0u64; 8];
        let trials = 80_000;
        for _ in 0..trials {
            hits[table.sample(&mut rng)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            let observed = h as f64 / trials as f64;
            assert!(
                (observed - 0.125).abs() < 0.01,
                "category {i}: observed {observed}"
            );
        }
    }

    /// A one-category `u128` table is total and constant.
    #[test]
    fn from_u128_single_category() {
        let table = AliasTable::from_u128(&[u128::MAX]);
        assert_eq!(table.len(), 1);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    /// `sample_many` reproduces the exact sequence of repeated `sample`
    /// calls — same RNG stream, same indices.
    #[test]
    fn sample_many_matches_repeated_sample() {
        let table = AliasTable::from_u128(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let mut ra = SmallRng::seed_from_u64(13);
        let mut rb = SmallRng::seed_from_u64(13);
        let mut batch = [0u32; 1000];
        table.sample_many(&mut ra, &mut batch);
        for &got in batch.iter() {
            assert_eq!(got as usize, table.sample(&mut rb));
        }
    }
}
