//! Storage backends for the count table.
//!
//! The paper's **greedy flushing** (§3.1): while level `h` is being built,
//! each record is accumulated in a hash table, but "immediately after
//! completion it is stored on disk in the compact form … The hash table is
//! then emptied and memory released", so the table never fully resides in
//! main memory; lower levels are later read back through memory-mapped I/O
//! (§3.3). Std-only Rust has no `mmap`, so [`DiskLevel`] keeps a per-vertex
//! `(offset, len)` index and serves reads with positioned `pread`-style
//! calls — same architecture (records leave RAM at completion, reads go to
//! the file), observable and testable. The paper's second sort pass exists
//! to make keys seekable; the explicit index achieves the same and is noted
//! as a substitution in DESIGN.md.
//!
//! Every level and the assembled [`CountTable`] carry the [`RecordCodec`]
//! their records are sealed under; `byte_size` reports the true encoded
//! footprint, so the succinct codec's savings are visible all the way up
//! to the store's LRU budget. All storage operations are fallible
//! (`io::Result`): an I/O error propagates to the build/persist caller
//! instead of aborting the process.

use crate::codec::RecordCodec;
use crate::record::Record;
use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::{Path, PathBuf};

/// A record obtained from a store: borrowed from memory or decoded from
/// disk.
pub enum RecordHandle<'a> {
    /// Borrowed from an in-memory level.
    Borrowed(&'a Record),
    /// Decoded from a disk level (or the canonical empty record).
    Owned(Record),
}

impl Deref for RecordHandle<'_> {
    type Target = Record;

    fn deref(&self) -> &Record {
        match self {
            RecordHandle::Borrowed(r) => r,
            RecordHandle::Owned(r) => r,
        }
    }
}

/// A streaming pass over a level: `(vertex, record)` pairs in ascending
/// vertex order, skipping empty records. Replaces the old
/// `vertices() -> Vec<u32>` API, which allocated a fresh vector per call
/// and forced a second lookup per vertex.
pub type LevelScan<'a> = Box<dyn Iterator<Item = io::Result<(u32, RecordHandle<'a>)>> + 'a>;

/// Build-shape telemetry of one level, surfaced by `motivo table stats`
/// and the bench gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelProfile {
    /// Number of storage blocks (0 for non-block backends).
    pub blocks: u32,
    /// Budget-triggered memtable spills during the build.
    pub spill_runs: u32,
    /// High-water mark of the build memtable in bytes.
    pub peak_mem_bytes: u64,
}

/// One level (treelet size) of the count table.
pub trait LevelStore: Send + Sync {
    /// Stores the completed record of vertex `v` (called once per vertex).
    fn put(&mut self, v: u32, rec: Record) -> io::Result<()>;

    /// Fetches the record of `v`; an empty record if `v` stored none.
    fn get(&self, v: u32) -> io::Result<RecordHandle<'_>>;

    /// Marks the level complete: no more puts will arrive. Backends that
    /// stage writes (the block level's memtable and spill runs) compact
    /// here; for everything else this is a no-op. Idempotent.
    fn seal(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Total size of the level's payload in bytes (encoded form).
    fn byte_size(&self) -> usize;

    /// Number of non-empty records.
    fn record_count(&self) -> usize;

    /// Number of vertices the level was sized for.
    fn num_vertices(&self) -> u32;

    /// Streams non-empty `(vertex, record)` pairs in ascending vertex
    /// order.
    fn scan(&self) -> LevelScan<'_>;

    /// Build-shape telemetry; defaults to all-zeros for backends without
    /// blocks or spills.
    fn profile(&self) -> LevelProfile {
        LevelProfile::default()
    }
}

/// In-memory level: a dense vector of records sealed under one codec.
pub struct MemoryLevel {
    records: Vec<Option<Record>>,
    codec: RecordCodec,
    bytes: usize,
    count: usize,
}

impl MemoryLevel {
    /// An empty level for `n` vertices whose records are sealed under
    /// `codec`.
    pub fn new(n: u32, codec: RecordCodec) -> MemoryLevel {
        MemoryLevel {
            records: vec![None; n as usize],
            codec,
            bytes: 0,
            count: 0,
        }
    }

    /// Codec the level's records are sealed under.
    pub fn codec(&self) -> RecordCodec {
        self.codec
    }
}

impl LevelStore for MemoryLevel {
    fn put(&mut self, v: u32, rec: Record) -> io::Result<()> {
        if rec.is_empty() {
            return Ok(());
        }
        // Re-seal a record arriving under the wrong codec, mirroring
        // DiskLevel: otherwise the level's byte accounting (and the
        // table's advertised codec) would silently disagree with its
        // contents. The common same-codec case passes through untouched.
        let rec = if rec.codec() == self.codec {
            rec
        } else {
            rec.recode(self.codec)
        };
        self.bytes += rec.byte_size();
        self.count += 1;
        debug_assert!(self.records[v as usize].is_none(), "record stored twice");
        self.records[v as usize] = Some(rec);
        Ok(())
    }

    fn get(&self, v: u32) -> io::Result<RecordHandle<'_>> {
        Ok(match &self.records[v as usize] {
            Some(r) => RecordHandle::Borrowed(r),
            None => RecordHandle::Owned(Record::default()),
        })
    }

    fn byte_size(&self) -> usize {
        self.bytes
    }

    fn record_count(&self) -> usize {
        self.count
    }

    fn num_vertices(&self) -> u32 {
        self.records.len() as u32
    }

    fn scan(&self) -> LevelScan<'_> {
        Box::new(self.records.iter().enumerate().filter_map(|(v, r)| {
            r.as_ref()
                .map(|rec| Ok((v as u32, RecordHandle::Borrowed(rec))))
        }))
    }
}

/// Disk level: records appended to a file at completion (greedy flushing),
/// indexed by vertex for positioned reads. The level remembers the codec
/// its records were encoded under; reads decode with it.
pub struct DiskLevel {
    file: File,
    path: PathBuf,
    codec: RecordCodec,
    /// `(offset, len)` per vertex; `len == 0` means no record.
    index: Vec<(u64, u32)>,
    write_offset: u64,
    count: usize,
}

impl DiskLevel {
    /// Creates the backing file at `path` for `n` vertices whose records
    /// are encoded under `codec`.
    pub fn create<P: AsRef<Path>>(path: P, n: u32, codec: RecordCodec) -> io::Result<DiskLevel> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(DiskLevel {
            file,
            path,
            codec,
            index: vec![(0, 0); n as usize],
            write_offset: 0,
            count: 0,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Codec the level's records are encoded under.
    pub fn codec(&self) -> RecordCodec {
        self.codec
    }

    /// Persists the per-vertex index next to the data file (`<path>.idx`)
    /// so the level can be reopened later: magic `MTVI`, version,
    /// `n: u64`, then `n × (offset: u64, len: u32)`.
    pub fn persist_index(&self) -> io::Result<()> {
        use bytes::BufMut;
        let mut buf = Vec::with_capacity(16 + self.index.len() * 12);
        buf.put_slice(b"MTVI");
        buf.put_u32_le(1);
        buf.put_u64_le(self.index.len() as u64);
        for &(off, len) in &self.index {
            buf.put_u64_le(off);
            buf.put_u32_le(len);
        }
        std::fs::write(self.index_path(), buf)
    }

    /// Reopens a level persisted by [`DiskLevel::persist_index`], decoding
    /// records under `codec` (recorded in the table's `table.meta`).
    pub fn open<P: AsRef<Path>>(path: P, codec: RecordCodec) -> io::Result<DiskLevel> {
        use bytes::Buf;
        let path = path.as_ref().to_path_buf();
        let file = File::options().read(true).write(true).open(&path)?;
        let idx_path = path.with_extension(
            path.extension()
                .map(|e| format!("{}.idx", e.to_string_lossy()))
                .unwrap_or_else(|| "idx".into()),
        );
        let raw = std::fs::read(&idx_path)?;
        let mut buf = &raw[..];
        if buf.remaining() < 16 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated index",
            ));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"MTVI" || buf.get_u32_le() != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad index header",
            ));
        }
        let n = buf.get_u64_le() as usize;
        if buf.remaining() != n * 12 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "index length mismatch",
            ));
        }
        let mut index = Vec::with_capacity(n);
        let mut count = 0;
        let mut write_offset = 0u64;
        for _ in 0..n {
            let off = buf.get_u64_le();
            let len = buf.get_u32_le();
            if len > 0 {
                count += 1;
                write_offset = write_offset.max(off + len as u64);
            }
            index.push((off, len));
        }
        Ok(DiskLevel {
            file,
            path,
            codec,
            index,
            write_offset,
            count,
        })
    }

    fn index_path(&self) -> std::path::PathBuf {
        self.path.with_extension(
            self.path
                .extension()
                .map(|e| format!("{}.idx", e.to_string_lossy()))
                .unwrap_or_else(|| "idx".into()),
        )
    }
}

impl LevelStore for DiskLevel {
    fn put(&mut self, v: u32, rec: Record) -> io::Result<()> {
        if rec.is_empty() {
            return Ok(());
        }
        // Re-seal a record that arrives under the wrong codec: writing its
        // bytes as-is would only surface as InvalidData at some later read,
        // far from the faulty put. The common same-codec case passes
        // through untouched.
        let rec = if rec.codec() == self.codec {
            rec
        } else {
            rec.recode(self.codec)
        };
        let mut buf = Vec::with_capacity(rec.encoded_len());
        rec.encode(&mut buf);
        // Positioned write at the tracked offset, not the file cursor: a
        // failed partial write then leaves offset and index untouched, so
        // a caller that survives the error (the API is fallible now) can
        // keep appending without desyncing the index.
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(&buf, self.write_offset)?;
        self.index[v as usize] = (self.write_offset, buf.len() as u32);
        self.write_offset += buf.len() as u64;
        self.count += 1;
        Ok(())
    }

    fn get(&self, v: u32) -> io::Result<RecordHandle<'_>> {
        let (off, len) = self.index[v as usize];
        if len == 0 {
            return Ok(RecordHandle::Owned(Record::default()));
        }
        let mut buf = vec![0u8; len as usize];
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(&mut buf, off)?;
        let rec = Record::decode(self.codec, &mut &buf[..]).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt record for vertex {v} in {}", self.path.display()),
            )
        })?;
        Ok(RecordHandle::Owned(rec))
    }

    fn byte_size(&self) -> usize {
        self.write_offset as usize
    }

    fn record_count(&self) -> usize {
        self.count
    }

    fn num_vertices(&self) -> u32 {
        self.index.len() as u32
    }

    fn scan(&self) -> LevelScan<'_> {
        Box::new(
            (0..self.index.len() as u32)
                .filter(|&v| self.index[v as usize].1 > 0)
                .map(|v| self.get(v).map(|h| (v, h))),
        )
    }
}

/// Which backend new levels use.
#[derive(Clone, Debug)]
pub enum StorageKind {
    /// Everything in RAM.
    Memory,
    /// Greedy flushing into `dir/level-<h>.mtvt`.
    Disk {
        /// Directory for the level files (created if missing).
        dir: PathBuf,
    },
    /// Sorted-block levels in `dir/level-<h>.mtvb`, built through a
    /// byte-budgeted memtable with spill-and-merge (DESIGN.md §1.5), so
    /// peak build memory is bounded regardless of graph size.
    Block {
        /// Directory for the block files (created if missing).
        dir: PathBuf,
        /// Memtable budget in bytes per level; `0` means unbudgeted.
        mem_budget: usize,
    },
}

impl StorageKind {
    /// Creates an empty level for treelet size `h` over `n` vertices,
    /// storing records sealed under `codec`.
    pub fn create_level(
        &self,
        h: u32,
        n: u32,
        codec: RecordCodec,
    ) -> io::Result<Box<dyn LevelStore>> {
        match self {
            StorageKind::Memory => Ok(Box::new(MemoryLevel::new(n, codec))),
            StorageKind::Disk { dir } => {
                std::fs::create_dir_all(dir)?;
                Ok(Box::new(DiskLevel::create(
                    dir.join(format!("level-{h}.mtvt")),
                    n,
                    codec,
                )?))
            }
            StorageKind::Block { dir, mem_budget } => {
                std::fs::create_dir_all(dir)?;
                Ok(Box::new(crate::block::BlockLevel::create(
                    dir.join(format!("level-{h}.mtvb")),
                    n,
                    codec,
                    *mem_budget,
                )?))
            }
        }
    }
}

/// The assembled per-size count tables for sizes `1..=k`.
pub struct CountTable {
    k: u32,
    codec: RecordCodec,
    levels: Vec<Box<dyn LevelStore>>,
    /// Budget-triggered memtable spills per level during the build
    /// (index 0 = size 1); all zeros for non-block backends.
    spill_runs: Vec<u32>,
    /// High-water mark of any level's build memtable, in bytes.
    peak_mem_bytes: u64,
}

impl CountTable {
    /// Assembles a table from per-size levels (index 0 = size 1), all
    /// holding records sealed under `codec`. Build history (spills, peak
    /// memtable) is collected from the levels' [`LevelStore::profile`].
    pub fn from_levels(levels: Vec<Box<dyn LevelStore>>, codec: RecordCodec) -> CountTable {
        assert!(!levels.is_empty());
        let spill_runs = levels.iter().map(|l| l.profile().spill_runs).collect();
        let peak_mem_bytes = levels
            .iter()
            .map(|l| l.profile().peak_mem_bytes)
            .max()
            .unwrap_or(0);
        CountTable {
            k: levels.len() as u32,
            codec,
            levels,
            spill_runs,
            peak_mem_bytes,
        }
    }

    /// Budget-triggered memtable spills per level during the build.
    pub fn spill_runs(&self) -> &[u32] {
        &self.spill_runs
    }

    /// Total budget-triggered spills across all levels.
    pub fn total_spill_runs(&self) -> u64 {
        self.spill_runs.iter().map(|&s| s as u64).sum()
    }

    /// High-water mark of any level's build memtable, in bytes.
    pub fn peak_mem_bytes(&self) -> u64 {
        self.peak_mem_bytes
    }

    /// The treelet size bound `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The codec every record in this table is sealed under.
    pub fn codec(&self) -> RecordCodec {
        self.codec
    }

    /// Record of vertex `v` at treelet size `h`.
    #[inline]
    pub fn get(&self, h: u32, v: u32) -> io::Result<RecordHandle<'_>> {
        self.levels[h as usize - 1].get(v)
    }

    /// The level store for size `h`.
    pub fn level(&self, h: u32) -> &dyn LevelStore {
        self.levels[h as usize - 1].as_ref()
    }

    /// Total payload bytes across all levels (encoded form — what the
    /// codec actually costs in memory or on disk).
    pub fn byte_size(&self) -> usize {
        self.levels.iter().map(|l| l.byte_size()).sum()
    }

    /// Total number of stored records.
    pub fn record_count(&self) -> usize {
        self.levels.iter().map(|l| l.record_count()).sum()
    }

    /// Persists the whole table into `dir` (one sorted-block file per
    /// level, plus `table.meta` v3), so it can be reopened with
    /// [`CountTable::open_dir`]. Every level streams through
    /// [`LevelStore::scan`] into a block writer; records are re-sealed
    /// under the table's codec if a level disagrees. Stale v2 level files
    /// (`level-<h>.mtvt` + `.idx`) left by an older writer are removed.
    pub fn save_dir<P: AsRef<Path>>(&self, dir: P) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let n = self.levels[0].num_vertices();
        for (i, level) in self.levels.iter().enumerate() {
            let h = i as u32 + 1;
            // Write through a temp name, then rename: the source level may
            // be block-backed *in this very directory*, and creating the
            // final file directly would truncate it mid-copy. The open
            // source handle keeps the old inode across the rename.
            let tmp = dir.join(format!("level-{h}.mtvb.new"));
            let fin = dir.join(format!("level-{h}.mtvb"));
            let mut writer = crate::block::BlockWriter::create(&tmp, n, self.codec)?;
            for item in level.scan() {
                let (v, rec) = item?;
                writer.add(v, &rec)?;
            }
            writer.finish()?;
            std::fs::rename(&tmp, &fin)?;
            // Clean up files from the pre-block v2 layout so the directory
            // has a single source of truth.
            std::fs::remove_file(dir.join(format!("level-{h}.mtvt"))).ok();
            std::fs::remove_file(dir.join(format!("level-{h}.mtvt.idx"))).ok();
        }
        use bytes::BufMut;
        let mut meta = Vec::new();
        meta.put_slice(b"MTVT");
        meta.put_u32_le(TABLE_META_VERSION);
        meta.put_u32_le(self.k);
        meta.put_u32_le(n);
        meta.put_u8(self.codec.tag());
        meta.put_u64_le(self.peak_mem_bytes);
        for i in 0..self.k as usize {
            meta.put_u32_le(self.spill_runs.get(i).copied().unwrap_or(0));
        }
        std::fs::write(dir.join("table.meta"), meta)
    }

    /// Converts every level into an in-memory level. This is the "enough
    /// memory is available" fast path of the paper's memory-mapped reads
    /// (§3.3): after preloading, record access never touches the disk.
    pub fn preload(self) -> io::Result<CountTable> {
        let mut levels: Vec<Box<dyn LevelStore>> = Vec::with_capacity(self.levels.len());
        for lvl in &self.levels {
            let mut mem = MemoryLevel::new(lvl.num_vertices(), self.codec);
            for item in lvl.scan() {
                let (v, rec) = item?;
                mem.put(v, (*rec).clone())?;
            }
            levels.push(Box::new(mem));
        }
        Ok(CountTable {
            k: self.k,
            codec: self.codec,
            levels,
            spill_runs: self.spill_runs,
            peak_mem_bytes: self.peak_mem_bytes,
        })
    }

    /// Reopens a table persisted by [`CountTable::save_dir`]. Reads the
    /// sorted-block v3 format, the v2 format (per-level data + index file
    /// pairs, with a codec tag), and the pre-codec v1 format, whose
    /// records are always plain.
    pub fn open_dir<P: AsRef<Path>>(dir: P) -> io::Result<CountTable> {
        use bytes::Buf;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let dir = dir.as_ref();
        let raw = std::fs::read(dir.join("table.meta"))?;
        let mut buf = &raw[..];
        if buf.remaining() < 16 {
            return Err(bad("truncated meta"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"MTVT" {
            return Err(bad("bad table meta"));
        }
        let version = buf.get_u32_le();
        if !(1..=TABLE_META_VERSION).contains(&version) {
            return Err(bad("unsupported table meta version"));
        }
        if version >= 2 && buf.remaining() < 9 {
            return Err(bad("truncated meta"));
        }
        let k = buf.get_u32_le();
        let _n = buf.get_u32_le();
        let codec = if version >= 2 {
            RecordCodec::from_tag(buf.get_u8()).ok_or_else(|| bad("unknown codec tag"))?
        } else {
            // v1 predates the codec column: every record is plain.
            RecordCodec::Plain
        };
        let (peak_mem_bytes, spill_runs) = if version >= 3 {
            if buf.remaining() != 8 + 4 * k as usize {
                return Err(bad("truncated meta build history"));
            }
            let peak = buf.get_u64_le();
            let spills = (0..k).map(|_| buf.get_u32_le()).collect();
            (peak, spills)
        } else {
            (0, vec![0; k as usize])
        };
        let mut levels: Vec<Box<dyn LevelStore>> = Vec::with_capacity(k as usize);
        for h in 1..=k {
            if version >= 3 {
                levels.push(Box::new(crate::block::BlockLevel::open(
                    dir.join(format!("level-{h}.mtvb")),
                    codec,
                )?));
            } else {
                levels.push(Box::new(DiskLevel::open(
                    dir.join(format!("level-{h}.mtvt")),
                    codec,
                )?));
            }
        }
        Ok(CountTable {
            k,
            codec,
            levels,
            spill_runs,
            peak_mem_bytes,
        })
    }
}

/// Current `table.meta` format version. v1 had no codec tag (plain
/// records); v2 appended one byte with [`RecordCodec::tag`]; v3 switches
/// levels to sorted-block files (`level-<h>.mtvb`) and appends the build
/// history: `peak_mem_bytes: u64`, then `k × spill_runs: u32`.
pub const TABLE_META_VERSION: u32 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_treelet::{path_treelet, star_treelet, ColorSet, ColoredTreelet};

    fn record(seed: u64) -> Record {
        record_in(RecordCodec::Plain, seed)
    }

    fn record_in(codec: RecordCodec, seed: u64) -> Record {
        let s3 = star_treelet(3);
        let p3 = path_treelet(3);
        Record::from_counts_in(
            codec,
            vec![
                (
                    ColoredTreelet::new(s3, ColorSet(0b0111)).code(),
                    seed as u128 + 1,
                ),
                (
                    ColoredTreelet::new(p3, ColorSet(0b1101)).code(),
                    2 * seed as u128 + 3,
                ),
            ],
        )
    }

    #[test]
    fn memory_level_roundtrip() {
        let mut lvl = MemoryLevel::new(10, RecordCodec::Plain);
        lvl.put(3, record(5)).unwrap();
        lvl.put(7, record(9)).unwrap();
        lvl.put(1, Record::default()).unwrap(); // empty: dropped
        assert_eq!(lvl.record_count(), 2);
        assert_eq!(lvl.get(3).unwrap().total(), record(5).total());
        assert!(lvl.get(0).unwrap().is_empty());
        assert!(lvl.get(1).unwrap().is_empty());
    }

    #[test]
    fn disk_level_matches_memory() {
        for codec in RecordCodec::ALL {
            let dir = std::env::temp_dir().join(format!("motivo-table-test-disk-{codec}"));
            std::fs::create_dir_all(&dir).unwrap();
            let mut disk = DiskLevel::create(dir.join("lvl.mtvt"), 20, codec).unwrap();
            let mut mem = MemoryLevel::new(20, codec);
            for v in [0u32, 5, 19, 7] {
                disk.put(v, record_in(codec, v as u64)).unwrap();
                mem.put(v, record_in(codec, v as u64)).unwrap();
            }
            for v in 0..20 {
                let (d, m) = (disk.get(v).unwrap(), mem.get(v).unwrap());
                assert_eq!(d.total(), m.total(), "vertex {v}");
                assert_eq!(d.len(), m.len());
                let dp: Vec<_> = d.iter().collect();
                let mp: Vec<_> = m.iter().collect();
                assert_eq!(dp, mp);
            }
            assert_eq!(disk.record_count(), 4);
            assert!(disk.byte_size() > 0);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn count_table_assembly() {
        let kind = StorageKind::Memory;
        let mut l1 = kind.create_level(1, 5, RecordCodec::Plain).unwrap();
        let mut l2 = kind.create_level(2, 5, RecordCodec::Plain).unwrap();
        l1.put(0, record(1)).unwrap();
        l2.put(4, record(2)).unwrap();
        let table = CountTable::from_levels(vec![l1, l2], RecordCodec::Plain);
        assert_eq!(table.k(), 2);
        assert_eq!(table.codec(), RecordCodec::Plain);
        assert_eq!(table.get(1, 0).unwrap().total(), record(1).total());
        assert_eq!(table.get(2, 4).unwrap().total(), record(2).total());
        assert!(table.get(2, 0).unwrap().is_empty());
        assert_eq!(table.record_count(), 2);
        assert!(table.byte_size() > 0);
    }

    #[test]
    fn save_and_reopen_roundtrip() {
        for codec in RecordCodec::ALL {
            let dir = std::env::temp_dir().join(format!("motivo-table-test-save-{codec}"));
            std::fs::remove_dir_all(&dir).ok();
            let kind = StorageKind::Memory;
            let mut l1 = kind.create_level(1, 8, codec).unwrap();
            let mut l2 = kind.create_level(2, 8, codec).unwrap();
            for v in [0u32, 3, 7] {
                l1.put(v, record_in(codec, v as u64)).unwrap();
            }
            l2.put(5, record_in(codec, 42)).unwrap();
            let table = CountTable::from_levels(vec![l1, l2], codec);
            table.save_dir(&dir).unwrap();
            let back = CountTable::open_dir(&dir).unwrap();
            assert_eq!(back.k(), 2);
            assert_eq!(back.codec(), codec);
            for h in 1..=2u32 {
                for v in 0..8u32 {
                    let (a, b) = (table.get(h, v).unwrap(), back.get(h, v).unwrap());
                    assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
                }
            }
            assert_eq!(back.record_count(), 4);
            // Reopened level knows its vertex set (streamed, ascending).
            let ids: Vec<u32> = back
                .level(1)
                .scan()
                .map(|r| r.map(|(v, _)| v))
                .collect::<io::Result<_>>()
                .unwrap();
            assert_eq!(ids, vec![0, 3, 7]);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// A pre-codec v1 `table.meta` (no codec byte, `.mtvt` level files)
    /// opens as plain.
    #[test]
    fn v1_meta_opens_as_plain() {
        use bytes::BufMut;
        let dir = std::env::temp_dir().join("motivo-table-test-v1meta");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Write the old layout by hand: a DiskLevel pair plus a v1 meta.
        let mut l1 = DiskLevel::create(dir.join("level-1.mtvt"), 4, RecordCodec::Plain).unwrap();
        l1.put(2, record(6)).unwrap();
        l1.persist_index().unwrap();
        let mut meta = Vec::new();
        meta.put_slice(b"MTVT");
        meta.put_u32_le(1);
        meta.put_u32_le(1); // k
        meta.put_u32_le(4); // n
        std::fs::write(dir.join("table.meta"), meta).unwrap();
        let back = CountTable::open_dir(&dir).unwrap();
        assert_eq!(back.codec(), RecordCodec::Plain);
        assert_eq!(
            back.get(1, 2).unwrap().iter().collect::<Vec<_>>(),
            record(6).iter().collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A v2 directory (per-level `.mtvt` + `.idx` pairs, codec byte in the
    /// meta) still opens under the v3 reader, and re-saving it migrates
    /// the directory to block files, removing the stale v2 pair.
    #[test]
    fn v2_dir_opens_and_resave_migrates_to_v3() {
        use bytes::BufMut;
        for codec in RecordCodec::ALL {
            let dir = std::env::temp_dir().join(format!("motivo-table-test-v2meta-{codec}"));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            let mut l1 = DiskLevel::create(dir.join("level-1.mtvt"), 6, codec).unwrap();
            for v in [1u32, 4] {
                l1.put(v, record_in(codec, v as u64)).unwrap();
            }
            l1.persist_index().unwrap();
            let mut meta = Vec::new();
            meta.put_slice(b"MTVT");
            meta.put_u32_le(2);
            meta.put_u32_le(1); // k
            meta.put_u32_le(6); // n
            meta.put_u8(codec.tag());
            std::fs::write(dir.join("table.meta"), meta).unwrap();

            let back = CountTable::open_dir(&dir).unwrap();
            assert_eq!(back.codec(), codec);
            assert_eq!(back.record_count(), 2);
            assert_eq!(
                back.get(1, 4).unwrap().iter().collect::<Vec<_>>(),
                record_in(codec, 4).iter().collect::<Vec<_>>()
            );

            // Re-save: the directory converts to the v3 block layout.
            back.save_dir(&dir).unwrap();
            assert!(dir.join("level-1.mtvb").exists());
            assert!(!dir.join("level-1.mtvt").exists());
            assert!(!dir.join("level-1.mtvt.idx").exists());
            let v3 = CountTable::open_dir(&dir).unwrap();
            assert_eq!(v3.record_count(), 2);
            assert_eq!(
                v3.get(1, 1).unwrap().iter().collect::<Vec<_>>(),
                record_in(codec, 1).iter().collect::<Vec<_>>()
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Saving a plain-built table under a succinct-tagged table re-seals
    /// every record, and the reopened table serves identical contents.
    #[test]
    fn save_dir_recodes_to_table_codec() {
        let dir = std::env::temp_dir().join("motivo-table-test-recode");
        std::fs::remove_dir_all(&dir).ok();
        let mut l1 = MemoryLevel::new(6, RecordCodec::Succinct);
        for v in 0..6 {
            l1.put(v, record(v as u64 + 1)).unwrap(); // plain records
        }
        let table = CountTable::from_levels(vec![Box::new(l1)], RecordCodec::Succinct);
        table.save_dir(&dir).unwrap();
        let back = CountTable::open_dir(&dir).unwrap();
        assert_eq!(back.codec(), RecordCodec::Succinct);
        for v in 0..6 {
            assert_eq!(
                back.get(1, v).unwrap().iter().collect::<Vec<_>>(),
                record(v as u64 + 1).iter().collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_corrupt_index() {
        let dir = std::env::temp_dir().join("motivo-table-test-badidx");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut lvl = DiskLevel::create(dir.join("l.mtvt"), 4, RecordCodec::Plain).unwrap();
        lvl.put(1, record(3)).unwrap();
        lvl.persist_index().unwrap();
        // Truncate the index.
        let idx = dir.join("l.mtvt.idx");
        let data = std::fs::read(&idx).unwrap();
        std::fs::write(&idx, &data[..data.len() - 4]).unwrap();
        assert!(DiskLevel::open(dir.join("l.mtvt"), RecordCodec::Plain).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A truncated data file turns `get` into an `Err`, not a panic — the
    /// fallible `LevelStore` contract.
    #[test]
    fn corrupt_data_file_is_an_error_not_a_panic() {
        for codec in RecordCodec::ALL {
            let dir = std::env::temp_dir().join(format!("motivo-table-test-baddata-{codec}"));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            let data_path = dir.join("l.mtvt");
            {
                let mut lvl = DiskLevel::create(&data_path, 4, codec).unwrap();
                lvl.put(1, record_in(codec, 3)).unwrap();
                lvl.persist_index().unwrap();
            }
            // Truncate the data file after the level was persisted.
            let data = std::fs::read(&data_path).unwrap();
            std::fs::write(&data_path, &data[..data.len() - 1]).unwrap();
            let lvl = DiskLevel::open(&data_path, codec).unwrap();
            assert!(lvl.get(1).is_err(), "truncated record must error");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn disk_storage_kind_creates_files() {
        let dir = std::env::temp_dir().join("motivo-table-test-kind");
        std::fs::remove_dir_all(&dir).ok();
        let kind = StorageKind::Disk { dir: dir.clone() };
        let mut lvl = kind.create_level(3, 4, RecordCodec::Succinct).unwrap();
        lvl.put(2, record_in(RecordCodec::Succinct, 8)).unwrap();
        assert!(dir.join("level-3.mtvt").exists());
        assert_eq!(lvl.get(2).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The succinct codec's table-level footprint is a large fraction
    /// smaller than plain on identical contents.
    #[test]
    fn succinct_table_is_smaller() {
        let make = |codec: RecordCodec| {
            let mut lvl = MemoryLevel::new(64, codec);
            for v in 0..64u32 {
                lvl.put(v, record_in(codec, v as u64)).unwrap();
            }
            CountTable::from_levels(vec![Box::new(lvl)], codec)
        };
        let plain = make(RecordCodec::Plain);
        let succ = make(RecordCodec::Succinct);
        assert_eq!(plain.record_count(), succ.record_count());
        assert!(
            succ.byte_size() * 10 < plain.byte_size() * 6,
            "succinct {} vs plain {}",
            succ.byte_size(),
            plain.byte_size()
        );
    }
}
