//! Sorted immutable block storage for one table level.
//!
//! A sealed [`BlockLevel`] is a single file of ~16 KB *blocks*, each
//! holding consecutive vertices' encoded records with delta-compressed
//! vertex ids, followed by a per-block index (`first vertex, entry count,
//! offset, length`) and a checksummed footer. Reads are `O(log blocks)`
//! binary search over the index plus one positioned block read and an
//! in-block linear scan — the `O(log n + B)` contract of DESIGN.md §1.5.
//!
//! The build path is LSM-shaped: [`LevelStore::put`] appends to a
//! byte-budgeted memtable; when the budget would be exceeded the memtable
//! is sorted and spilled to a run file (see [`crate::merge`]); sealing
//! k-way-merges every run plus the in-memory tail into the final block
//! file. Peak build memory is therefore bounded by the budget no matter
//! how large the level grows.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! block*   — entries: varint Δvertex | varint payload_len | payload
//! index    — per block: u32 first_v | u32 entries | u64 offset | u32 len
//! footer   — u32 n | u32 records | u64 payload_bytes | u32 blocks
//!            | u32 crc32(index) | "MTVB"                       (28 bytes)
//! ```
//!
//! The first entry of a block has Δ = 0 from the indexed `first_v`;
//! later entries delta from their predecessor. Payloads are exactly the
//! bytes [`Record::encode`] produces, so block storage composes with both
//! codecs unchanged.

use crate::codec::{read_varint_u64, RecordCodec};
use crate::merge::{crc32, MergeIter, RunReader, RunWriter};
use crate::record::Record;
use crate::storage::{LevelProfile, LevelScan, LevelStore, RecordHandle};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Soft cap on a block's body: a block closes once it would grow past
/// this. A single oversized record still gets a (larger) block of its own.
pub const BLOCK_TARGET_BYTES: usize = 16 * 1024;

const FOOTER_LEN: u64 = 28;
const INDEX_ENTRY_LEN: u64 = 20;
const BLOCK_MAGIC: &[u8; 4] = b"MTVB";

/// Memtable accounting charge per buffered entry beyond the payload
/// itself (the `(u32, Vec<u8>)` bookkeeping).
const ENTRY_OVERHEAD: usize = 32;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[derive(Clone, Copy, Debug)]
struct BlockMeta {
    first_v: u32,
    entries: u32,
    offset: u64,
    len: u32,
}

/// Streams ascending `(vertex, encoded record)` pairs into a block file.
pub struct BlockWriter {
    out: BufWriter<File>,
    path: PathBuf,
    n: u32,
    index: Vec<BlockMeta>,
    cur: Vec<u8>,
    cur_first: u32,
    cur_last: u32,
    cur_entries: u32,
    offset: u64,
    records: u32,
    payload_bytes: u64,
    last_v: Option<u32>,
    codec: RecordCodec,
}

impl BlockWriter {
    pub fn create<P: AsRef<Path>>(path: P, n: u32, codec: RecordCodec) -> io::Result<BlockWriter> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(BlockWriter {
            out: BufWriter::new(file),
            path,
            n,
            index: Vec::new(),
            cur: Vec::with_capacity(BLOCK_TARGET_BYTES),
            cur_first: 0,
            cur_last: 0,
            cur_entries: 0,
            offset: 0,
            records: 0,
            payload_bytes: 0,
            last_v: None,
            codec,
        })
    }

    /// Appends one record's encoded bytes. Vertices must arrive strictly
    /// ascending — the writer is fed by sorted memtables or the merge.
    pub fn add_encoded(&mut self, v: u32, payload: &[u8]) -> io::Result<()> {
        if self.last_v.is_some_and(|p| v <= p) {
            return Err(invalid(format!(
                "block writer fed out of order: {v} after {:?}",
                self.last_v
            )));
        }
        self.last_v = Some(v);
        // Close the open block if this entry would push it past target.
        if self.cur_entries > 0 && self.cur.len() + payload.len() + 10 > BLOCK_TARGET_BYTES {
            self.flush_block()?;
        }
        let delta = if self.cur_entries == 0 {
            self.cur_first = v;
            0
        } else {
            (v - self.cur_last) as u64
        };
        crate::codec::put_varint_u64(&mut self.cur, delta);
        crate::codec::put_varint_u64(&mut self.cur, payload.len() as u64);
        self.cur.extend_from_slice(payload);
        self.cur_last = v;
        self.cur_entries += 1;
        self.records += 1;
        self.payload_bytes += payload.len() as u64;
        Ok(())
    }

    /// Encodes and appends a record (re-sealing it under the writer's
    /// codec if needed).
    pub fn add(&mut self, v: u32, rec: &Record) -> io::Result<()> {
        if rec.is_empty() {
            return Ok(());
        }
        let recoded;
        let rec = if rec.codec() == self.codec {
            rec
        } else {
            recoded = rec.recode(self.codec);
            &recoded
        };
        let mut payload = Vec::with_capacity(rec.encoded_len());
        rec.encode(&mut payload);
        self.add_encoded(v, &payload)
    }

    fn flush_block(&mut self) -> io::Result<()> {
        self.out.write_all(&self.cur)?;
        self.index.push(BlockMeta {
            first_v: self.cur_first,
            entries: self.cur_entries,
            offset: self.offset,
            len: self.cur.len() as u32,
        });
        self.offset += self.cur.len() as u64;
        self.cur.clear();
        self.cur_entries = 0;
        Ok(())
    }

    /// Writes the index and footer; returns the sealed read handle.
    pub fn finish(mut self) -> io::Result<SealedBlocks> {
        if self.cur_entries > 0 {
            self.flush_block()?;
        }
        let mut idx = Vec::with_capacity(self.index.len() * INDEX_ENTRY_LEN as usize);
        for m in &self.index {
            idx.extend_from_slice(&m.first_v.to_le_bytes());
            idx.extend_from_slice(&m.entries.to_le_bytes());
            idx.extend_from_slice(&m.offset.to_le_bytes());
            idx.extend_from_slice(&m.len.to_le_bytes());
        }
        self.out.write_all(&idx)?;
        self.out.write_all(&self.n.to_le_bytes())?;
        self.out.write_all(&self.records.to_le_bytes())?;
        self.out.write_all(&self.payload_bytes.to_le_bytes())?;
        self.out
            .write_all(&(self.index.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(&idx).to_le_bytes())?;
        self.out.write_all(BLOCK_MAGIC)?;
        self.out.flush()?;
        let file = self.out.into_inner().map_err(|e| e.into_error())?;
        Ok(SealedBlocks {
            file,
            path: self.path,
            codec: self.codec,
            n: self.n,
            index: self.index,
            records: self.records,
            payload_bytes: self.payload_bytes,
        })
    }
}

/// Read handle over a finished block file.
pub struct SealedBlocks {
    file: File,
    path: PathBuf,
    codec: RecordCodec,
    n: u32,
    index: Vec<BlockMeta>,
    records: u32,
    payload_bytes: u64,
}

impl SealedBlocks {
    /// Opens and validates a block file: footer magic, index checksum,
    /// and contiguous in-bounds block extents. Any truncation or
    /// corruption is rejected here, before a single record is served.
    pub fn open<P: AsRef<Path>>(path: P, codec: RecordCodec) -> io::Result<SealedBlocks> {
        use std::os::unix::fs::FileExt;
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < FOOTER_LEN {
            return Err(invalid("block file shorter than its footer"));
        }
        let mut footer = [0u8; FOOTER_LEN as usize];
        file.read_exact_at(&mut footer, file_len - FOOTER_LEN)?;
        if &footer[24..28] != BLOCK_MAGIC {
            return Err(invalid("bad block file magic"));
        }
        let n = u32::from_le_bytes(footer[0..4].try_into().unwrap());
        let records = u32::from_le_bytes(footer[4..8].try_into().unwrap());
        let payload_bytes = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let nblocks = u32::from_le_bytes(footer[16..20].try_into().unwrap()) as u64;
        let index_crc = u32::from_le_bytes(footer[20..24].try_into().unwrap());
        let index_len = nblocks * INDEX_ENTRY_LEN;
        if file_len < FOOTER_LEN + index_len {
            return Err(invalid("block index extends past file start"));
        }
        let data_len = file_len - FOOTER_LEN - index_len;
        let mut idx = vec![0u8; index_len as usize];
        file.read_exact_at(&mut idx, data_len)?;
        if crc32(&idx) != index_crc {
            return Err(invalid("block index fails its checksum"));
        }
        let mut index = Vec::with_capacity(nblocks as usize);
        let mut expect_offset = 0u64;
        let mut prev_first: Option<u32> = None;
        for chunk in idx.chunks_exact(INDEX_ENTRY_LEN as usize) {
            let m = BlockMeta {
                first_v: u32::from_le_bytes(chunk[0..4].try_into().unwrap()),
                entries: u32::from_le_bytes(chunk[4..8].try_into().unwrap()),
                offset: u64::from_le_bytes(chunk[8..16].try_into().unwrap()),
                len: u32::from_le_bytes(chunk[16..20].try_into().unwrap()),
            };
            if m.offset != expect_offset || m.entries == 0 {
                return Err(invalid("block index entries not contiguous"));
            }
            if prev_first.is_some_and(|p| m.first_v <= p) {
                return Err(invalid("block index not sorted by vertex"));
            }
            prev_first = Some(m.first_v);
            expect_offset += m.len as u64;
            index.push(m);
        }
        if expect_offset != data_len {
            return Err(invalid("block data region length mismatch"));
        }
        Ok(SealedBlocks {
            file,
            path,
            codec,
            n,
            index,
            records,
            payload_bytes,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    fn read_block(&self, m: &BlockMeta) -> io::Result<Vec<u8>> {
        use std::os::unix::fs::FileExt;
        let mut body = vec![0u8; m.len as usize];
        self.file.read_exact_at(&mut body, m.offset)?;
        Ok(body)
    }

    /// Walks a block body, calling `f(vertex, payload)` per entry until it
    /// returns `false`.
    fn walk(
        &self,
        m: &BlockMeta,
        body: &[u8],
        mut f: impl FnMut(u32, &[u8]) -> bool,
    ) -> io::Result<()> {
        let mut pos = 0usize;
        let mut v = m.first_v;
        for i in 0..m.entries {
            let delta = read_varint_u64(body, &mut pos)
                .ok_or_else(|| invalid("corrupt block entry delta"))?;
            let len = read_varint_u64(body, &mut pos)
                .ok_or_else(|| invalid("corrupt block entry length"))?
                as usize;
            if pos + len > body.len() {
                return Err(invalid("block entry payload overruns block"));
            }
            if i > 0 {
                v = v
                    .checked_add(delta as u32)
                    .ok_or_else(|| invalid("block vertex overflow"))?;
            }
            if !f(v, &body[pos..pos + len]) {
                return Ok(());
            }
            pos += len;
        }
        Ok(())
    }

    fn decode(&self, v: u32, payload: &[u8]) -> io::Result<Record> {
        Record::decode(self.codec, &mut &payload[..]).ok_or_else(|| {
            invalid(format!(
                "corrupt record for vertex {v} in {}",
                self.path.display()
            ))
        })
    }

    fn get(&self, v: u32) -> io::Result<RecordHandle<'_>> {
        let at = self.index.partition_point(|m| m.first_v <= v);
        if at == 0 {
            return Ok(RecordHandle::Owned(Record::default()));
        }
        let m = self.index[at - 1];
        let body = self.read_block(&m)?;
        let mut hit: Option<Vec<u8>> = None;
        self.walk(&m, &body, |ev, payload| {
            if ev == v {
                hit = Some(payload.to_vec());
                false
            } else {
                ev < v
            }
        })?;
        Ok(match hit {
            Some(payload) => RecordHandle::Owned(self.decode(v, &payload)?),
            None => RecordHandle::Owned(Record::default()),
        })
    }

    /// Streams `(vertex, record)` ascending, reading one block at a time.
    fn scan(&self) -> LevelScan<'_> {
        let mut next_block = 0usize;
        let mut pending = Vec::new().into_iter();
        Box::new(std::iter::from_fn(move || loop {
            if let Some((v, rec)) = pending.next() {
                return Some(Ok((v, RecordHandle::Owned(rec))));
            }
            if next_block >= self.index.len() {
                return None;
            }
            let m = self.index[next_block];
            next_block += 1;
            let body = match self.read_block(&m) {
                Ok(b) => b,
                Err(e) => return Some(Err(e)),
            };
            let mut entries: Vec<(u32, Record)> = Vec::with_capacity(m.entries as usize);
            let mut decode_err = None;
            let walked = self.walk(&m, &body, |v, payload| match self.decode(v, payload) {
                Ok(rec) => {
                    entries.push((v, rec));
                    true
                }
                Err(e) => {
                    decode_err = Some(e);
                    false
                }
            });
            if let Err(e) = walked {
                return Some(Err(e));
            }
            if let Some(e) = decode_err {
                return Some(Err(e));
            }
            pending = entries.into_iter();
        }))
    }
}

#[derive(Default)]
struct Building {
    mem: Vec<(u32, Vec<u8>)>,
    mem_bytes: usize,
    runs: Vec<PathBuf>,
    spill_runs: u32,
    peak_mem_bytes: u64,
    records: u32,
    payload_bytes: u64,
}

enum State {
    Building(Building),
    Sealed {
        blocks: SealedBlocks,
        spill_runs: u32,
        peak_mem_bytes: u64,
    },
}

/// One table level backed by sorted immutable blocks, built through a
/// byte-budgeted memtable with spill-and-merge (module docs).
pub struct BlockLevel {
    path: PathBuf,
    codec: RecordCodec,
    n: u32,
    mem_budget: usize,
    state: State,
}

impl BlockLevel {
    /// Creates a build-mode level writing to `path`. `mem_budget == 0`
    /// means unbudgeted (a single sorted run in memory, no spills).
    pub fn create<P: AsRef<Path>>(
        path: P,
        n: u32,
        codec: RecordCodec,
        mem_budget: usize,
    ) -> io::Result<BlockLevel> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(BlockLevel {
            path,
            codec,
            n,
            mem_budget: if mem_budget == 0 {
                usize::MAX
            } else {
                mem_budget
            },
            state: State::Building(Building::default()),
        })
    }

    /// Opens a sealed block file written by a previous build or
    /// [`crate::CountTable::save_dir`].
    pub fn open<P: AsRef<Path>>(path: P, codec: RecordCodec) -> io::Result<BlockLevel> {
        let blocks = SealedBlocks::open(&path, codec)?;
        Ok(BlockLevel {
            path: path.as_ref().to_path_buf(),
            codec,
            n: blocks.n,
            mem_budget: usize::MAX,
            state: State::Sealed {
                blocks,
                spill_runs: 0,
                peak_mem_bytes: 0,
            },
        })
    }

    /// Path of the backing block file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Codec the level's records are encoded under.
    pub fn codec(&self) -> RecordCodec {
        self.codec
    }

    fn run_path(&self, i: u32) -> PathBuf {
        let mut os = self.path.clone().into_os_string();
        os.push(format!(".run{i}"));
        PathBuf::from(os)
    }

    fn spill(&mut self) -> io::Result<()> {
        let run_path = {
            let State::Building(b) = &self.state else {
                unreachable!("spill outside build")
            };
            self.run_path(b.spill_runs)
        };
        let State::Building(b) = &mut self.state else {
            unreachable!()
        };
        b.mem.sort_unstable_by_key(|e| e.0);
        let mut w = RunWriter::create(&run_path)?;
        for (v, payload) in &b.mem {
            w.push(*v, payload)?;
        }
        b.runs.push(w.finish()?);
        b.spill_runs += 1;
        b.mem.clear();
        b.mem_bytes = 0;
        Ok(())
    }
}

impl LevelStore for BlockLevel {
    fn put(&mut self, v: u32, rec: Record) -> io::Result<()> {
        if rec.is_empty() {
            return Ok(());
        }
        let codec = self.codec;
        let budget = self.mem_budget;
        let State::Building(b) = &mut self.state else {
            return Err(invalid("put on a sealed block level"));
        };
        let rec = if rec.codec() == codec {
            rec
        } else {
            rec.recode(codec)
        };
        let mut payload = Vec::with_capacity(rec.encoded_len());
        rec.encode(&mut payload);
        let cost = payload.len() + ENTRY_OVERHEAD;
        if !b.mem.is_empty() && b.mem_bytes + cost > budget {
            self.spill()?;
        }
        let State::Building(b) = &mut self.state else {
            unreachable!()
        };
        b.mem_bytes += cost;
        b.peak_mem_bytes = b.peak_mem_bytes.max(b.mem_bytes as u64);
        b.records += 1;
        b.payload_bytes += payload.len() as u64;
        b.mem.push((v, payload));
        Ok(())
    }

    /// Merges every spilled run plus the in-memory tail into the final
    /// block file. Idempotent: sealing a sealed level is a no-op.
    fn seal(&mut self) -> io::Result<()> {
        let State::Building(_) = &self.state else {
            return Ok(());
        };
        let placeholder = State::Building(Building::default());
        let State::Building(mut b) = std::mem::replace(&mut self.state, placeholder) else {
            unreachable!()
        };
        b.mem.sort_unstable_by_key(|e| e.0);
        let mut writer = BlockWriter::create(&self.path, self.n, self.codec)?;
        if b.runs.is_empty() {
            for (v, payload) in &b.mem {
                writer.add_encoded(*v, payload)?;
            }
        } else {
            let mut runs: Vec<Box<dyn Iterator<Item = crate::merge::RunItem>>> =
                Vec::with_capacity(b.runs.len() + 1);
            for p in &b.runs {
                runs.push(Box::new(RunReader::open(p)?));
            }
            runs.push(Box::new(b.mem.into_iter().map(Ok)));
            for item in MergeIter::new(runs)? {
                let (v, payload) = item?;
                writer.add_encoded(v, &payload)?;
            }
        }
        let blocks = writer.finish()?;
        for p in &b.runs {
            std::fs::remove_file(p).ok();
        }
        self.state = State::Sealed {
            blocks,
            spill_runs: b.spill_runs,
            peak_mem_bytes: b.peak_mem_bytes,
        };
        Ok(())
    }

    fn get(&self, v: u32) -> io::Result<RecordHandle<'_>> {
        match &self.state {
            State::Sealed { blocks, .. } => blocks.get(v),
            State::Building(_) => Err(invalid("get on an unsealed block level")),
        }
    }

    fn byte_size(&self) -> usize {
        match &self.state {
            State::Sealed { blocks, .. } => blocks.payload_bytes as usize,
            State::Building(b) => b.payload_bytes as usize,
        }
    }

    fn record_count(&self) -> usize {
        match &self.state {
            State::Sealed { blocks, .. } => blocks.records as usize,
            State::Building(b) => b.records as usize,
        }
    }

    fn num_vertices(&self) -> u32 {
        self.n
    }

    fn scan(&self) -> LevelScan<'_> {
        match &self.state {
            State::Sealed { blocks, .. } => blocks.scan(),
            State::Building(_) => Box::new(std::iter::once(Err(invalid(
                "scan on an unsealed block level",
            )))),
        }
    }

    fn profile(&self) -> LevelProfile {
        match &self.state {
            State::Sealed {
                blocks,
                spill_runs,
                peak_mem_bytes,
            } => LevelProfile {
                blocks: blocks.index.len() as u32,
                spill_runs: *spill_runs,
                peak_mem_bytes: *peak_mem_bytes,
            },
            State::Building(b) => LevelProfile {
                blocks: 0,
                spill_runs: b.spill_runs,
                peak_mem_bytes: b.peak_mem_bytes,
            },
        }
    }
}

impl Drop for BlockLevel {
    fn drop(&mut self) {
        // An abandoned build leaves no run files behind.
        if let State::Building(b) = &self.state {
            for p in &b.runs {
                std::fs::remove_file(p).ok();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motivo_treelet::{path_treelet, star_treelet, ColorSet, ColoredTreelet};

    fn record_in(codec: RecordCodec, seed: u64) -> Record {
        let s3 = star_treelet(3);
        let p3 = path_treelet(3);
        Record::from_counts_in(
            codec,
            vec![
                (
                    ColoredTreelet::new(s3, ColorSet(0b0111)).code(),
                    seed as u128 + 1,
                ),
                (
                    ColoredTreelet::new(p3, ColorSet(0b1101)).code(),
                    2 * seed as u128 + 3,
                ),
            ],
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("motivo-block-test-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn unbudgeted_build_roundtrips_and_matches_memory() {
        for codec in RecordCodec::ALL {
            let dir = tmp(&format!("rt-{codec}"));
            let mut blk = BlockLevel::create(dir.join("l.mtvb"), 40, codec, 0).unwrap();
            let mut mem = crate::MemoryLevel::new(40, codec);
            for v in [3u32, 0, 17, 39, 9] {
                blk.put(v, record_in(codec, v as u64)).unwrap();
                mem.put(v, record_in(codec, v as u64)).unwrap();
            }
            assert!(blk.get(3).is_err(), "reads before seal must fail");
            blk.seal().unwrap();
            blk.seal().unwrap(); // idempotent
            for v in 0..40u32 {
                let (a, b) = (blk.get(v).unwrap(), mem.get(v).unwrap());
                assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
            }
            assert_eq!(blk.record_count(), 5);
            assert_eq!(blk.profile().spill_runs, 0);
            assert!(blk.profile().blocks >= 1);
            let ids: Vec<u32> = blk.scan().map(|r| r.unwrap().0).collect();
            assert_eq!(ids, vec![0, 3, 9, 17, 39]);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn tiny_budget_spills_and_serves_identical_records() {
        for codec in RecordCodec::ALL {
            let dir = tmp(&format!("spill-{codec}"));
            // ~100 B budget on ~60 B entries: spills every other put.
            let mut blk = BlockLevel::create(dir.join("l.mtvb"), 200, codec, 100).unwrap();
            let mut mem = crate::MemoryLevel::new(200, codec);
            // Unsorted arrival order exercises run-sorting and the merge.
            for v in (0..200u32).map(|i| (i * 73) % 200) {
                blk.put(v, record_in(codec, v as u64)).unwrap();
                mem.put(v, record_in(codec, v as u64)).unwrap();
            }
            let spills_before = blk.profile().spill_runs;
            assert!(spills_before >= 2, "want ≥2 spills, got {spills_before}");
            assert!(blk.profile().peak_mem_bytes <= 200, "budget respected");
            blk.seal().unwrap();
            assert_eq!(blk.profile().spill_runs, spills_before);
            for v in 0..200u32 {
                assert_eq!(
                    blk.get(v).unwrap().iter().collect::<Vec<_>>(),
                    mem.get(v).unwrap().iter().collect::<Vec<_>>(),
                    "vertex {v}"
                );
            }
            // Run files are cleaned up after the merge.
            let runs: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains(".run"))
                .collect();
            assert!(runs.is_empty(), "leftover runs: {runs:?}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn budgeted_and_unbudgeted_block_files_are_byte_identical() {
        let dir = tmp("identical");
        for codec in RecordCodec::ALL {
            let a_path = dir.join(format!("a-{codec}.mtvb"));
            let b_path = dir.join(format!("b-{codec}.mtvb"));
            let mut a = BlockLevel::create(&a_path, 300, codec, 0).unwrap();
            let mut b = BlockLevel::create(&b_path, 300, codec, 128).unwrap();
            for v in (0..300u32).rev() {
                a.put(v, record_in(codec, v as u64 * 7)).unwrap();
                b.put(v, record_in(codec, v as u64 * 7)).unwrap();
            }
            a.seal().unwrap();
            b.seal().unwrap();
            assert!(b.profile().spill_runs >= 2);
            let (fa, fb) = (
                std::fs::read(&a_path).unwrap(),
                std::fs::read(&b_path).unwrap(),
            );
            assert_eq!(fa, fb, "{codec}: spilled build must be byte-identical");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_matches_and_torn_files_are_rejected() {
        let dir = tmp("reopen");
        let path = dir.join("l.mtvb");
        let mut blk = BlockLevel::create(&path, 50, RecordCodec::Succinct, 0).unwrap();
        for v in 0..50u32 {
            blk.put(v, record_in(RecordCodec::Succinct, v as u64))
                .unwrap();
        }
        blk.seal().unwrap();
        let back = BlockLevel::open(&path, RecordCodec::Succinct).unwrap();
        assert_eq!(back.record_count(), 50);
        for v in 0..50u32 {
            assert_eq!(
                back.get(v).unwrap().iter().collect::<Vec<_>>(),
                blk.get(v).unwrap().iter().collect::<Vec<_>>()
            );
        }
        drop(back);
        let full = std::fs::read(&path).unwrap();
        for cut in [1usize, 10, full.len() / 2] {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            assert!(
                BlockLevel::open(&path, RecordCodec::Succinct).is_err(),
                "truncated by {cut} must be rejected"
            );
        }
        // Flip one index byte: checksum must catch it.
        let mut flipped = full.clone();
        let idx_start = flipped.len() - 28 - 20; // one block min
        flipped[idx_start] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(BlockLevel::open(&path, RecordCodec::Succinct).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_block_levels_split_and_search() {
        // Big records force several blocks; lookups must hit the right one.
        let dir = tmp("multiblock");
        let codec = RecordCodec::Plain;
        let mut blk = BlockLevel::create(dir.join("l.mtvb"), 5000, codec, 0).unwrap();
        let big: Vec<(u64, u128)> = {
            use motivo_treelet::all_treelets;
            let mut keys = Vec::new();
            for h in 2..=4u32 {
                for &t in all_treelets(h).iter() {
                    for colors in ColorSet::full(6).subsets_of_size(h) {
                        keys.push(ColoredTreelet::new(t, colors).code());
                    }
                }
            }
            keys.sort_unstable();
            keys.dedup();
            keys.into_iter().take(60).map(|k| (k, 5u128)).collect()
        };
        assert_eq!(big.len(), 60);
        for v in (0..5000u32).step_by(3) {
            blk.put(v, Record::from_counts_in(codec, big.clone()))
                .unwrap();
        }
        blk.seal().unwrap();
        assert!(
            blk.profile().blocks > 10,
            "blocks: {}",
            blk.profile().blocks
        );
        for v in [0u32, 1, 2, 3, 2499, 2500, 4998, 4999] {
            let rec = blk.get(v).unwrap();
            if v % 3 == 0 {
                assert_eq!(rec.len(), big.len(), "vertex {v}");
            } else {
                assert!(rec.is_empty(), "vertex {v}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
