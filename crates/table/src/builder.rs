//! Per-vertex accumulation during the build-up phase.
//!
//! "While being built, the record of `v` is actually stored in a hash
//! table, which allows for efficient insertions. However, immediately after
//! completion it is stored … in the compact form" (§3.1). The hash table
//! uses a bespoke multiplicative hasher for the 48-bit keys — integer keys
//! make SipHash pure overhead.

use crate::record::Record;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-multiplicative hasher for packed treelet keys.
#[derive(Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("KeyHasher only hashes u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type KeyMap = HashMap<u64, u128, BuildHasherDefault<KeyHasher>>;

/// Accumulates `(key, count)` contributions for one vertex, then freezes
/// into a compact sorted [`Record`].
#[derive(Default)]
pub struct RecordBuilder {
    map: KeyMap,
}

impl RecordBuilder {
    /// An empty builder.
    pub fn new() -> RecordBuilder {
        RecordBuilder::default()
    }

    /// Adds `count` to the accumulator of `key`.
    #[inline]
    pub fn add(&mut self, key: u64, count: u128) {
        if count > 0 {
            *self.map.entry(key).or_insert(0) += count;
        }
    }

    /// Number of distinct keys so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drains into raw pairs (unsorted) for callers that post-process
    /// counts (e.g. the β division of Eq. 1) before freezing.
    pub fn into_pairs(self) -> Vec<(u64, u128)> {
        self.map.into_iter().collect()
    }

    /// Freezes into the compact sorted record (plain codec), releasing the
    /// hash table. Callers that seal under another codec post-process the
    /// pairs (e.g. the β division) and use [`Record::from_counts_in`].
    pub fn freeze(self) -> Record {
        Record::from_counts(self.into_pairs())
    }

    /// Merges another builder into this one (used when multiple threads
    /// split one high-degree vertex's neighbor list, §3.3).
    pub fn absorb(&mut self, other: RecordBuilder) {
        for (k, c) in other.map {
            *self.map.entry(k).or_insert(0) += c;
        }
    }

    /// Clears for reuse (workhorse pattern: one builder per worker thread).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_freezes_sorted() {
        let mut b = RecordBuilder::new();
        b.add(30 << 16 | 1, 4);
        b.add(10 << 16 | 2, 1);
        b.add(30 << 16 | 1, 6);
        b.add(20 << 16 | 4, 0); // ignored
        assert_eq!(b.len(), 2);
        let pairs = {
            let mut p = b.into_pairs();
            p.sort_unstable();
            p
        };
        assert_eq!(pairs, vec![(10 << 16 | 2, 1), (30 << 16 | 1, 10)]);
    }

    #[test]
    fn absorb_merges_counts() {
        let mut a = RecordBuilder::new();
        a.add(1, 5);
        a.add(2, 1);
        let mut b = RecordBuilder::new();
        b.add(2, 2);
        b.add(3, 7);
        a.absorb(b);
        let mut pairs = a.into_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 5), (2, 3), (3, 7)]);
    }

    #[test]
    fn freeze_produces_valid_record() {
        let mut b = RecordBuilder::new();
        // Valid colored-treelet keys: edge tree "10" with 2-color sets.
        let edge = motivo_treelet::path_treelet(2);
        let k1 = (edge.code() as u64) << 16 | 0b0011;
        let k2 = (edge.code() as u64) << 16 | 0b0101;
        b.add(k2, 3);
        b.add(k1, 2);
        let rec = b.freeze();
        assert_eq!(rec.total(), 5);
        assert_eq!(rec.len(), 2);
    }
}
