//! Sorted-run files and the k-way streaming merge that compacts them.
//!
//! When a [`crate::BlockLevel`] build exceeds its memtable budget it spills
//! the sorted memtable to a *run file* and continues; sealing the level
//! merges every run (plus the final in-memory tail) into the immutable
//! block file with [`MergeIter`], a streaming k-way merge. Peak memory is
//! therefore one memtable plus one in-flight frame per run, never the
//! whole level.
//!
//! Run file layout (all integers little-endian):
//!
//! ```text
//! "MTVR" | u32 version=1
//! frame*  :=  u32 vertex | u32 len | u32 crc32(payload) | payload bytes
//! end     :=  u32 0xFFFF_FFFF | u32 frame_count | u32 crc32(frame_count LE)
//! ```
//!
//! The end marker is mandatory: a reader that hits EOF without it reports
//! the run as torn, so a crash mid-spill can never serve partial data.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

pub(crate) const RUN_MAGIC: &[u8; 4] = b"MTVR";
pub(crate) const RUN_VERSION: u32 = 1;
const END_SENTINEL: u32 = u32::MAX;

/// CRC32 (IEEE 802.3). Private copy: `motivo-core` owns the shared one but
/// depends on this crate, so the table layer keeps its own 25 lines.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for &b in data {
        state ^= b as u32;
        for _ in 0..8 {
            state = if state & 1 != 0 {
                0xEDB8_8320 ^ (state >> 1)
            } else {
                state >> 1
            };
        }
    }
    state ^ 0xFFFF_FFFF
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// One run frame as the merge sees it: a vertex and its encoded record,
/// or the I/O error that ended the run.
pub type RunItem = io::Result<(u32, Vec<u8>)>;

/// Writes one sorted run: `(vertex, encoded record)` frames in ascending
/// vertex order, finished by an end marker.
pub struct RunWriter {
    out: BufWriter<File>,
    path: PathBuf,
    frames: u32,
    last_v: Option<u32>,
}

impl RunWriter {
    pub fn create(path: impl Into<PathBuf>) -> io::Result<RunWriter> {
        let path = path.into();
        let file = File::create(&path)?;
        let mut out = BufWriter::new(file);
        out.write_all(RUN_MAGIC)?;
        out.write_all(&RUN_VERSION.to_le_bytes())?;
        Ok(RunWriter {
            out,
            path,
            frames: 0,
            last_v: None,
        })
    }

    /// Appends one frame. Vertices must arrive strictly ascending.
    pub fn push(&mut self, v: u32, payload: &[u8]) -> io::Result<()> {
        if v == END_SENTINEL {
            return Err(invalid("vertex id u32::MAX is reserved"));
        }
        if self.last_v.is_some_and(|p| v <= p) {
            return Err(invalid(format!(
                "run frames out of order: {v} after {:?}",
                self.last_v
            )));
        }
        self.last_v = Some(v);
        self.out.write_all(&v.to_le_bytes())?;
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(payload).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.frames += 1;
        Ok(())
    }

    /// Writes the end marker and flushes; without it the run reads as torn.
    pub fn finish(mut self) -> io::Result<PathBuf> {
        let count = self.frames;
        self.out.write_all(&END_SENTINEL.to_le_bytes())?;
        self.out.write_all(&count.to_le_bytes())?;
        self.out
            .write_all(&crc32(&count.to_le_bytes()).to_le_bytes())?;
        self.out.flush()?;
        Ok(self.path)
    }
}

/// Sequential reader over one run file; validates the header, every frame
/// CRC, and the end marker. Any truncation or corruption surfaces as an
/// `Err` item — a torn run is never silently served as a short run.
pub struct RunReader {
    input: BufReader<File>,
    frames_seen: u32,
    state: RunState,
}

enum RunState {
    Reading,
    Finished,
    Failed,
}

impl RunReader {
    pub fn open(path: &Path) -> io::Result<RunReader> {
        let file = File::open(path)?;
        let mut input = BufReader::new(file);
        let mut header = [0u8; 8];
        input
            .read_exact(&mut header)
            .map_err(|_| invalid("run file shorter than its header"))?;
        if &header[..4] != RUN_MAGIC {
            return Err(invalid("bad run magic"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != RUN_VERSION {
            return Err(invalid(format!("unsupported run version {version}")));
        }
        Ok(RunReader {
            input,
            frames_seen: 0,
            state: RunState::Reading,
        })
    }

    fn next_frame(&mut self) -> io::Result<Option<(u32, Vec<u8>)>> {
        let mut head = [0u8; 12];
        self.input
            .read_exact(&mut head)
            .map_err(|_| invalid("torn run file: EOF before end marker"))?;
        let v = u32::from_le_bytes(head[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(head[4..8].try_into().unwrap());
        let crc = u32::from_le_bytes(head[8..12].try_into().unwrap());
        if v == END_SENTINEL {
            if len != self.frames_seen {
                return Err(invalid(format!(
                    "run end marker counts {len} frames, read {}",
                    self.frames_seen
                )));
            }
            if crc != crc32(&len.to_le_bytes()) {
                return Err(invalid("run end marker checksum mismatch"));
            }
            let mut rest = [0u8; 1];
            if self.input.read(&mut rest)? != 0 {
                return Err(invalid("trailing bytes after run end marker"));
            }
            return Ok(None);
        }
        let mut payload = vec![0u8; len as usize];
        self.input
            .read_exact(&mut payload)
            .map_err(|_| invalid("torn run file: frame payload truncated"))?;
        if crc32(&payload) != crc {
            return Err(invalid(format!("run frame for vertex {v} fails its CRC")));
        }
        self.frames_seen += 1;
        Ok(Some((v, payload)))
    }
}

impl Iterator for RunReader {
    type Item = io::Result<(u32, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.state {
            RunState::Reading => match self.next_frame() {
                Ok(Some(item)) => Some(Ok(item)),
                Ok(None) => {
                    self.state = RunState::Finished;
                    None
                }
                Err(e) => {
                    self.state = RunState::Failed;
                    Some(Err(e))
                }
            },
            RunState::Finished | RunState::Failed => None,
        }
    }
}

/// Streaming k-way merge over ascending `(vertex, payload)` runs.
///
/// Yields vertices in ascending order exactly once each. When the same
/// vertex appears in several runs — or several times within one run — the
/// *latest* occurrence wins (highest run index; within a run, the last
/// frame), matching "concatenate runs in order, stable-sort by key, keep
/// the last duplicate". An `Err` from any run is yielded once and fuses
/// the iterator.
pub struct MergeIter<I> {
    runs: Vec<I>,
    // Min-heap emulated with a sorted-descending Vec: (vertex, run index,
    // payload) — run counts are small (one per spill), so O(runs) inserts
    // beat heap bookkeeping complexity.
    heads: Vec<(u32, usize, Vec<u8>)>,
    failed: bool,
}

impl<I> MergeIter<I>
where
    I: Iterator<Item = io::Result<(u32, Vec<u8>)>>,
{
    pub fn new(mut runs: Vec<I>) -> io::Result<MergeIter<I>> {
        let mut heads = Vec::with_capacity(runs.len());
        for (idx, run) in runs.iter_mut().enumerate() {
            if let Some(first) = run.next() {
                let (v, payload) = first?;
                heads.push((v, idx, payload));
            }
        }
        let mut merge = MergeIter {
            runs,
            heads,
            failed: false,
        };
        merge.sort_heads();
        Ok(merge)
    }

    /// Descending (vertex, run) order so the minimum lives at the tail.
    fn sort_heads(&mut self) {
        self.heads
            .sort_unstable_by_key(|h| std::cmp::Reverse((h.0, h.1)));
    }

    /// Pulls the next frame of `run` back into the head set.
    fn refill(&mut self, run: usize) -> io::Result<()> {
        if let Some(item) = self.runs[run].next() {
            let (v, payload) = item?;
            let at = self
                .heads
                .partition_point(|h| (h.0, h.1) > (v, run))
                .min(self.heads.len());
            self.heads.insert(at, (v, run, payload));
        }
        Ok(())
    }

    fn next_merged(&mut self) -> io::Result<Option<(u32, Vec<u8>)>> {
        let Some((v, run, payload)) = self.heads.pop() else {
            return Ok(None);
        };
        let mut winner = (run, payload);
        self.refill(run)?;
        // Later runs (and later frames within a run) override earlier ones.
        while self.heads.last().is_some_and(|h| h.0 == v) {
            let (_, run, payload) = self.heads.pop().unwrap();
            if run >= winner.0 {
                winner = (run, payload);
            }
            self.refill(run)?;
        }
        Ok(Some((v, winner.1)))
    }
}

impl<I> Iterator for MergeIter<I>
where
    I: Iterator<Item = io::Result<(u32, Vec<u8>)>>,
{
    type Item = io::Result<(u32, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_merged() {
            Ok(Some(item)) => Some(Ok(item)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Convenience: merge in-memory runs (used by tests and the sealed tail).
pub fn mem_run(entries: Vec<(u32, Vec<u8>)>) -> std::vec::IntoIter<io::Result<(u32, Vec<u8>)>> {
    entries.into_iter().map(Ok).collect::<Vec<_>>().into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(m: MergeIter<impl Iterator<Item = io::Result<(u32, Vec<u8>)>>>) -> Vec<(u32, u8)> {
        m.map(|r| r.unwrap()).map(|(v, p)| (v, p[0])).collect()
    }

    #[test]
    fn merges_disjoint_runs_in_order() {
        let a = mem_run(vec![(0, vec![1]), (4, vec![2])]);
        let b = mem_run(vec![(1, vec![3]), (9, vec![4])]);
        let m = MergeIter::new(vec![a, b]).unwrap();
        assert_eq!(collect(m), vec![(0, 1), (1, 3), (4, 2), (9, 4)]);
    }

    #[test]
    fn later_run_wins_on_duplicate_vertex() {
        let a = mem_run(vec![(3, vec![10]), (5, vec![11])]);
        let b = mem_run(vec![(3, vec![20])]);
        let m = MergeIter::new(vec![a, b]).unwrap();
        assert_eq!(collect(m), vec![(3, 20), (5, 11)]);
    }

    #[test]
    fn empty_and_single_runs() {
        let m = MergeIter::new(vec![mem_run(vec![]), mem_run(vec![(2, vec![7])])]).unwrap();
        assert_eq!(collect(m), vec![(2, 7)]);
        let m: MergeIter<std::vec::IntoIter<RunItem>> = MergeIter::new(vec![]).unwrap();
        assert_eq!(collect(m), vec![]);
    }

    #[test]
    fn run_file_roundtrip_and_torn_detection() {
        let dir = std::env::temp_dir().join(format!("motivo-run-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.run");
        let mut w = RunWriter::create(&path).unwrap();
        w.push(1, b"alpha").unwrap();
        w.push(7, b"beta").unwrap();
        w.finish().unwrap();
        let got: Vec<_> = RunReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, vec![(1, b"alpha".to_vec()), (7, b"beta".to_vec())]);

        // Truncate off the end marker: the reader must error, not succeed.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 6]).unwrap();
        let items: Vec<_> = RunReader::open(&path).unwrap().collect();
        assert!(
            items.last().unwrap().is_err(),
            "torn run must surface an Err"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_rejects_out_of_order_frames() {
        let dir = std::env::temp_dir().join(format!("motivo-run-order-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = RunWriter::create(dir.join("b.run")).unwrap();
        w.push(5, b"x").unwrap();
        assert!(w.push(5, b"y").is_err());
        assert!(w.push(4, b"z").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
