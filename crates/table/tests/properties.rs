//! Property tests for the count-table records: the cumulative layout must
//! answer every query exactly like a naive reference map, and the plain
//! and succinct codecs must be observationally identical — same totals,
//! point counts, per-shape ranges, selections, and iteration order on
//! arbitrary records. The codec changes bytes, never counts.

use motivo_table::{Record, RecordCodec};
use motivo_treelet::{all_treelets, ColorSet, ColoredTreelet};
use proptest::prelude::*;

/// Random record contents: a subset of valid colored-treelet keys (sizes
/// 2..=4 over 6 colors) with counts in 1..100.
fn record_strategy() -> impl Strategy<Value = Vec<(ColoredTreelet, u128)>> {
    let keys: Vec<ColoredTreelet> = {
        let mut v = Vec::new();
        for h in 2..=4u32 {
            for &t in all_treelets(h).iter() {
                for colors in ColorSet::full(6).subsets_of_size(h) {
                    v.push(ColoredTreelet::new(t, colors));
                }
            }
        }
        v
    };
    let n = keys.len();
    proptest::collection::btree_map(0..n, 1u128..100, 1..40)
        .prop_map(move |m| m.into_iter().map(|(i, c)| (keys[i], c)).collect())
}

/// Like [`record_strategy`] but with enough entries to span several anchor
/// blocks of the succinct codec, plus occasionally huge counts.
fn large_record_strategy() -> impl Strategy<Value = Vec<(ColoredTreelet, u128)>> {
    let keys: Vec<ColoredTreelet> = {
        let mut v = Vec::new();
        for h in 2..=5u32 {
            for &t in all_treelets(h).iter() {
                for colors in ColorSet::full(8).subsets_of_size(h) {
                    v.push(ColoredTreelet::new(t, colors));
                }
            }
        }
        v
    };
    let n = keys.len();
    proptest::collection::btree_map(0..n, 1u128..(1 << 80), 60..220)
        .prop_map(move |m| m.into_iter().map(|(i, c)| (keys[i], c)).collect())
}

fn build(codec: RecordCodec, pairs: &[(ColoredTreelet, u128)]) -> Record {
    Record::from_counts_in(codec, pairs.iter().map(|&(k, c)| (k.code(), c)).collect())
}

proptest! {
    #[test]
    fn record_answers_match_reference(pairs in record_strategy()) {
        for codec in RecordCodec::ALL {
            let rec = build(codec, &pairs);
            let reference: std::collections::HashMap<ColoredTreelet, u128> =
                pairs.iter().copied().collect();
            // Totals.
            let total: u128 = reference.values().sum();
            prop_assert_eq!(rec.total(), total);
            prop_assert_eq!(rec.len(), reference.len());
            // Point lookups (including misses).
            for (&k, &c) in &reference {
                prop_assert_eq!(rec.count_of(k), c);
            }
            let absent = ColoredTreelet::new(
                motivo_treelet::path_treelet(5),
                ColorSet::full(5),
            );
            prop_assert_eq!(rec.count_of(absent), 0);
            // Iteration recovers exactly the reference.
            let iterated: std::collections::HashMap<ColoredTreelet, u128> = rec.iter().collect();
            prop_assert_eq!(&iterated, &reference);
            // Per-shape totals tile the overall total.
            let mut shape_sum = 0u128;
            for h in 2..=4u32 {
                for &t in all_treelets(h).iter() {
                    let tt = rec.tree_total(t);
                    let want: u128 = reference
                        .iter()
                        .filter(|(k, _)| k.tree() == t)
                        .map(|(_, &c)| c)
                        .sum();
                    prop_assert_eq!(tt, want);
                    shape_sum += tt;
                    // Per-shape iteration agrees.
                    let it_sum: u128 = rec.iter_tree(t).map(|(_, c)| c).sum();
                    prop_assert_eq!(it_sum, want);
                }
            }
            prop_assert_eq!(shape_sum, total);
        }
    }

    #[test]
    fn selection_is_exact_inverse_of_cumulation(pairs in record_strategy()) {
        for codec in RecordCodec::ALL {
            let rec = build(codec, &pairs);
            // Global selection: each key hit exactly `count` times across all r.
            let mut tally: std::collections::HashMap<u64, u128> = Default::default();
            for r in 1..=rec.total() {
                *tally.entry(rec.select(r).code()).or_insert(0) += 1;
            }
            for (k, c) in &pairs {
                prop_assert_eq!(tally[&k.code()], *c);
            }
        }
    }

    #[test]
    fn encode_decode_identity(pairs in record_strategy()) {
        for codec in RecordCodec::ALL {
            let rec = build(codec, &pairs);
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            prop_assert_eq!(buf.len(), rec.encoded_len());
            let back = Record::decode(codec, &mut &buf[..]).expect("roundtrip");
            prop_assert_eq!(back, rec);
        }
    }

    /// Plain and succinct agree on every query of records large enough to
    /// exercise the succinct codec's multi-block anchor paths, and the
    /// succinct bytes are well under the 60% acceptance bar.
    #[test]
    fn codecs_are_observationally_identical(pairs in large_record_strategy()) {
        let plain = build(RecordCodec::Plain, &pairs);
        let succ = build(RecordCodec::Succinct, &pairs);
        prop_assert_eq!(plain.total(), succ.total());
        prop_assert_eq!(plain.len(), succ.len());
        prop_assert_eq!(
            plain.iter().collect::<Vec<_>>(),
            succ.iter().collect::<Vec<_>>()
        );
        for &(k, _) in &pairs {
            prop_assert_eq!(plain.count_of(k), succ.count_of(k));
        }
        for h in 2..=5u32 {
            for &t in all_treelets(h).iter() {
                prop_assert_eq!(plain.tree_total(t), succ.tree_total(t));
                prop_assert_eq!(
                    plain.iter_tree(t).collect::<Vec<_>>(),
                    succ.iter_tree(t).collect::<Vec<_>>()
                );
                let tt = plain.tree_total(t);
                if tt > 0 {
                    // Probe the first, last, and a few interior ranks.
                    for r in [1, tt, tt / 2 + 1, tt / 3 + 1] {
                        prop_assert_eq!(
                            plain.select_in_tree(t, r),
                            succ.select_in_tree(t, r)
                        );
                    }
                }
            }
        }
        let total = plain.total();
        for r in [1, total, total / 2 + 1, total / 5 + 1, total / 7 + 1] {
            prop_assert_eq!(plain.select(r), succ.select(r));
        }
        // Even with adversarially huge (up to 2^80) counts, the varint
        // stream stays strictly smaller than the fixed-width layout. The
        // ≥40% bar of realistic tables is asserted by the deterministic
        // end-to-end tests.
        prop_assert!(
            succ.byte_size() < plain.byte_size(),
            "succinct {} bytes vs plain {}",
            succ.byte_size(),
            plain.byte_size()
        );
    }

    /// Round-trips survive a recode in either direction.
    #[test]
    fn recode_roundtrip(pairs in record_strategy()) {
        let plain = build(RecordCodec::Plain, &pairs);
        let succ = plain.recode(RecordCodec::Succinct);
        prop_assert_eq!(succ.codec(), RecordCodec::Succinct);
        prop_assert_eq!(succ.recode(RecordCodec::Plain), plain);
    }

    /// Every truncation of a succinct buffer is rejected, as is trailing
    /// garbage — no prefix of a valid record is itself valid.
    #[test]
    fn succinct_rejects_truncated_and_padded_buffers(pairs in record_strategy()) {
        let rec = build(RecordCodec::Succinct, &pairs);
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        for cut in 0..buf.len() {
            prop_assert!(
                Record::decode(RecordCodec::Succinct, &mut &buf[..cut]).is_none(),
                "truncation at {} accepted", cut
            );
        }
        let mut padded = buf.clone();
        padded.push(0x01);
        prop_assert!(Record::decode(RecordCodec::Succinct, &mut &padded[..]).is_none());
    }

    /// Corrupting the declared length is rejected: the stream then has too
    /// few or too many entries for the bytes present.
    #[test]
    fn succinct_rejects_length_corruption(pairs in record_strategy(), delta in 1u32..5) {
        let rec = build(RecordCodec::Succinct, &pairs);
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
        for wrong in [len + delta, len.saturating_sub(delta)] {
            if wrong == len {
                continue;
            }
            let mut bad = buf.clone();
            bad[..4].copy_from_slice(&wrong.to_le_bytes());
            prop_assert!(
                Record::decode(RecordCodec::Succinct, &mut &bad[..]).is_none(),
                "len {} accepted in place of {}", wrong, len
            );
        }
    }
}

/// Cross-codec identity exactly at the anchor-block boundaries the batched
/// block decoder refills across: one entry short of a block, a full block,
/// one over, and the two-block boundary.
#[test]
fn codecs_agree_at_anchor_block_boundaries() {
    use motivo_table::codec::ANCHOR_BLOCK;
    let keys: Vec<ColoredTreelet> = {
        let mut v = Vec::new();
        for h in 2..=5u32 {
            for &t in all_treelets(h).iter() {
                for colors in ColorSet::full(8).subsets_of_size(h) {
                    v.push(ColoredTreelet::new(t, colors));
                }
            }
        }
        v.sort_by_key(|k| k.code());
        v
    };
    for n in [
        ANCHOR_BLOCK - 1,
        ANCHOR_BLOCK,
        ANCHOR_BLOCK + 1,
        2 * ANCHOR_BLOCK,
        2 * ANCHOR_BLOCK + 1,
    ] {
        let pairs: Vec<(ColoredTreelet, u128)> = keys
            .iter()
            .step_by(3)
            .take(n)
            .enumerate()
            .map(|(i, &k)| (k, (i as u128 % 9) + 1))
            .collect();
        assert_eq!(pairs.len(), n, "key pool too small for n={n}");
        let plain = build(RecordCodec::Plain, &pairs);
        let succ = build(RecordCodec::Succinct, &pairs);
        assert_eq!(
            plain.iter().collect::<Vec<_>>(),
            succ.iter().collect::<Vec<_>>(),
            "n={n}"
        );
        for r in 1..=plain.total() {
            assert_eq!(plain.select(r), succ.select(r), "n={n} r={r}");
        }
        for &(k, c) in &pairs {
            assert_eq!(succ.count_of(k), c, "n={n}");
        }
    }
}

// ---------------------------------------------------------------------------
// K-way merge: the streaming MergeIter that compacts spilled sorted runs
// into block levels must behave exactly like the obvious reference —
// concatenate the runs in spill order, stable-sort by vertex, keep the
// last occurrence of each vertex (later runs supersede earlier ones).
// ---------------------------------------------------------------------------

use motivo_table::merge::mem_run;
use motivo_table::{MergeIter, RunReader, RunWriter};

/// One sorted run: ascending unique vertices with small opaque payloads.
/// Runs may be empty — a build can spill, then see no further records.
fn run_strategy() -> impl Strategy<Value = Vec<(u32, Vec<u8>)>> {
    proptest::collection::btree_map(
        0u32..48,
        proptest::collection::vec(any::<u8>(), 0..12),
        0..20,
    )
    .prop_map(|m| m.into_iter().collect())
}

/// A batch of runs over a deliberately small vertex range, so the same
/// vertex frequently appears in several runs.
fn runs_strategy() -> impl Strategy<Value = Vec<Vec<(u32, Vec<u8>)>>> {
    proptest::collection::vec(run_strategy(), 0..6)
}

/// The reference semantics: concat in run order, stable sort by vertex,
/// keep the last payload seen for each vertex.
fn reference_merge(runs: &[Vec<(u32, Vec<u8>)>]) -> Vec<(u32, Vec<u8>)> {
    let mut all: Vec<(u32, usize, Vec<u8>)> = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        for (v, p) in run {
            all.push((*v, i, p.clone()));
        }
    }
    all.sort_by_key(|&(v, i, _)| (v, i));
    let mut out: Vec<(u32, Vec<u8>)> = Vec::new();
    for (v, _, p) in all {
        if out.last().map(|e| e.0) == Some(v) {
            out.pop();
        }
        out.push((v, p));
    }
    out
}

proptest! {
    /// In-memory runs (duplicates across runs, empty runs, any count of
    /// runs including zero) merge exactly to the reference.
    #[test]
    fn kway_merge_matches_sort_then_concat(runs in runs_strategy()) {
        let iters: Vec<_> = runs.iter().cloned().map(mem_run).collect();
        let merged: Vec<(u32, Vec<u8>)> = MergeIter::new(iters)
            .expect("mem runs cannot fail to open")
            .map(|r| r.expect("mem runs cannot fail"))
            .collect();
        prop_assert_eq!(merged, reference_merge(&runs));
    }

    /// A single run passes through untouched — the degenerate merge a
    /// build with exactly one spill performs.
    #[test]
    fn single_run_passes_through(run in run_strategy()) {
        let merged: Vec<(u32, Vec<u8>)> = MergeIter::new(vec![mem_run(run.clone())])
            .expect("open")
            .map(|r| r.expect("mem run"))
            .collect();
        prop_assert_eq!(merged, run);
    }

    /// The same merge over real run *files* — through RunWriter framing
    /// and RunReader CRC checks — agrees with the reference too.
    #[test]
    fn file_backed_merge_matches_reference(runs in runs_strategy()) {
        let dir = std::env::temp_dir().join(format!("motivo-merge-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut readers = Vec::new();
        for (i, run) in runs.iter().enumerate() {
            let path = dir.join(format!("run-{i}"));
            let mut w = RunWriter::create(&path).unwrap();
            for (v, p) in run {
                w.push(*v, p).unwrap();
            }
            w.finish().unwrap();
            readers.push(RunReader::open(&path).unwrap());
        }
        let merged: Vec<(u32, Vec<u8>)> = MergeIter::new(readers)
            .unwrap()
            .map(|r| r.expect("intact run files"))
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(merged, reference_merge(&runs));
    }

    /// Crash safety: a run file cut at *any* byte short of its full
    /// length — mid-header, mid-frame, mid-end-marker — must either fail
    /// to open or surface an error while iterating. Whatever frames do
    /// come back before the error are a strict prefix of what was
    /// written; a torn file never reads cleanly and never reorders.
    #[test]
    fn truncated_run_files_never_read_cleanly(
        run in run_strategy(),
        cut_permille in 0usize..1000,
    ) {
        let dir = std::env::temp_dir().join(format!("motivo-torn-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run");
        let mut w = RunWriter::create(&path).unwrap();
        for (v, p) in &run {
            w.push(*v, p).unwrap();
        }
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() * cut_permille / 1000).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        if let Ok(reader) = RunReader::open(&path) {
            let items: Vec<_> = reader.collect();
            let ok_prefix: Vec<(u32, Vec<u8>)> = items
                .iter()
                .take_while(|r| r.is_ok())
                .map(|r| r.as_ref().unwrap().clone())
                .collect();
            prop_assert!(
                items.iter().any(|r| r.is_err()),
                "file cut to {cut}/{} bytes read cleanly",
                bytes.len()
            );
            prop_assert!(ok_prefix.len() <= run.len());
            prop_assert_eq!(&ok_prefix[..], &run[..ok_prefix.len()]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
